//! EXPLAIN: print the optimized plan of a few SDSS-style queries at each
//! optimization level, then EXPLAIN ANALYZE them — executing each plan
//! and annotating it with per-operator observed row counts and cost-unit
//! charges (under the active `SQLAN_ENGINE`).
//!
//! ```sh
//! cargo run --release --example explain
//! # or explain your own statement:
//! cargo run --release --example explain -- "SELECT TOP 5 * FROM PhotoObj ORDER BY ra"
//! ```

use sqlan_engine::OptLevel;
use sqlan_workload::{sdss_database, Scale, SdssConfig};

fn main() {
    let cfg = SdssConfig {
        n_sessions: 1,
        scale: Scale(0.01),
        seed: 7,
    };
    let db = sdss_database(cfg);

    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries: Vec<String> = if args.is_empty() {
        vec![
            // The comma-join shape that dominates SDSS logs: pushdown +
            // equi-join detection turn it from quadratic into linear.
            "SELECT s.z, p.ra FROM SpecObj s, PhotoObj p \
             WHERE s.bestobjid = p.objid AND p.type = 3 AND s.z > 0.5"
                .to_string(),
            // Aggregation over an explicit join, with HAVING and TOP.
            "SELECT TOP 3 p.type, count(*) AS n FROM PhotoObj p \
             INNER JOIN SpecObj s ON p.objid = s.bestobjid \
             GROUP BY p.type HAVING count(*) > 5 ORDER BY n DESC"
                .to_string(),
            // Derived table plus a correlated subquery.
            "SELECT d.type FROM (SELECT type, avg(ra) AS r FROM PhotoObj GROUP BY type) d \
             WHERE d.r > (SELECT avg(ra) FROM PhotoObj)"
                .to_string(),
        ]
    } else {
        args
    };

    for sql in &queries {
        println!("=== {sql}\n");
        for level in [OptLevel::None, OptLevel::Default, OptLevel::Aggressive] {
            let leveled = db.clone().with_opt_level(level);
            println!("--- {level:?}");
            match leveled.explain(sql) {
                Ok(plan) => println!("{plan}"),
                Err(e) => println!("rejected: {e}\n"),
            }
        }
        // EXPLAIN ANALYZE at the default level: plan + observed
        // per-operator rows and cost charges from a real execution.
        println!("--- ANALYZE (engine={:?})", db.engine);
        match db.explain_analyze(sql) {
            Ok(report) => println!("{report}"),
            Err(e) => println!("rejected: {e}\n"),
        }
    }
}
