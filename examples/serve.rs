//! End-to-end serving demo: train models, save a versioned bundle, boot
//! the online prediction service, and query it over HTTP — the paper's
//! "tell the user before execution" promise as a running system.
//!
//! ```bash
//! cargo run --release --example serve
//! ```

use std::sync::Arc;

use sqlan_core::prelude::*;
use sqlan_core::{train_model, Dataset};
use sqlan_serve::{
    save_bundle, Client, ModelRegistry, PredictRequest, PredictResponse, ServeConfig,
};

fn main() {
    // 1. Train: a small fixed-seed SDSS-like workload, one classifier
    //    (will this query error?) and one regressor (how many rows?).
    println!("building workload...");
    let workload = build_sdss(SdssConfig {
        n_sessions: 300,
        scale: Scale(0.03),
        seed: 42,
    });
    let cls = Dataset::build(&workload, Problem::ErrorClassification);
    let reg = Dataset::build(&workload, Problem::AnswerSize);
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny()
    };
    let cut = |n: usize| n * 4 / 5;
    println!("training wtfidf classifier + ctfidf regressor...");
    let classifier = train_model(
        ModelKind::WTfidf,
        Task::Classify(Problem::ErrorClassification.n_classes()),
        &TrainData {
            statements: &cls.statements[..cut(cls.len())],
            labels: Labels::Classes(&cls.class_labels[..cut(cls.len())]),
            valid_statements: &cls.statements[cut(cls.len())..],
            valid_labels: Labels::Classes(&cls.class_labels[cut(cls.len())..]),
        },
        &cfg,
        None,
    );
    let regressor = train_model(
        ModelKind::CTfidf,
        Task::Regress,
        &TrainData {
            statements: &reg.statements[..cut(reg.len())],
            labels: Labels::Values(&reg.log_labels[..cut(reg.len())]),
            valid_statements: &reg.statements[cut(reg.len())..],
            valid_labels: Labels::Values(&reg.log_labels[cut(reg.len())..]),
        },
        &cfg,
        None,
    );

    // 2. Save a versioned bundle: manifest + one artifact per problem.
    let dir = std::env::temp_dir().join(format!("sqlan-serve-demo-{}", std::process::id()));
    let manifest = save_bundle(
        &dir,
        "demo",
        42,
        &[
            (Problem::ErrorClassification, &classifier),
            (Problem::AnswerSize, &regressor),
        ],
    )
    .expect("save bundle");
    println!(
        "saved bundle `{}` (v{}) to {}",
        manifest.name,
        manifest.format_version,
        dir.display()
    );

    // 3. Serve: registry (hot-swappable) + batched scoring + HTTP.
    let registry = Arc::new(ModelRegistry::open(&dir).expect("open bundle"));
    let handle = sqlan_serve::start(registry, ServeConfig::default()).expect("start server");
    println!("serving on http://{}", handle.addr());

    // 4. Query it like a client would.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let probes = vec![
        "SELECT TOP 10 objID, ra, dec FROM PhotoObj WHERE ra > 180".to_string(),
        "SELECT p.objID FROM PhotoObj p JOIN SpecObj s ON p.objID = s.bestObjID".to_string(),
        "SELCT * FORM PhotoObj".to_string(), // a typo a user is about to run
    ];
    for problem in [Problem::ErrorClassification, Problem::AnswerSize] {
        let body = serde_json::to_string(&PredictRequest {
            problem: problem.name().to_string(),
            statements: probes.clone(),
        })
        .expect("serialize");
        let (status, response) = client.post("/predict", &body).expect("predict");
        assert_eq!(status, 200, "{response}");
        let parsed: PredictResponse = serde_json::from_str(&response).expect("parse");
        println!("\n{problem} (bundle generation {}):", parsed.generation);
        for (stmt, p) in probes.iter().zip(&parsed.predictions) {
            let headline = match (p.class, p.value) {
                (Some(c), _) => format!("class {c} {:?}", p.proba.as_deref().unwrap_or(&[])),
                (_, Some(v)) => format!("log-rows {v:.3}"),
                _ => "?".to_string(),
            };
            println!("  {headline}  ←  {}", &stmt[..stmt.len().min(58)]);
        }
    }

    // 5. Ops surface: health and metrics.
    let (_, health) = client.get("/healthz").expect("healthz");
    println!("\nhealthz: {health}");
    let (_, metrics) = client.get("/metrics").expect("metrics");
    println!("metrics: {metrics}");

    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
