//! Cost advisor: the paper's end-user scenario (§1–2). SDSS advises users
//! to run a `COUNT(*)` probe before their real query to avoid long waits;
//! this example replaces the probe with *pre-execution predictions* of
//! answer size and CPU time, then checks them against actual execution —
//! including the §6.3.3 case study of a long-simple vs short-nested query.
//!
//! ```bash
//! cargo run --release -p sqlan-core --example cost_advisor
//! ```

use sqlan_core::prelude::*;

fn main() {
    let sdss = SdssConfig {
        n_sessions: 900,
        scale: Scale(0.05),
        seed: 9,
    };
    println!("building workload...");
    let workload = build_sdss(sdss);
    let db = sdss_database(sdss);
    let split = random_split(workload.len(), 1);
    let cfg = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };

    println!("training answer-size and CPU-time predictors (ccnn)...");
    let answer = run_experiment(
        &workload,
        Problem::AnswerSize,
        split.clone(),
        &[ModelKind::CCnn],
        &cfg,
        None,
    );
    let cpu = run_experiment(
        &workload,
        Problem::CpuTime,
        split,
        &[ModelKind::CCnn],
        &cfg,
        None,
    );

    let answer_model = &answer.runs[0].model;
    let cpu_model = &cpu.runs[0].model;
    let t_answer = answer.dataset.transform.expect("transform");
    let t_cpu = cpu.dataset.transform.expect("transform");

    // Q1-style: long statement, big join, many output columns.
    // Q2-style: short but nested, touching small admin tables.
    let q1 = "SELECT q.specobjid AS qname, dbo.fDistanceArcMinEq(q.ra,q.dec,p.ra,p.dec), \
              p.objid, p.ra, p.dec, p.u, p.g, p.r, p.i, p.z, p.type, p.flags \
              FROM SpecObj AS q, PhotoObj AS p \
              WHERE q.bestobjid = p.objid AND q.ra BETWEEN 185 AND 190 ORDER BY q.ra";
    let q2 = "SELECT j.target, cast(j.estimate AS varchar) AS queue FROM Jobs j, Users u, \
              (SELECT DISTINCT target, queue FROM Servers s1 WHERE s1.name NOT IN \
              (SELECT name FROM Servers s, (SELECT target, min(queue) AS queue FROM Servers \
              GROUP BY target) AS a WHERE a.target = s.target)) b \
              WHERE j.outputtype LIKE '%QUERY%' AND j.userid = u.userid";

    println!(
        "\n{:>10} {:>14} {:>14} {:>12} {:>12}",
        "query", "pred rows", "actual rows", "pred cpu", "actual cpu"
    );
    for (name, stmt) in [("Q1 (long)", q1), ("Q2 (nested)", q2)] {
        let pred_rows = t_answer.invert(answer_model.predict_value(stmt)).max(0.0);
        let pred_cpu = t_cpu.invert(cpu_model.predict_value(stmt)).max(0.0);
        let actual = db.submit(stmt);
        println!(
            "{:>10} {:>14.0} {:>14} {:>11.2}s {:>11.2}s   [{}]",
            name, pred_rows, actual.answer_size, pred_cpu, actual.cpu_seconds, actual.error_class
        );
    }

    // The advisory itself.
    println!("\nadvisor verdicts:");
    for stmt in [
        "SELECT * FROM PhotoObj",
        "SELECT * FROM PhotoTag WHERE objId = 12345",
        "SELECT p.objid FROM PhotoObj p WHERE p.objid < 3000 AND EXISTS \
         (SELECT 1 FROM Neighbors n WHERE n.objid = p.objid AND n.distance < 0.5)",
    ] {
        let rows = t_answer.invert(answer_model.predict_value(stmt)).max(0.0);
        let secs = t_cpu.invert(cpu_model.predict_value(stmt)).max(0.0);
        let verdict = if secs > 5.0 {
            "WARN: likely slow — consider a COUNT probe or tighter predicates"
        } else if rows > 10_000.0 {
            "WARN: large result — add TOP or a WHERE clause"
        } else {
            "ok to run"
        };
        let head: String = stmt.chars().take(60).collect();
        println!("  {head:62} ~{rows:>8.0} rows ~{secs:>7.2}s  {verdict}");
    }
}
