//! Quickstart: synthesize a workload, train a character-level CNN to
//! predict query error classes *before execution*, and try it on a few
//! fresh statements.
//!
//! ```bash
//! cargo run --release -p sqlan-core --example quickstart
//! ```

use sqlan_core::prelude::*;

fn main() {
    // 1. A workload: in production this is your query log (Definition 3);
    //    here we synthesize an SDSS-like one with execution-derived labels.
    println!("building workload...");
    let workload = build_sdss(SdssConfig {
        n_sessions: 800,
        scale: Scale(0.05),
        seed: 42,
    });
    println!(
        "  {} unique statements (from {} sampled log entries)",
        workload.len(),
        workload.sampled_logs
    );

    // 2. Split and train `ccnn` — the paper's best error classifier —
    //    against the `mfreq` baseline.
    let split = random_split(workload.len(), 7);
    let cfg = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    println!("training mfreq + ccnn on {} queries...", split.train.len());
    let exp = run_experiment(
        &workload,
        Problem::ErrorClassification,
        split,
        &[ModelKind::MFreq, ModelKind::CCnn],
        &cfg,
        None,
    );
    for row in exp.summary_rows() {
        println!(
            "  {:8}  loss {:.4}  accuracy {:.4}",
            row.model,
            row.loss,
            row.accuracy.unwrap_or(f64::NAN)
        );
    }

    // 3. Ask the trained model about statements it has never seen. At this
    //    demo scale minority classes have few training examples, so look at
    //    the model's *confidence* in success rather than the argmax alone:
    //    risky statements should get visibly lower P(success).
    let ccnn = &exp.runs[1].model;
    let classes = ["severe", "success", "non_severe"];
    println!("\nper-statement P(success):");
    for stmt in [
        "SELECT TOP 5 objid, ra, dec FROM PhotoObj WHERE type = 6",
        "SELEC * FORM PhotoObj", // typo → rejected at the portal
        "SELECT nonexistent_col FROM PhotoObj", // fails at the server
        "please show me the brightest galaxies", // free text
    ] {
        let probs = ccnn.predict_proba(stmt);
        let c = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i);
        println!(
            "  {:52} -> {:10}  P(success)={:.3}",
            if stmt.len() > 50 { &stmt[..50] } else { stmt },
            classes[c.unwrap_or(1)],
            probs[1]
        );
    }
}
