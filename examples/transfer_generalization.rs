//! Generalization across problem settings (Definition 5): train CPU-time
//! predictors on SQLShare-like workloads under the Homogeneous-Schema
//! split (random) and the Heterogeneous-Schema split (by user), and watch
//! word-level models degrade while character-level models hold up — the
//! paper's central finding (§6.2.4).
//!
//! ```bash
//! cargo run --release -p sqlan-core --example transfer_generalization
//! ```

use sqlan_core::prelude::*;

fn main() {
    // Enough users that the by-user split has a representative test
    // population (a handful of users would make the comparison noisy).
    let cfg_share = SqlShareConfig {
        n_queries: 1000,
        n_users: 60,
        scale: Scale(0.1),
        seed: 77,
    };
    println!("building SQLShare-like workload...");
    let workload = build_sqlshare(cfg_share);
    let db = sqlshare_database(cfg_share);
    let cfg = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };

    let models = [ModelKind::Median, ModelKind::CCnn, ModelKind::WCnn];

    println!("Homogeneous Schema (random split): shared vocabulary between train and test");
    let hom = run_experiment(
        &workload,
        Problem::CpuTime,
        random_split(workload.len(), 5),
        &models,
        &cfg,
        Some(&db),
    );

    println!("Heterogeneous Schema (split by user): disjoint table/column names");
    let het = run_experiment(
        &workload,
        Problem::CpuTime,
        split_by_user(&workload.entries, 0.8, 0.07, 5),
        &models,
        &cfg,
        Some(&db),
    );

    println!(
        "\n{:>8} {:>18} {:>18} {:>10}",
        "model", "HomSchema loss", "HetSchema loss", "degraded"
    );
    for (a, b) in hom.runs.iter().zip(&het.runs) {
        let la = a.regression.as_ref().expect("eval").loss;
        let lb = b.regression.as_ref().expect("eval").loss;
        println!(
            "{:>8} {:>18.4} {:>18.4} {:>9.1}x",
            a.kind.name(),
            la,
            lb,
            lb / la.max(1e-9)
        );
    }
    println!(
        "\nExpected shape (paper §6.2.3): every model gets worse under Heterogeneous \
         Schema,\nbut word-level models degrade hardest — their vocabulary never \
         transfers across users."
    );
}
