//! DBA session audit: the paper's DBA scenario (§2). Given raw query text
//! alone — no agent strings, no IPs — classify which kind of client wrote
//! each query (bot / program / browser / direct SQL ...), the
//! session-classification problem of Definition 4.
//!
//! ```bash
//! cargo run --release -p sqlan-core --example dba_session_audit
//! ```

use sqlan_core::prelude::*;
use sqlan_workload::SessionClass;

fn main() {
    println!("building workload...");
    let workload = build_sdss(SdssConfig {
        n_sessions: 1000,
        scale: Scale(0.05),
        seed: 31,
    });
    let split = random_split(workload.len(), 3);
    let cfg = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };

    // The paper found ctfidf best on frequent classes and the neural nets
    // better on rare ones; train both and compare.
    println!("training ctfidf and ccnn session classifiers...");
    let exp = run_experiment(
        &workload,
        Problem::SessionClassification,
        split,
        &[ModelKind::CTfidf, ModelKind::CCnn],
        &cfg,
        None,
    );

    for run in &exp.runs {
        let eval = run.classification.as_ref().expect("classification");
        println!(
            "\n{} — accuracy {:.4}, loss {:.4}",
            run.kind.name(),
            eval.accuracy,
            eval.loss
        );
        for class in SessionClass::ALL {
            let r = eval.per_class[class.index()];
            if r.support > 0 {
                println!(
                    "  F_{:<11} {:.4}  (precision {:.3}, recall {:.3}, n={})",
                    class.name(),
                    r.f_measure,
                    r.precision,
                    r.recall,
                    r.support
                );
            }
        }
    }

    // Audit a mixed bag of incoming statements.
    let ctfidf = &exp.runs[0].model;
    println!("\nincoming-traffic audit (ctfidf):");
    for stmt in [
        "SELECT * FROM PhotoTag WHERE objId=0x0001fe8829d0bd00",
        "SELECT p.objid,p.ra,p.dec,p.u,p.g,p.r,p.i,p.z FROM PhotoObj AS p WHERE \
         p.ra BETWEEN 210.0 AND 210.5 AND p.dec BETWEEN 5.0 AND 5.5 ORDER BY p.objid",
        "SELECT count(*) FROM Galaxy WHERE r<19.5",
        "SELECT q.objid AS qid, dbo.fDistanceArcMinEq(q.ra,q.dec,p.ra,p.dec) AS dist, p.u,p.g,p.r \
         INTO mydb.cand_17 FROM SpecObj AS q, PhotoObj AS p WHERE q.bestobjid=p.objid",
    ] {
        let class = SessionClass::from_index(ctfidf.predict_class(stmt))
            .map(|c| c.name())
            .unwrap_or("?");
        let head: String = stmt.chars().take(68).collect();
        println!("  [{class:>10}] {head}");
    }
}
