//! Integration across the substrate crates: the parser, property
//! extractor, engine, and workload layers must agree with each other on
//! shared invariants.

use sqlan_engine::{CostCounter, Database, ErrorClass};
use sqlan_sql::{extract_props, parse, Statement};
use sqlan_workload::{
    build_sdss, sdss_database, sdss_statement, PropsMatrix, Scale, SdssConfig, SessionClass,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every statement the SDSS generator emits either parses, or is labeled
/// severe by the engine — never a crash, never a disagreement.
#[test]
fn generator_parser_engine_agree_on_severity() {
    let cfg = SdssConfig {
        n_sessions: 1,
        scale: Scale(0.01),
        seed: 1,
    };
    let db = sdss_database(cfg);
    let mut rng = StdRng::seed_from_u64(77);
    for i in 0..400 {
        let class = SessionClass::ALL[i % 7];
        let stmt = sdss_statement(class, &mut rng);
        let parsed = parse(&stmt);
        let outcome = db.submit(&stmt);
        match outcome.error_class {
            ErrorClass::Severe => {
                // Severe ⇒ rejected before execution: parse error or
                // unterminated literal.
                assert!(
                    parsed.result.is_err() || !parsed.lex_report.is_clean(),
                    "severe statement should be a portal rejection: {stmt}"
                );
            }
            _ => {
                assert!(
                    parsed.result.is_ok(),
                    "executed statement must parse: {stmt}"
                );
            }
        }
    }
}

/// The workload pipeline's labels match a fresh execution of the same
/// statement (single database version ⇒ labels are reproducible).
#[test]
fn workload_labels_match_reexecution() {
    let cfg = SdssConfig {
        n_sessions: 120,
        scale: Scale(0.02),
        seed: 5,
    };
    let w = build_sdss(cfg);
    let db = sdss_database(cfg);
    for e in w.entries.iter().take(60) {
        let out = db.submit(&e.statement);
        assert_eq!(out.error_class, e.error_class, "{}", e.statement);
        assert_eq!(out.answer_size as f64, e.answer_size, "{}", e.statement);
        assert!(
            (out.cpu_seconds - e.cpu_seconds).abs() < 1e-12,
            "{}",
            e.statement
        );
    }
}

/// Structural properties correlate with execution cost: queries with more
/// joins+functions+nesting cost more CPU on average.
#[test]
fn complexity_correlates_with_cost() {
    let cfg = SdssConfig {
        n_sessions: 400,
        scale: Scale(0.02),
        seed: 6,
    };
    let w = build_sdss(cfg);
    let props = PropsMatrix::extract(&w.entries);
    let (mut cheap, mut cheap_n) = (0.0f64, 0u32);
    let (mut dear, mut dear_n) = (0.0f64, 0u32);
    for (p, e) in props.props.iter().zip(&w.entries) {
        if e.error_class != ErrorClass::Success {
            continue;
        }
        let complexity = p.num_joins + p.num_functions + p.nestedness_level;
        if complexity == 0 {
            cheap += e.cpu_seconds;
            cheap_n += 1;
        } else {
            dear += e.cpu_seconds;
            dear_n += 1;
        }
    }
    assert!(cheap_n > 10 && dear_n > 10, "both cohorts populated");
    let cheap_avg = cheap / cheap_n as f64;
    let dear_avg = dear / dear_n as f64;
    assert!(
        dear_avg > cheap_avg,
        "complex queries should cost more: {dear_avg} vs {cheap_avg}"
    );
}

/// The paper's Figure 8 claim: no_web_hit queries are textually the most
/// complex class; bots the least.
#[test]
fn session_class_complexity_ordering() {
    let cfg = SdssConfig {
        n_sessions: 500,
        scale: Scale(0.02),
        seed: 7,
    };
    let w = build_sdss(cfg);
    let avg_chars = |class: SessionClass| -> f64 {
        let xs: Vec<f64> = w
            .entries
            .iter()
            .filter(|e| e.session_class == Some(class))
            .map(|e| e.statement.chars().count() as f64)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    let bot = avg_chars(SessionClass::Bot);
    let nwh = avg_chars(SessionClass::NoWebHit);
    assert!(nwh > bot * 1.5, "no_web_hit ({nwh:.0}) ≫ bot ({bot:.0})");
}

/// Engine cost accounting and the optimizer estimate rank table scans the
/// same way even though their absolute values differ (the `opt` premise).
#[test]
fn estimates_rank_scans_like_execution() {
    let cfg = SdssConfig {
        n_sessions: 1,
        scale: Scale(0.05),
        seed: 8,
    };
    let db: Database = sdss_database(cfg);
    let small = "SELECT * FROM Field";
    let large = "SELECT * FROM PhotoObj";
    let mut c1 = CostCounter::default();
    let mut c2 = CostCounter::default();
    let q = |s: &str| match sqlan_sql::parse_script(s).unwrap().statements.remove(0) {
        Statement::Select(q) => q,
        _ => unreachable!(),
    };
    db.run_query(&q(small), &mut c1).unwrap();
    db.run_query(&q(large), &mut c2).unwrap();
    assert!(c2.units() > c1.units());
    let e1 = db.estimate(small).unwrap();
    let e2 = db.estimate(large).unwrap();
    assert!(e2.total_cost > e1.total_cost);
}

/// Property extraction is cheap enough to run over whole workloads and is
/// stable across identical statements.
#[test]
fn props_are_pure() {
    let s = "SELECT a, count(*) FROM t INNER JOIN u ON t.i = u.i GROUP BY a HAVING count(*) > 2";
    assert_eq!(extract_props(s), extract_props(s));
}
