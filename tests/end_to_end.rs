//! Cross-crate integration: workload synthesis → dataset → every model
//! kind → evaluation, for all four problems of Definition 4.

use sqlan_core::prelude::*;

fn sdss() -> (Workload, sqlan_workload::Split) {
    let w = build_sdss(SdssConfig {
        n_sessions: 220,
        scale: Scale(0.02),
        seed: 101,
    });
    let s = random_split(w.len(), 101);
    (w, s)
}

#[test]
fn all_four_problems_run() {
    let (w, s) = sdss();
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny()
    };
    for problem in [
        Problem::ErrorClassification,
        Problem::SessionClassification,
        Problem::CpuTime,
        Problem::AnswerSize,
    ] {
        let kinds = if problem.is_classification() {
            vec![ModelKind::MFreq, ModelKind::WTfidf]
        } else {
            vec![ModelKind::Median, ModelKind::WTfidf]
        };
        let exp = run_experiment(&w, problem, s.clone(), &kinds, &cfg, None);
        assert_eq!(exp.runs.len(), 2, "{problem}");
        for run in &exp.runs {
            let loss = exp.summary_rows()[0].loss;
            assert!(
                loss.is_finite() || loss.is_nan(),
                "{problem}/{}",
                run.kind.name()
            );
        }
    }
}

#[test]
fn every_model_kind_trains_on_error_classification() {
    let (w, s) = sdss();
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny()
    };
    let kinds = [
        ModelKind::MFreq,
        ModelKind::CTfidf,
        ModelKind::WTfidf,
        ModelKind::CCnn,
        ModelKind::WCnn,
        ModelKind::CLstm,
        ModelKind::WLstm,
    ];
    let exp = run_experiment(&w, Problem::ErrorClassification, s, &kinds, &cfg, None);
    assert_eq!(exp.runs.len(), 7);
    for run in &exp.runs {
        let c = run.classification.as_ref().expect("classification eval");
        assert!((0.0..=1.0).contains(&c.accuracy), "{}", run.kind.name());
        assert_eq!(c.per_class.len(), 3);
        assert!(c.loss.is_finite());
        // Learned models report their capacity columns.
        if run.kind != ModelKind::MFreq {
            assert!(run.vocab_size.unwrap() > 0);
            assert!(run.n_parameters.unwrap() > 0);
        }
    }
}

#[test]
fn every_regressor_kind_trains_on_cpu_time_with_opt() {
    let (w, s) = sdss();
    let db = sdss_database(SdssConfig {
        n_sessions: 220,
        scale: Scale(0.02),
        seed: 101,
    });
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny()
    };
    let kinds = [
        ModelKind::Median,
        ModelKind::Opt,
        ModelKind::CTfidf,
        ModelKind::CCnn,
        ModelKind::CLstm,
    ];
    let exp = run_experiment(&w, Problem::CpuTime, s, &kinds, &cfg, Some(&db));
    for run in &exp.runs {
        let g = run.regression.as_ref().expect("regression eval");
        assert!(g.loss.is_finite(), "{}", run.kind.name());
        assert!(g.mse.is_finite());
        assert!(!g.qerror.rows.is_empty());
        // All qerrors ≥ 1 by definition.
        assert!(g.qerror.rows.iter().all(|(_, q)| *q >= 1.0 || q.is_nan()));
    }
}

#[test]
fn sqlshare_settings_run_end_to_end() {
    let cfg_w = SqlShareConfig {
        n_queries: 160,
        n_users: 12,
        scale: Scale(0.03),
        seed: 55,
    };
    let w = build_sqlshare(cfg_w);
    let db = sqlshare_database(cfg_w);
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny()
    };

    // Homogeneous Schema (random) and Heterogeneous Schema (by user).
    let hom = run_experiment(
        &w,
        Problem::CpuTime,
        random_split(w.len(), 9),
        &[ModelKind::Median, ModelKind::Opt, ModelKind::CCnn],
        &cfg,
        Some(&db),
    );
    let het_split = split_by_user(&w.entries, 0.8, 0.07, 9);
    assert!(
        !het_split.test.is_empty(),
        "user split must produce a test set"
    );
    let het = run_experiment(
        &w,
        Problem::CpuTime,
        het_split,
        &[ModelKind::Median, ModelKind::Opt, ModelKind::CCnn],
        &cfg,
        Some(&db),
    );
    for exp in [&hom, &het] {
        for run in &exp.runs {
            assert!(run.regression.as_ref().unwrap().loss.is_finite());
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let (w, s) = sdss();
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::tiny()
        };
        let exp = run_experiment(
            &w,
            Problem::ErrorClassification,
            s,
            &[ModelKind::CTfidf],
            &cfg,
            None,
        );
        let e = exp.runs[0].classification.as_ref().unwrap().clone();
        (e.loss, e.accuracy, e.preds)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn trained_models_are_total_on_arbitrary_input() {
    let (w, s) = sdss();
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny()
    };
    let exp = run_experiment(
        &w,
        Problem::ErrorClassification,
        s,
        &[ModelKind::CTfidf, ModelKind::CCnn, ModelKind::CLstm],
        &cfg,
        None,
    );
    let nasty = ["", " ", "𓀀𓀁𓀂", "SELECT", "'", &"(".repeat(5000), "\0\0\0"];
    for run in &exp.runs {
        for s in nasty {
            let c = run.model.predict_class(s);
            assert!(c < 3, "{} on nasty input", run.kind.name());
        }
    }
}
