//! The determinism battery for the data-parallel runtime.
//!
//! The `sqlan-par` contract is that every parallel stage is a pure
//! function of its input — independent of worker count and scheduling.
//! These tests hold the whole pipeline to that contract **byte-for-byte**:
//! each stage runs at 1, 3, and 8 threads and the serialized outputs (or
//! bit-exact float fingerprints) must be identical strings.
//!
//! A failure here means somebody introduced scheduling-dependent state —
//! a shared accumulator with worker-order writes, an RNG drawn inside a
//! worker, a float reduction with a thread-dependent association order.
//!
//! Since the SIMD tier landed, the battery also sweeps the kernel
//! dispatch tier (scalar oracle vs AVX2, when the CPU has it): every
//! `sqlan-simd` kernel is bit-identical across tiers by construction
//! (up to NaN payloads, which this pipeline never produces), so the
//! full tier × thread-count grid must render one byte sequence.

use sqlan_core::prelude::*;
use sqlan_features::{word_tokens, TfidfVectorizer};
use sqlan_par::with_threads;
use sqlan_simd::Tier;
use sqlan_workload::{build_sdss, build_sqlshare, Scale, SdssConfig, SqlShareConfig};

const THREAD_COUNTS: [usize; 3] = [1, 3, 8];

/// The dispatch tiers to sweep: the env-resolved policy (`None`), the
/// forced scalar oracle, and forced AVX2 where the hardware has it.
fn tiers() -> Vec<(&'static str, Option<Tier>)> {
    let mut t = vec![("auto", None), ("scalar", Some(Tier::Scalar))];
    if sqlan_simd::cpu_features().avx2 {
        t.push(("avx2", Some(Tier::Avx2)));
    }
    t
}

/// Render one build per (tier, thread count) cell and assert all
/// renderings agree byte-for-byte.
///
/// `sqlan_simd::force` is process-global and the test binary runs tests
/// concurrently, so cells from different tests can race on the forced
/// tier — that is deliberately fine: tiers are bit-identical, so a race
/// only changes which (equally correct) code path executes.
fn assert_invariant(what: &str, render: impl Fn() -> String) {
    let mut outputs: Vec<(String, String)> = Vec::new();
    for (tier_name, tier) in tiers() {
        sqlan_simd::force(tier);
        for t in THREAD_COUNTS {
            outputs.push((format!("{tier_name}/{t}t"), with_threads(t, &render)));
        }
    }
    sqlan_simd::force(None);
    let (c0, reference) = &outputs[0];
    for (cell, out) in &outputs[1..] {
        assert_eq!(out, reference, "{what}: output at {cell} differs from {c0}");
    }
}

#[test]
fn sdss_build_is_byte_identical_across_thread_counts() {
    assert_invariant("build_sdss", || {
        let w = build_sdss(SdssConfig {
            n_sessions: 250,
            scale: Scale(0.03),
            seed: 0xD15C,
        });
        serde_json::to_string(&(&w.entries, &w.repetitions, w.sampled_logs))
            .expect("workload serializes")
    });
}

#[test]
fn sqlshare_build_is_byte_identical_across_thread_counts() {
    assert_invariant("build_sqlshare", || {
        let w = build_sqlshare(SqlShareConfig {
            n_queries: 180,
            n_users: 12,
            scale: Scale(0.03),
            seed: 0x5A5E,
        });
        serde_json::to_string(&(&w.entries, &w.repetitions, w.sampled_logs))
            .expect("workload serializes")
    });
}

#[test]
fn tfidf_matrices_are_bit_identical_across_thread_counts() {
    // A corpus wide enough that fit() really chunks (> 64 documents).
    let workload = build_sdss(SdssConfig {
        n_sessions: 400,
        scale: Scale(0.02),
        seed: 0x7F1D,
    });
    let statements: Vec<String> = workload
        .entries
        .iter()
        .map(|e| e.statement.clone())
        .collect();
    assert!(statements.len() > 64, "corpus too small to exercise chunks");

    assert_invariant("tfidf", || {
        let streams: Vec<Vec<String>> = sqlan_par::par_map(&statements, |s| word_tokens(s));
        let v = TfidfVectorizer::fit(&streams, 3, 5_000);
        let matrix = v.transform_batch(&streams);
        // Bit-exact fingerprint: feature ids plus raw f32 bit patterns.
        let mut fp = format!("dim={}", v.dim());
        for row in &matrix {
            fp.push('\n');
            for (id, w) in row {
                fp.push_str(&format!("{id}:{:08x} ", w.to_bits()));
            }
        }
        fp
    });
}

#[test]
fn full_experiment_is_byte_identical_across_thread_counts() {
    // Exercises every parallel layer at once: statement labeling,
    // TF-IDF featurization, per-model fan-out, minibatch gradient
    // reduction, and parallel validation loss.
    let workload = build_sdss(SdssConfig {
        n_sessions: 200,
        scale: Scale(0.02),
        seed: 0xE4E2,
    });
    let split = random_split(workload.len(), 41);
    let cfg = TrainConfig {
        epochs: 2,
        ..TrainConfig::tiny()
    };

    assert_invariant("experiment", || {
        let exp = run_experiment(
            &workload,
            Problem::ErrorClassification,
            split.clone(),
            &[ModelKind::MFreq, ModelKind::CTfidf, ModelKind::CCnn],
            &cfg,
            None,
        );
        let rows = serde_json::to_string(&exp.summary_rows()).expect("rows serialize");
        // Trained parameters, bit-for-bit, via the model persistence path.
        let models: Vec<String> = exp
            .runs
            .iter()
            .map(|r| r.model.save_json().expect("persistable lineup"))
            .collect();
        format!("{rows}\n{}", models.join("\n"))
    });
}
