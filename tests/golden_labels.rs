//! Golden pin of the deterministic labels for a fixed-seed SDSS workload
//! slice.
//!
//! The engine's entire purpose is producing ground-truth labels (error
//! class, answer size, CPU time) from deterministic execution; this test
//! locks the exact bytes of those labels — including every component of
//! the [`CostCounter`] — so that refactors of the execution pipeline
//! (plan lowering, optimizer passes, physical operators) cannot silently
//! change the learning problem's ground truth.
//!
//! Regenerate deliberately with:
//! `SQLAN_UPDATE_GOLDEN=1 cargo test --test golden_labels`

use sqlan_engine::{CostCounter, Database, ErrorClass};
use sqlan_workload::{build_sdss, sdss_database, Scale, SdssConfig};

const GOLDEN_PATH: &str = "tests/golden/sdss_labels.tsv";
const CONFIG: SdssConfig = SdssConfig {
    n_sessions: 160,
    scale: Scale(0.05),
    seed: 0x5EED,
};

/// FNV-1a, to identify statements in golden lines without embedding SQL
/// text (some generated statements contain newlines).
fn stmt_hash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One golden line: statement identity, outcome labels, and the full cost
/// counter breakdown.
fn describe(db: &Database, statement: &str) -> String {
    let mut counter = CostCounter::default();
    let parsed = sqlan_sql::parse(statement);
    let (class, answer): (ErrorClass, i64) = match parsed.result {
        Err(_) => (ErrorClass::Severe, -1),
        Ok(script) => {
            if parsed.lex_report.unterminated_string || parsed.lex_report.unterminated_comment {
                (ErrorClass::Severe, -1)
            } else {
                let mut class = ErrorClass::Success;
                let mut answer = 0i64;
                for stmt in &script.statements {
                    match db.run_statement(stmt, &mut counter) {
                        Ok(rows) => answer = rows,
                        Err(_) => {
                            class = ErrorClass::NonSevere;
                            answer = -1;
                            break;
                        }
                    }
                }
                (class, answer)
            }
        }
    };
    format!(
        "{:016x}\t{}\t{}\t{:?}\t{},{},{},{},{},{},{}",
        stmt_hash(statement),
        class.code(),
        answer,
        counter.cpu_seconds(),
        counter.rows_scanned,
        counter.fn_units,
        counter.sort_cmps,
        counter.hash_ops,
        counter.rows_materialized,
        counter.eval_units,
        counter.subquery_execs,
    )
}

fn render_slice() -> String {
    let workload = build_sdss(CONFIG);
    let db = sdss_database(CONFIG);
    let mut out = String::new();
    for entry in &workload.entries {
        out.push_str(&describe(&db, &entry.statement));
        out.push('\n');
    }
    out
}

#[test]
fn sdss_slice_labels_match_golden_bytes() {
    let rendered = render_slice();
    assert!(
        rendered.lines().count() >= 50,
        "slice unexpectedly small: {} entries",
        rendered.lines().count()
    );
    if std::env::var("SQLAN_UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &rendered).unwrap();
        eprintln!("golden file regenerated at {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with SQLAN_UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        golden, rendered,
        "labels diverged from the golden pin; if intentional, regenerate \
         with SQLAN_UPDATE_GOLDEN=1"
    );
}

/// The parallel labeler must reproduce the golden bytes too: the same
/// fixed-seed slice, built and described under a 4-thread pool, must
/// match the identical golden file (input-order merge, shared `Sync`
/// database, no scheduling-dependent state).
#[test]
fn sdss_slice_labels_match_golden_bytes_at_4_threads() {
    if std::env::var("SQLAN_UPDATE_GOLDEN").as_deref() == Ok("1") {
        return; // regeneration is handled by the sequential pin above
    }
    let rendered = sqlan_par::with_threads(4, render_slice);
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with SQLAN_UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        golden, rendered,
        "4-thread labels diverged from the sequential golden pin"
    );
}

/// The workload-level labels (aggregated per unique statement) are
/// deterministic too: building the same slice twice is bit-identical.
#[test]
fn workload_build_is_deterministic() {
    let a = build_sdss(CONFIG);
    let b = build_sdss(CONFIG);
    assert_eq!(a.entries.len(), b.entries.len());
    for (x, y) in a.entries.iter().zip(&b.entries) {
        assert_eq!(x.statement, y.statement);
        assert_eq!(x.error_class, y.error_class);
        assert_eq!(x.answer_size.to_bits(), y.answer_size.to_bits());
        assert_eq!(x.cpu_seconds.to_bits(), y.cpu_seconds.to_bits());
    }
}
