//! # sqlan
//!
//! Facade crate for the `sqlan` workspace — a reproduction of
//! *"Facilitating SQL Query Composition and Analysis"* (SIGMOD 2020).
//! Re-exports the sub-crates so examples and end-to-end tests have one
//! import root; see the individual crates for the real APIs.

pub use sqlan_core as core;
pub use sqlan_engine as engine;
pub use sqlan_par as par;
pub use sqlan_sql as sql;
pub use sqlan_workload as workload;
