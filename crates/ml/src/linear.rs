//! Traditional models over sparse TF-IDF features (§5.1): multinomial
//! logistic regression for classification, Huber-loss linear regression
//! for the regression problems, both trained with mini-batch SGD.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sqlan_features::SparseVec;

/// Training hyper-parameters for the sparse linear models.
#[derive(Debug, Clone, Copy)]
pub struct LinearConfig {
    pub lr: f32,
    pub epochs: usize,
    pub l2: f32,
    pub seed: u64,
    /// Huber transition point (regression only).
    pub huber_delta: f32,
}

impl Default for LinearConfig {
    fn default() -> Self {
        LinearConfig {
            lr: 0.5,
            epochs: 12,
            l2: 1e-6,
            seed: 17,
            huber_delta: 1.0,
        }
    }
}

/// Multinomial logistic regression over sparse features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    pub n_classes: usize,
    pub dim: usize,
    /// Row-major (n_classes × dim).
    w: Vec<f32>,
    b: Vec<f32>,
}

impl LogisticRegression {
    pub fn n_parameters(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Train with SGD on unweighted cross-entropy ("we treat all classes
    /// equally and use an unweighted cross entropy loss", §4.4.1).
    pub fn train(
        xs: &[SparseVec],
        ys: &[usize],
        n_classes: usize,
        dim: usize,
        cfg: LinearConfig,
    ) -> LogisticRegression {
        assert_eq!(xs.len(), ys.len());
        let mut model = LogisticRegression {
            n_classes,
            dim,
            w: vec![0.0; n_classes * dim],
            b: vec![0.0; n_classes],
        };
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let lr = cfg.lr / (1.0 + epoch as f32 * 0.3);
            for &i in &order {
                let p = model.predict_proba(&xs[i]);
                for (c, &pc) in p.iter().enumerate() {
                    let err = pc - if c == ys[i] { 1.0 } else { 0.0 };
                    if err == 0.0 {
                        continue;
                    }
                    let row = &mut model.w[c * dim..(c + 1) * dim];
                    for &(id, v) in &xs[i] {
                        let w = &mut row[id as usize];
                        *w -= lr * (err * v + cfg.l2 * *w);
                    }
                    model.b[c] -= lr * err;
                }
            }
        }
        model
    }

    /// Class probabilities for one sparse vector.
    pub fn predict_proba(&self, x: &SparseVec) -> Vec<f32> {
        let mut logits = self.b.clone();
        for (c, logit) in logits.iter_mut().enumerate() {
            let row = &self.w[c * self.dim..(c + 1) * self.dim];
            let mut acc = 0.0f32;
            for &(id, v) in x {
                acc += row[id as usize] * v;
            }
            *logit += acc;
        }
        sqlan_nn_softmax(&logits)
    }

    pub fn predict(&self, x: &SparseVec) -> usize {
        let p = self.predict_proba(x);
        argmax(&p)
    }
}

/// Linear regression trained with Huber loss over sparse features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HuberRegression {
    pub dim: usize,
    w: Vec<f32>,
    b: f32,
}

impl HuberRegression {
    pub fn n_parameters(&self) -> usize {
        self.w.len() + 1
    }

    pub fn train(xs: &[SparseVec], ys: &[f32], dim: usize, cfg: LinearConfig) -> HuberRegression {
        assert_eq!(xs.len(), ys.len());
        let mut model = HuberRegression {
            dim,
            w: vec![0.0; dim],
            b: 0.0,
        };
        // Initialize the bias at the label *median*: the minimizer of the
        // Huber objective's linear region, robust to the outliers these
        // skewed targets carry (§4.4.1).
        if !ys.is_empty() {
            let mut sorted = ys.to_vec();
            sorted.sort_by(f32::total_cmp);
            model.b = sorted[sorted.len() / 2];
        }
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let lr = cfg.lr / (1.0 + epoch as f32 * 0.3);
            for &i in &order {
                let pred = model.predict(&xs[i]);
                let r = pred - ys[i];
                // Huber gradient: r in the quadratic region, ±delta beyond.
                let g = r.clamp(-cfg.huber_delta, cfg.huber_delta);
                if g == 0.0 {
                    continue;
                }
                for &(id, v) in &xs[i] {
                    let w = &mut model.w[id as usize];
                    *w -= lr * (g * v + cfg.l2 * *w);
                }
                model.b -= lr * g;
            }
        }
        model
    }

    pub fn predict(&self, x: &SparseVec) -> f32 {
        let mut acc = self.b;
        for &(id, v) in x {
            acc += self.w[id as usize] * v;
        }
        acc
    }
}

fn sqlan_nn_softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum.max(1e-12)).collect()
}

/// Index of the maximum element (first wins ties).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot(id: u32) -> SparseVec {
        vec![(id, 1.0)]
    }

    #[test]
    fn logreg_learns_separable_classes() {
        // Feature 0 → class 0, feature 1 → class 1.
        let xs: Vec<SparseVec> = (0..100).map(|i| one_hot(i % 2)).collect();
        let ys: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let m = LogisticRegression::train(&xs, &ys, 2, 2, LinearConfig::default());
        assert_eq!(m.predict(&one_hot(0)), 0);
        assert_eq!(m.predict(&one_hot(1)), 1);
        let p = m.predict_proba(&one_hot(0));
        assert!(p[0] > 0.9, "confident: {p:?}");
    }

    #[test]
    fn logreg_probabilities_sum_to_one() {
        let xs = vec![one_hot(0), one_hot(1), one_hot(2)];
        let ys = vec![0, 1, 2];
        let m = LogisticRegression::train(&xs, &ys, 3, 3, LinearConfig::default());
        let p = m.predict_proba(&one_hot(1));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn huber_regression_fits_linear_target() {
        // y = 2·x0 + 1·x1 + 0.5
        let xs: Vec<SparseVec> = (0..200)
            .map(|i| vec![(0u32, (i % 5) as f32), (1u32, (i % 3) as f32)])
            .collect();
        let ys: Vec<f32> = xs
            .iter()
            .map(|x| 2.0 * x[0].1 + 1.0 * x[1].1 + 0.5)
            .collect();
        let cfg = LinearConfig {
            epochs: 60,
            lr: 0.1,
            ..Default::default()
        };
        let m = HuberRegression::train(&xs, &ys, 2, cfg);
        let pred = m.predict(&vec![(0u32, 3.0), (1u32, 2.0)]);
        assert!((pred - 8.5).abs() < 0.4, "pred {pred}");
    }

    #[test]
    fn huber_regression_resists_outliers() {
        // Constant target 1.0 with one absurd outlier; huber keeps the
        // prediction near the bulk, squared loss would be dragged away.
        let xs: Vec<SparseVec> = (0..100).map(|_| Vec::new()).collect();
        let mut ys = vec![1.0f32; 100];
        ys[0] = 1e6;
        let m = HuberRegression::train(
            &xs,
            &ys,
            1,
            LinearConfig {
                epochs: 50,
                ..Default::default()
            },
        );
        let pred = m.predict(&Vec::new());
        // Bias init at the (outlier-inflated) mean, then Huber pulls it to
        // the bulk.
        assert!(pred < 100.0, "huber should resist the outlier, pred={pred}");
    }

    #[test]
    fn argmax_first_wins_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn empty_features_predict_prior() {
        // With no features, logreg must fall back to the bias — the class
        // prior under training.
        let xs: Vec<SparseVec> = (0..90).map(|_| Vec::new()).collect();
        let ys: Vec<usize> = (0..90).map(|i| if i % 3 == 0 { 1 } else { 0 }).collect();
        let m = LogisticRegression::train(&xs, &ys, 2, 1, LinearConfig::default());
        assert_eq!(m.predict(&Vec::new()), 0);
    }
}
