//! # sqlan-ml
//!
//! Traditional machine-learning models for the `sqlan` reproduction of
//! *"Facilitating SQL Query Composition and Analysis"* (SIGMOD 2020):
//! the TF-IDF linear models (`ctfidf`/`wtfidf` of §5.1 — multinomial
//! logistic regression and Huber linear regression over sparse
//! bag-of-ngrams features) and the `mfreq`/`median`/`opt` baselines of
//! §6.1.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod linear;

pub use baselines::{MedianBaseline, MostFrequent, OptBaseline};
pub use linear::{argmax, HuberRegression, LinearConfig, LogisticRegression};
