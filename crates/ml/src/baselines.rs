//! The paper's simple baselines (§6.1): `mfreq` predicts the most frequent
//! training class; `median` predicts the training median; `opt` fits a
//! linear regression from optimizer cost estimates to CPU time.

use serde::{Deserialize, Serialize};

/// `mfreq`: predicts the most frequent class in the training labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MostFrequent {
    pub class: usize,
    pub n_classes: usize,
}

impl MostFrequent {
    pub fn fit(labels: &[usize], n_classes: usize) -> MostFrequent {
        let mut counts = vec![0usize; n_classes];
        for &l in labels {
            counts[l] += 1;
        }
        // First-wins on ties so empty inputs deterministically pick 0.
        let mut class = 0;
        for (i, &n) in counts.iter().enumerate() {
            if n > counts[class] {
                class = i;
            }
        }
        MostFrequent { class, n_classes }
    }

    pub fn predict(&self) -> usize {
        self.class
    }

    /// Degenerate "probabilities": all mass on the majority class.
    pub fn predict_proba(&self) -> Vec<f32> {
        let mut p = vec![1e-12f32; self.n_classes];
        p[self.class] = 1.0;
        p
    }
}

/// `median`: predicts the median of the training labels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MedianBaseline {
    pub median: f64,
}

impl MedianBaseline {
    pub fn fit(labels: &[f64]) -> MedianBaseline {
        if labels.is_empty() {
            return MedianBaseline { median: 0.0 };
        }
        let mut sorted = labels.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        MedianBaseline { median }
    }

    pub fn predict(&self) -> f64 {
        self.median
    }
}

/// `opt`: ordinary least squares from a small dense feature vector
/// (log-scaled optimizer cost estimates) to the label, solved with the
/// normal equations + ridge damping. Mirrors "an opt model which uses
/// linear regression to predict CPU time from the query optimizer cost
/// estimates" (§6.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptBaseline {
    pub weights: Vec<f64>,
    pub bias: f64,
}

impl OptBaseline {
    /// Fit `y ≈ w·x + b` on dense feature rows.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> OptBaseline {
        assert_eq!(xs.len(), ys.len());
        let d = xs.first().map(Vec::len).unwrap_or(0);
        let da = d + 1; // augmented with the bias column
                        // Normal equations: (XᵀX + λI) w = Xᵀy.
        let mut xtx = vec![0.0f64; da * da];
        let mut xty = vec![0.0f64; da];
        for (x, &y) in xs.iter().zip(ys) {
            let mut row = x.clone();
            row.push(1.0);
            for i in 0..da {
                xty[i] += row[i] * y;
                for j in 0..da {
                    xtx[i * da + j] += row[i] * row[j];
                }
            }
        }
        let lambda = 1e-6 * xs.len().max(1) as f64;
        for i in 0..da {
            xtx[i * da + i] += lambda;
        }
        let w = solve_gaussian(&mut xtx, &mut xty, da);
        OptBaseline {
            bias: w[d],
            weights: w[..d].to_vec(),
        }
    }

    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut acc = self.bias;
        for (w, v) in self.weights.iter().zip(x) {
            acc += w * v;
        }
        acc
    }
}

/// In-place Gaussian elimination with partial pivoting for the small dense
/// systems `opt` needs (d ≤ 4).
fn solve_gaussian(a: &mut [f64], b: &mut [f64], n: usize) -> Vec<f64> {
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[piv * n + col].abs() {
                piv = r;
            }
        }
        if piv != col {
            for c in 0..n {
                a.swap(col * n + c, piv * n + c);
            }
            b.swap(col, piv);
        }
        let diag = a[col * n + col];
        if diag.abs() < 1e-12 {
            continue; // singular direction; ridge term should prevent this
        }
        for r in col + 1..n {
            let f = a[r * n + col] / diag;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= a[col * n + c] * x[c];
        }
        let diag = a[col * n + col];
        x[col] = if diag.abs() < 1e-12 { 0.0 } else { acc / diag };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mfreq_picks_majority() {
        let m = MostFrequent::fit(&[0, 1, 1, 1, 2], 3);
        assert_eq!(m.predict(), 1);
        let p = m.predict_proba();
        assert_eq!(p.len(), 3);
        assert!(p[1] > 0.99);
    }

    #[test]
    fn mfreq_empty_defaults_to_zero() {
        assert_eq!(MostFrequent::fit(&[], 3).predict(), 0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(MedianBaseline::fit(&[3.0, 1.0, 2.0]).predict(), 2.0);
        assert_eq!(MedianBaseline::fit(&[1.0, 2.0, 3.0, 4.0]).predict(), 2.5);
        assert_eq!(MedianBaseline::fit(&[]).predict(), 0.0);
    }

    #[test]
    fn opt_recovers_exact_linear_relation() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 0.5 * x[1] + 7.0).collect();
        let m = OptBaseline::fit(&xs, &ys);
        assert!((m.weights[0] - 3.0).abs() < 1e-3, "{:?}", m);
        assert!((m.weights[1] + 0.5).abs() < 1e-3);
        assert!((m.bias - 7.0).abs() < 1e-2);
        assert!((m.predict(&[10.0, 100.0]) - (30.0 - 50.0 + 7.0)).abs() < 1e-2);
    }

    #[test]
    fn opt_handles_degenerate_inputs() {
        // Constant features: weight irrelevant, bias should fit the mean.
        let xs: Vec<Vec<f64>> = (0..10).map(|_| vec![1.0]).collect();
        let ys = vec![5.0f64; 10];
        let m = OptBaseline::fit(&xs, &ys);
        // The ridge term shrinks the (collinear) solution slightly.
        assert!((m.predict(&[1.0]) - 5.0).abs() < 1e-3);
        // Empty training set must not panic.
        let e = OptBaseline::fit(&[], &[]);
        assert_eq!(e.predict(&[]), 0.0);
    }
}
