//! Classification metrics: accuracy, confusion matrix, per-class
//! precision/recall/F-measure, mean cross-entropy.

use serde::{Deserialize, Serialize};

/// Fraction of predictions equal to the label.
pub fn accuracy(labels: &[usize], preds: &[usize]) -> f64 {
    assert_eq!(labels.len(), preds.len());
    if labels.is_empty() {
        return f64::NAN;
    }
    let correct = labels.iter().zip(preds).filter(|(a, b)| a == b).count();
    correct as f64 / labels.len() as f64
}

/// A confusion matrix over `n_classes`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    pub n_classes: usize,
    /// `counts[label][pred]`.
    pub counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    pub fn compute(n_classes: usize, labels: &[usize], preds: &[usize]) -> ConfusionMatrix {
        assert_eq!(labels.len(), preds.len());
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&l, &p) in labels.iter().zip(preds) {
            assert!(l < n_classes && p < n_classes, "class index out of range");
            counts[l][p] += 1;
        }
        ConfusionMatrix { n_classes, counts }
    }

    /// Number of samples with this true label.
    pub fn support(&self, class: usize) -> usize {
        self.counts[class].iter().sum()
    }

    /// Number of predictions of this class.
    pub fn predicted(&self, class: usize) -> usize {
        self.counts.iter().map(|row| row[class]).sum()
    }

    pub fn true_positives(&self, class: usize) -> usize {
        self.counts[class][class]
    }
}

/// Per-class precision/recall/F plus support (§6.1: "for every class C,
/// we report the per class F-measure").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    pub precision: f64,
    pub recall: f64,
    pub f_measure: f64,
    pub support: usize,
}

/// Per-class reports for all classes. Classes with zero support or zero
/// predictions get 0 precision/recall/F — matching the paper's convention
/// (`Fadmin` is 0 with 2 test queries, `Funknown` 0 for several models).
pub fn per_class_f_measure(cm: &ConfusionMatrix) -> Vec<ClassReport> {
    (0..cm.n_classes)
        .map(|c| {
            let tp = cm.true_positives(c) as f64;
            let pred = cm.predicted(c) as f64;
            let sup = cm.support(c) as f64;
            let precision = if pred > 0.0 { tp / pred } else { 0.0 };
            let recall = if sup > 0.0 { tp / sup } else { 0.0 };
            let f_measure = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            ClassReport {
                precision,
                recall,
                f_measure,
                support: cm.support(c),
            }
        })
        .collect()
}

/// Mean cross-entropy of predicted class distributions (Eq. A.3).
pub fn mean_cross_entropy(labels: &[usize], probs: &[Vec<f32>]) -> f64 {
    assert_eq!(labels.len(), probs.len());
    if labels.is_empty() {
        return f64::NAN;
    }
    let mut total = 0.0f64;
    for (&l, p) in labels.iter().zip(probs) {
        let pl = p.get(l).copied().unwrap_or(0.0).max(1e-12);
        total += -(pl as f64).ln();
    }
    total / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]), 0.75);
        assert!(accuracy(&[], &[]).is_nan());
    }

    #[test]
    fn confusion_matrix_counts() {
        let cm = ConfusionMatrix::compute(3, &[0, 0, 1, 2, 2], &[0, 1, 1, 2, 0]);
        assert_eq!(cm.counts[0], vec![1, 1, 0]);
        assert_eq!(cm.support(2), 2);
        assert_eq!(cm.predicted(0), 2);
        assert_eq!(cm.true_positives(1), 1);
    }

    #[test]
    fn f_measure_perfect_and_zero() {
        let cm = ConfusionMatrix::compute(2, &[0, 0, 1, 1], &[0, 0, 1, 1]);
        let r = per_class_f_measure(&cm);
        assert_eq!(r[0].f_measure, 1.0);
        assert_eq!(r[1].f_measure, 1.0);

        // Never predicting class 1 → F1 = 0 for class 1.
        let cm = ConfusionMatrix::compute(2, &[0, 0, 1, 1], &[0, 0, 0, 0]);
        let r = per_class_f_measure(&cm);
        assert_eq!(r[1].f_measure, 0.0);
        assert_eq!(r[1].support, 2);
    }

    #[test]
    fn f_measure_known_value() {
        // class 0: tp=2, fp=1, fn=1 → p=2/3, r=2/3, f=2/3.
        let cm = ConfusionMatrix::compute(2, &[0, 0, 0, 1, 1], &[0, 0, 1, 0, 1]);
        let r = per_class_f_measure(&cm);
        assert!((r[0].precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((r[0].recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((r[0].f_measure - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_class_is_zero_not_nan() {
        let cm = ConfusionMatrix::compute(3, &[0, 0], &[0, 0]);
        let r = per_class_f_measure(&cm);
        assert_eq!(r[1].f_measure, 0.0);
        assert_eq!(r[2].support, 0);
    }

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        let ce = mean_cross_entropy(&[0], &[vec![0.99, 0.01]]);
        assert!(ce < 0.02);
        let ce_bad = mean_cross_entropy(&[1], &[vec![0.99, 0.01]]);
        assert!(ce_bad > 4.0);
    }
}
