//! Service-latency summaries for the online prediction service: plain
//! percentiles over observed request latencies, reported the same way the
//! qerror tables report estimation error.

use serde::{Deserialize, Serialize};

/// The percentile of `samples` at `p` (in `[0, 100]`), nearest-rank over
/// a *sorted ascending* slice — the same convention as
/// [`crate::qerror_percentiles`]. Empty input yields `NaN`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// p50/p95/p99 latency summary in seconds, plus count and mean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    pub count: usize,
    pub mean_s: f64,
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarize raw latency samples (seconds). The input need not be
    /// sorted; an empty input yields a zero-count summary with `NaN`
    /// percentiles.
    pub fn from_seconds(samples: &[f64]) -> LatencySummary {
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let mean = if count == 0 {
            f64::NAN
        } else {
            sorted.iter().sum::<f64>() / count as f64
        };
        LatencySummary {
            count,
            mean_s: mean,
            p50_s: percentile(&sorted, 50.0),
            p95_s: percentile(&sorted, 95.0),
            p99_s: percentile(&sorted, 99.0),
            max_s: sorted.last().copied().unwrap_or(f64::NAN),
        }
    }

    /// Summarize microsecond samples (the unit the serving layer records).
    pub fn from_micros(samples: &[u64]) -> LatencySummary {
        let secs: Vec<f64> = samples.iter().map(|&u| u as f64 / 1e6).collect();
        LatencySummary::from_seconds(&secs)
    }

    /// Build a summary from pre-computed statistics — e.g. a bucketed
    /// histogram snapshot that already knows its count, mean and
    /// quantiles. A zero `count` yields the same NaN-filled shape as an
    /// empty sample set, regardless of the other arguments.
    pub fn from_stats(
        count: usize,
        mean_s: f64,
        p50_s: f64,
        p95_s: f64,
        p99_s: f64,
        max_s: f64,
    ) -> LatencySummary {
        if count == 0 {
            return LatencySummary::from_seconds(&[]);
        }
        LatencySummary {
            count,
            mean_s,
            p50_s,
            p95_s,
            p99_s,
            max_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        // Nearest rank over 100 points: p50 → index round(0.5*99) = 50.
        assert_eq!(percentile(&xs, 50.0), 51.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn summary_orders_percentiles() {
        let samples: Vec<f64> = (0..1000).map(|i| (i % 97) as f64 / 1000.0).collect();
        let s = LatencySummary::from_seconds(&samples);
        assert_eq!(s.count, 1000);
        assert!(s.p50_s <= s.p95_s && s.p95_s <= s.p99_s && s.p99_s <= s.max_s);
        assert!(s.mean_s > 0.0);
    }

    #[test]
    fn micros_convert_to_seconds() {
        let s = LatencySummary::from_micros(&[1_000_000, 1_000_000]);
        assert_eq!(s.p50_s, 1.0);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn from_stats_normalizes_empty() {
        let s = LatencySummary::from_stats(0, 1.0, 2.0, 3.0, 4.0, 5.0);
        assert_eq!(s.count, 0);
        assert!(s.p50_s.is_nan() && s.mean_s.is_nan());
        let s = LatencySummary::from_stats(3, 1.0, 2.0, 3.0, 4.0, 5.0);
        assert_eq!((s.count, s.mean_s, s.max_s), (3, 1.0, 5.0));
    }

    #[test]
    fn empty_summary_is_nan_not_panic() {
        let s = LatencySummary::from_seconds(&[]);
        assert_eq!(s.count, 0);
        assert!(s.p50_s.is_nan() && s.mean_s.is_nan());
    }
}
