//! # sqlan-metrics
//!
//! Evaluation metrics for the `sqlan` reproduction of *"Facilitating SQL
//! Query Composition and Analysis"* (SIGMOD 2020): accuracy, per-class
//! precision/recall/F-measure (§6.1), MSE and mean Huber loss over
//! log-transformed regression labels, mean cross-entropy, the qerror
//! percentile tables of §6.2 (Tables 3, 6, 7), and service-latency
//! percentile summaries for the online prediction layer.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod classification;
pub mod latency;
pub mod qerror;
pub mod regression;

pub use classification::{
    accuracy, mean_cross_entropy, per_class_f_measure, ClassReport, ConfusionMatrix,
};
pub use latency::{percentile, LatencySummary};
pub use qerror::{
    qerror, qerror_percentiles, qerror_percentiles_with_shift, qerror_with_shift, QErrorTable,
};
pub use regression::{huber_loss, mean_huber_loss, mse, squared_error};
