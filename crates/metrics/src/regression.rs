//! Regression metrics over log-transformed labels (§4.4.1, §6.1).

/// Squared error of one prediction.
pub fn squared_error(label: f64, pred: f64) -> f64 {
    let d = label - pred;
    d * d
}

/// Mean squared error (the paper's MSE: over log-transformed labels).
pub fn mse(labels: &[f64], preds: &[f64]) -> f64 {
    assert_eq!(labels.len(), preds.len());
    if labels.is_empty() {
        return f64::NAN;
    }
    labels
        .iter()
        .zip(preds)
        .map(|(&y, &p)| squared_error(y, p))
        .sum::<f64>()
        / labels.len() as f64
}

/// Huber loss of one residual (Eq. A.2), with threshold `delta`.
pub fn huber_loss(label: f64, pred: f64, delta: f64) -> f64 {
    let r = (pred - label).abs();
    if r <= delta {
        0.5 * r * r
    } else {
        delta * (r - 0.5 * delta)
    }
}

/// Mean Huber loss — the `Loss` column of Tables 2 and 5.
pub fn mean_huber_loss(labels: &[f64], preds: &[f64], delta: f64) -> f64 {
    assert_eq!(labels.len(), preds.len());
    if labels.is_empty() {
        return f64::NAN;
    }
    labels
        .iter()
        .zip(preds)
        .map(|(&y, &p)| huber_loss(y, p, delta))
        .sum::<f64>()
        / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert!(mse(&[], &[]).is_nan());
    }

    #[test]
    fn huber_quadratic_and_linear_regions() {
        // |r| <= delta → 0.5 r².
        assert_eq!(huber_loss(0.0, 0.5, 1.0), 0.125);
        // |r| > delta → delta(|r| - delta/2).
        assert_eq!(huber_loss(0.0, 3.0, 1.0), 2.5);
        // Continuous at the boundary.
        let at = huber_loss(0.0, 1.0, 1.0);
        let just_past = huber_loss(0.0, 1.0001, 1.0);
        assert!((at - just_past).abs() < 1e-3);
    }

    #[test]
    fn huber_is_symmetric() {
        assert_eq!(huber_loss(2.0, 5.0, 1.0), huber_loss(5.0, 2.0, 1.0));
    }

    #[test]
    fn mean_huber_bounded_by_mse_half() {
        // For small residuals, huber = mse/2.
        let y = [1.0, 2.0, 3.0];
        let p = [1.1, 2.1, 2.9];
        assert!((mean_huber_loss(&y, &p, 1.0) - mse(&y, &p) / 2.0).abs() < 1e-12);
    }
}
