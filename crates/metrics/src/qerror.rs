//! The qerror metric of Leis et al. (§6.1): the factor by which an
//! estimate differs from the truth, `max(y/ŷ, ŷ/y)`, reported at
//! percentiles (Tables 3, 6, 7).

use serde::{Deserialize, Serialize};

/// qerror of one estimate on the *raw* (de-transformed) scale. Both sides
/// are shifted by 1 so zero answers/times are well-defined; negative
/// estimates clamp to zero. For labels much smaller than 1 (CPU seconds),
/// use [`qerror_with_shift`] with a scale-appropriate shift.
pub fn qerror(truth: f64, estimate: f64) -> f64 {
    qerror_with_shift(truth, estimate, 1.0)
}

/// qerror with an explicit additive shift. The shift regularizes zeros and
/// must sit below the label scale of interest: 1.0 for row counts
/// (Table 3), ~0.01 s for CPU times (Tables 6–7) whose medians are far
/// below one second.
pub fn qerror_with_shift(truth: f64, estimate: f64, shift: f64) -> f64 {
    let y = truth.max(0.0) + shift;
    let e = estimate.max(0.0) + shift;
    (y / e).max(e / y)
}

/// qerror percentile table: for each requested percentile, the smallest q
/// such that that fraction of queries has qerror ≤ q.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QErrorTable {
    /// (percentile in [0,100], qerror value) pairs.
    pub rows: Vec<(f64, f64)>,
}

impl QErrorTable {
    /// Render one value the way the paper's tables do: values beyond
    /// `cap` print as "-" (the model "blew up" at that percentile).
    pub fn display_value(q: f64, cap: f64) -> String {
        if !q.is_finite() || q > cap {
            "-".to_string()
        } else if q >= 100.0 {
            format!("{:.0}", q)
        } else {
            format!("{:.2}", q)
        }
    }
}

/// Compute the qerror percentile table for raw-scale truths and estimates.
pub fn qerror_percentiles(truths: &[f64], estimates: &[f64], percentiles: &[f64]) -> QErrorTable {
    qerror_percentiles_with_shift(truths, estimates, percentiles, 1.0)
}

/// [`qerror_percentiles`] with an explicit shift (see [`qerror_with_shift`]).
pub fn qerror_percentiles_with_shift(
    truths: &[f64],
    estimates: &[f64],
    percentiles: &[f64],
    shift: f64,
) -> QErrorTable {
    assert_eq!(truths.len(), estimates.len());
    let mut qs: Vec<f64> = truths
        .iter()
        .zip(estimates)
        .map(|(&y, &e)| qerror_with_shift(y, e, shift))
        .collect();
    qs.sort_by(f64::total_cmp);
    let rows = percentiles
        .iter()
        .map(|&p| {
            if qs.is_empty() {
                return (p, f64::NAN);
            }
            let idx = ((p / 100.0) * (qs.len() - 1) as f64).round() as usize;
            (p, qs[idx.min(qs.len() - 1)])
        })
        .collect();
    QErrorTable { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_estimate_has_qerror_one() {
        assert_eq!(qerror(10.0, 10.0), 1.0);
        assert_eq!(qerror(0.0, 0.0), 1.0);
    }

    #[test]
    fn qerror_is_symmetric_in_ratio() {
        let over = qerror(10.0, 100.0);
        let under = qerror(100.0, 10.0);
        assert!((over - under).abs() < 1e-12);
        assert!(over > 9.0);
    }

    #[test]
    fn qerror_handles_zero_and_negative() {
        assert!((qerror(0.0, 9.0) - 10.0).abs() < 1e-12);
        // Negative estimates clamp to zero.
        assert_eq!(qerror(0.0, -5.0), 1.0);
    }

    #[test]
    fn percentile_table_monotone() {
        let truths: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ests: Vec<f64> = (0..100).map(|i| (i as f64) * 2.0).collect();
        let t = qerror_percentiles(&truths, &ests, &[50.0, 75.0, 90.0, 95.0]);
        for w in t.rows.windows(2) {
            assert!(
                w[0].1 <= w[1].1,
                "percentiles must be monotone: {:?}",
                t.rows
            );
        }
    }

    #[test]
    fn median_qerror_of_exact_estimates_is_one() {
        let y = [5.0, 10.0, 20.0];
        let t = qerror_percentiles(&y, &y, &[50.0]);
        assert_eq!(t.rows[0].1, 1.0);
    }

    #[test]
    fn display_caps_blown_up_values() {
        assert_eq!(QErrorTable::display_value(2.345, 1e4), "2.35");
        // {:.0} rounds half-to-even.
        assert_eq!(QErrorTable::display_value(1234.5, 1e4), "1234");
        assert_eq!(QErrorTable::display_value(5e4, 1e4), "-");
        assert_eq!(QErrorTable::display_value(f64::INFINITY, 1e4), "-");
    }
}
