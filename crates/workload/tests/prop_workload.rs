//! Property-based tests for session identification and the extraction
//! pipeline invariants.

use proptest::prelude::*;
use sqlan_workload::{
    identify_sessions, repetition_histogram, split_with_fractions, Hit, SessionClass,
    SESSION_GAP_SECONDS,
};

fn mk_hit(t: f64, ip: u32, class: SessionClass) -> Hit {
    Hit {
        timestamp: t,
        ip,
        statement: format!("SELECT {t}"),
        agent_class: class,
    }
}

proptest! {
    /// Identification partitions the hit set: every hit in exactly one
    /// session, sessions non-empty.
    #[test]
    fn identification_is_a_partition(
        times in prop::collection::vec(0.0f64..500_000.0, 1..60),
        ips in prop::collection::vec(0u32..5, 1..60),
    ) {
        let n = times.len().min(ips.len());
        let hits: Vec<Hit> = (0..n)
            .map(|i| mk_hit(times[i], ips[i], SessionClass::Browser))
            .collect();
        let sessions = identify_sessions(&hits);
        let mut seen = vec![false; n];
        for s in &sessions {
            prop_assert!(!s.hit_indices.is_empty());
            for &i in &s.hit_indices {
                prop_assert!(!seen[i], "hit {} assigned twice", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "all hits assigned");
    }

    /// Within one identified session: single IP, time-sorted, gaps ≤ 30min.
    /// Across consecutive sessions of the same IP: gap > 30min.
    #[test]
    fn gap_rule_holds(
        times in prop::collection::vec(0.0f64..1_000_000.0, 1..80),
        ip_count in 1u32..4,
    ) {
        let hits: Vec<Hit> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| mk_hit(t, i as u32 % ip_count, SessionClass::Program))
            .collect();
        let sessions = identify_sessions(&hits);
        for s in &sessions {
            let ip = hits[s.hit_indices[0]].ip;
            for w in s.hit_indices.windows(2) {
                prop_assert_eq!(hits[w[0]].ip, ip);
                prop_assert_eq!(hits[w[1]].ip, ip);
                let gap = hits[w[1]].timestamp - hits[w[0]].timestamp;
                prop_assert!(gap >= 0.0, "sorted within session");
                prop_assert!(gap <= SESSION_GAP_SECONDS, "gap rule inside session");
            }
        }
        // Consecutive sessions on the same IP are separated by > gap.
        for a in 0..sessions.len() {
            for b in 0..sessions.len() {
                if a == b { continue; }
                let (sa, sb) = (&sessions[a], &sessions[b]);
                let ip_a = hits[sa.hit_indices[0]].ip;
                let ip_b = hits[sb.hit_indices[0]].ip;
                if ip_a != ip_b { continue; }
                let last_a = hits[*sa.hit_indices.last().unwrap()].timestamp;
                let first_b = hits[sb.hit_indices[0]].timestamp;
                if first_b >= last_a {
                    prop_assert!(
                        first_b - last_a > SESSION_GAP_SECONDS,
                        "distinct sessions of one IP must be > 30min apart"
                    );
                }
            }
        }
    }

    /// Bot override: any session containing a bot hit is labeled bot.
    #[test]
    fn bot_always_wins(classes in prop::collection::vec(0usize..7, 1..20)) {
        let hits: Vec<Hit> = classes
            .iter()
            .enumerate()
            .map(|(i, &c)| mk_hit(i as f64, 0, SessionClass::from_index(c).unwrap()))
            .collect();
        let sessions = identify_sessions(&hits);
        prop_assert_eq!(sessions.len(), 1);
        let has_bot = classes.contains(&SessionClass::Bot.index());
        if has_bot {
            prop_assert_eq!(sessions[0].label, SessionClass::Bot);
        }
    }

    /// The repetition histogram conserves mass.
    #[test]
    fn repetition_histogram_conserves(reps in prop::collection::vec(1u32..3000, 0..200)) {
        let h = repetition_histogram(&reps);
        let total: usize = h.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(total, reps.len());
    }

    /// Splits partition indices for any fractions.
    #[test]
    fn split_partitions(n in 0usize..500, train in 0.0f64..0.9, valid in 0.0f64..0.1) {
        let s = split_with_fractions(n, train, valid, 3);
        let mut all: Vec<usize> =
            s.train.iter().chain(&s.valid).chain(&s.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
