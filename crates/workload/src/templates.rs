//! Per-session-class query template generators.
//!
//! The central realism requirement (DESIGN.md §2): labels must be
//! *functions of the query text*, and session classes must differ in
//! syntactic style the way the paper's Figure 8 shows — bots submit the
//! same template with different constants, programs sweep parameterized
//! windows, browsers write short diverse queries with occasional mistakes,
//! and direct-SQL (`no_web_hit`) users write the long, nested, function-
//! heavy statements.

use rand::rngs::StdRng;
use rand::Rng;

use crate::labels::SessionClass;
use crate::schema::UserSchema;

/// Probability knobs for error injection, per class.
#[derive(Debug, Clone, Copy)]
struct Mistakes {
    /// Keyword typo / garbage text → severe error.
    p_severe: f64,
    /// Misspelled column/table → non-severe error.
    p_non_severe: f64,
}

fn mistakes(class: SessionClass) -> Mistakes {
    match class {
        // Automation rarely typos; humans do. The paper's SDSS mix is
        // 97.2 / 1.9 / 0.85 (success / non_severe / severe) over 618k
        // statements; at laptop scale those rates would leave single-digit
        // minority-class train/test counts and the classification task
        // would degenerate, so we compress the imbalance to roughly
        // 89 / 7 / 4 while keeping the ordering
        // success ≫ non_severe > severe (documented in EXPERIMENTS.md).
        SessionClass::Bot => Mistakes {
            p_severe: 0.004,
            p_non_severe: 0.018,
        },
        SessionClass::Admin => Mistakes {
            p_severe: 0.0,
            p_non_severe: 0.0,
        },
        SessionClass::Program => Mistakes {
            p_severe: 0.012,
            p_non_severe: 0.050,
        },
        SessionClass::Browser => Mistakes {
            p_severe: 0.100,
            p_non_severe: 0.130,
        },
        SessionClass::NoWebHit => Mistakes {
            p_severe: 0.035,
            p_non_severe: 0.085,
        },
        SessionClass::Anonymous => Mistakes {
            p_severe: 0.120,
            p_non_severe: 0.150,
        },
        SessionClass::Unknown => Mistakes {
            p_severe: 0.080,
            p_non_severe: 0.100,
        },
    }
}

/// Generate one SDSS statement in the style of `class`.
pub fn sdss_statement(class: SessionClass, rng: &mut StdRng) -> String {
    let m = mistakes(class);
    let roll: f64 = rng.gen();
    if roll < m.p_severe {
        return severe_statement(rng);
    }
    let sql = match class {
        SessionClass::Bot => bot_statement(rng),
        SessionClass::Admin => admin_statement(rng),
        SessionClass::Program => program_statement(rng),
        SessionClass::Browser => browser_statement(rng),
        SessionClass::NoWebHit => no_web_hit_statement(rng),
        SessionClass::Anonymous => anonymous_statement(rng),
        SessionClass::Unknown => match rng.gen_range(0..4) {
            0 => bot_statement(rng),
            1 => browser_statement(rng),
            2 => program_statement(rng),
            _ => anonymous_statement(rng),
        },
    };
    if roll < m.p_severe + m.p_non_severe {
        break_identifier(&sql, rng)
    } else {
        sql
    }
}

// ---- per-class styles -----------------------------------------------------

fn bot_statement(rng: &mut StdRng) -> String {
    // Crawlers replay the same template with fresh constants.
    match rng.gen_range(0..10) {
        0..=5 => format!("SELECT * FROM PhotoTag WHERE objId={}", objid(rng)),
        6..=7 => format!("SELECT * FROM PhotoObj WHERE objid={}", objid(rng)),
        8 => format!("SELECT ra,dec FROM PhotoTag WHERE objId={}", objid(rng)),
        _ => format!(
            "SELECT * FROM SpecObj WHERE specobjid={}",
            rng.gen_range(0..9_000)
        ),
    }
}

fn admin_statement(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4) {
        0 => format!(
            "SELECT count(*) FROM Jobs WHERE status={}",
            rng.gen_range(0..6)
        ),
        1 => "SELECT name,queue FROM Servers ORDER BY queue".to_string(),
        2 => format!(
            "SELECT target,count(*) FROM Jobs WHERE queue={} GROUP BY target",
            rng.gen_range(1..6)
        ),
        _ => "SELECT s.name FROM Servers s, Status t WHERE s.serverid=t.statusid".to_string(),
    }
}

fn program_statement(rng: &mut StdRng) -> String {
    // Parameter sweeps: cone searches and plate scans with varying widths,
    // which is what makes answer sizes heavy-tailed.
    let ra = rng.gen_range(0.0..360.0);
    let dec = rng.gen_range(-25.0..85.0);
    let w = 10f64.powf(rng.gen_range(-2.0..1.3)); // 0.01° … 20°
    match rng.gen_range(0..5) {
        0..=1 => format!(
            "SELECT p.objid,p.ra,p.dec,p.u,p.g,p.r,p.i,p.z FROM PhotoObj AS p WHERE \
             p.ra BETWEEN {:.6} AND {:.6} AND p.dec BETWEEN {:.6} AND {:.6} ORDER BY p.objid",
            ra, ra + w, dec, dec + w
        ),
        2 => format!(
            "SELECT objid,ra,dec FROM PhotoObj WHERE type={} AND ra BETWEEN {:.6} AND {:.6}",
            rng.gen_range(0..7),
            ra,
            ra + w
        ),
        3 => format!(
            "SELECT specobjid,z FROM SpecObj WHERE plate={} AND fiberid BETWEEN {} AND {}",
            rng.gen_range(266..2975),
            rng.gen_range(1..320),
            rng.gen_range(320..641)
        ),
        _ => format!(
            "SELECT g.objid,g.petror50_r FROM Galaxy g WHERE g.r<{:.3} AND g.dec BETWEEN {:.6} AND {:.6}",
            rng.gen_range(15.0..21.0),
            dec,
            dec + w
        ),
    }
}

fn browser_statement(rng: &mut StdRng) -> String {
    // The web interface's sample-query page, plus short hand-written ones.
    match rng.gen_range(0..9) {
        0 => format!("SELECT TOP {} * FROM PhotoObj", [10, 50, 100][rng.gen_range(0..3)]),
        1 => format!(
            "SELECT count(*) FROM Galaxy WHERE r<{:.2}",
            rng.gen_range(16.0..22.0)
        ),
        2 => format!(
            "SELECT objid,ra,dec FROM Star WHERE u-g>{:.2}",
            rng.gen_range(0.0..2.5)
        ),
        3 => format!(
            "SELECT TOP {} z,zconf FROM SpecObj WHERE specclass={} ORDER BY z DESC",
            rng.gen_range(5..200),
            rng.gen_range(0..6)
        ),
        4 => format!(
            "SELECT s.z,p.ra,p.dec FROM SpecObj s INNER JOIN PhotoObj p ON s.bestobjid=p.objid \
             WHERE s.z BETWEEN {:.3} AND {:.3}",
            rng.gen_range(0.0..1.0),
            rng.gen_range(1.0..3.5)
        ),
        5 => format!(
            "SELECT type,count(*) FROM PhotoObj WHERE flags&{}>0 GROUP BY type",
            1u32 << rng.gen_range(0..20)
        ),
        6 => format!(
            "SELECT objid FROM PhotoObj WHERE flags & dbo.fPhotoFlags('{}') > 0",
            flag_name(rng)
        ),
        7 => format!(
            "SELECT TOP 10 objid,dbo.fGetURLExpid(objid) FROM PhotoTag WHERE ra BETWEEN {:.4} AND {:.4}",
            rng.gen_range(0.0..359.0),
            rng.gen_range(0.0..360.0)
        ),
        _ => format!("SELECT count(*) FROM {}", table_name(rng)),
    }
}

fn no_web_hit_statement(rng: &mut StdRng) -> String {
    // CasJobs direct SQL: long, nested, function-heavy, often INTO MyDB.
    match rng.gen_range(0..9) {
        8 => {
            // Correlated subquery: the classic runaway CasJobs query. The
            // objid pre-filter bounds the outer cardinality, so the CPU
            // cost sweeps a wide range — this arm is most of the label
            // distribution's heavy tail. It is also genuinely expensive to
            // *execute* while labeling, so most draws pick the smaller
            // Field table for the correlated side.
            let outer = rng.gen_range(100..1500);
            if rng.gen_bool(0.3) {
                format!(
                    "SELECT p.objid, p.r FROM PhotoObj p WHERE p.objid < {} AND EXISTS \
                     (SELECT 1 FROM Neighbors n WHERE n.objid = p.objid AND n.distance < {:.4})",
                    outer,
                    rng.gen_range(0.005..1.5)
                )
            } else {
                format!(
                    "SELECT p.objid, p.r FROM PhotoObj p WHERE p.objid < {} AND EXISTS \
                     (SELECT 1 FROM Field f WHERE f.fieldid = p.field AND f.quality >= {})",
                    outer,
                    rng.gen_range(0..4)
                )
            }
        }
        0 => {
            // The Figure 5 pattern: nested aggregate over a join. (The
            // paper's verbatim query is ambiguous — both tables carry
            // modelmag columns — so the subquery qualifies its operands.)
            format!(
                "SELECT dbo.fGetURLExpid(objid) FROM SpecPhoto WHERE modelmag_u-modelmag_g = \
                 (SELECT min(s.modelmag_u-s.modelmag_g) FROM SpecPhoto AS s INNER JOIN PhotoObj AS p \
                 ON s.objid=p.objid WHERE s.flags_g={} OR p.psfmagerr_g<={:.2} AND p.psfmagerr_u<={:.2})",
                rng.gen_range(0..4),
                rng.gen_range(0.05..0.5),
                rng.gen_range(0.05..0.6)
            )
        }
        1 => {
            let ra = rng.gen_range(0.0..358.0);
            let dec = rng.gen_range(-25.0..83.0);
            format!(
                "SELECT q.objid AS qid, dbo.fDistanceArcMinEq(q.ra,q.dec,p.ra,p.dec) AS dist, \
                 p.u,p.g,p.r INTO mydb.cand_{} FROM SpecObj AS q, PhotoObj AS p WHERE \
                 q.bestobjid=p.objid AND q.ra BETWEEN {:.4} AND {:.4} AND q.dec BETWEEN {:.4} AND {:.4} \
                 ORDER BY q.ra",
                rng.gen_range(0..100000),
                ra,
                ra + rng.gen_range(0.5..2.0),
                dec,
                dec + rng.gen_range(0.5..2.0)
            )
        }
        2 => format!(
            "SELECT p.type, count(*) AS n, avg(p.r) AS mr FROM PhotoObj p WHERE \
             p.flags & dbo.fPhotoFlags('{}') = 0 AND p.r BETWEEN {:.2} AND {:.2} \
             GROUP BY p.type HAVING count(*) > {} ORDER BY n DESC",
            flag_name(rng),
            rng.gen_range(14.0..18.0),
            rng.gen_range(18.0..23.0),
            rng.gen_range(1..100)
        ),
        3 => format!(
            "SELECT n.objid, n.neighborobjid, n.distance FROM Neighbors n WHERE n.distance < {:.4} \
             AND n.objid IN (SELECT objid FROM Galaxy WHERE petror50_r > {:.2})",
            rng.gen_range(0.01..1.0),
            rng.gen_range(1.0..20.0)
        ),
        4 => format!(
            "SELECT s.specobjid, s.z, p.modelmag_u - p.modelmag_g AS ug FROM SpecPhoto s \
             INNER JOIN PhotoObj p ON s.objid = p.objid LEFT JOIN Neighbors n ON n.objid = p.objid \
             WHERE s.z > {:.3} AND p.mode = 1",
            rng.gen_range(0.0..2.0)
        ),
        5 => format!(
            "SELECT j.target, cast(j.estimate AS varchar) AS q FROM Jobs j, Users u, \
             (SELECT DISTINCT target, queue FROM Servers s1 WHERE s1.name NOT IN \
             (SELECT name FROM Servers s, (SELECT target, min(queue) AS queue FROM Servers \
             GROUP BY target) AS a WHERE a.target = s.target)) b \
             WHERE j.outputtype LIKE '%{}%' AND j.userid = u.userid",
            ["QUERY", "TABLE", "FILE"][rng.gen_range(0..3)]
        ),
        6 => format!(
            "SELECT CASE WHEN z < {:.2} THEN 'near' ELSE 'far' END AS bucket, count(*) \
             FROM SpecObj WHERE zconf > {:.2} GROUP BY CASE WHEN z < {:.2} THEN 'near' ELSE 'far' END",
            rng.gen_range(0.1..1.0),
            rng.gen_range(0.5..0.99),
            rng.gen_range(0.1..1.0)
        ),
        _ => {
            if rng.gen_bool(0.25) {
                format!("DROP TABLE mydb.cand_{}", rng.gen_range(0..100000))
            } else if rng.gen_bool(0.2) {
                format!("EXEC dbo.spGetNeighbors {:.4}, {:.4}", rng.gen_range(0.0..360.0), rng.gen_range(-25.0..85.0))
            } else {
                format!(
                    "SELECT f.run, f.camcol, count(*) FROM Field f, PhotoObj p WHERE \
                     p.field = f.fieldid AND f.quality >= {} GROUP BY f.run, f.camcol",
                    rng.gen_range(0..4)
                )
            }
        }
    }
}

fn anonymous_statement(rng: &mut StdRng) -> String {
    match rng.gen_range(0..3) {
        0 => format!("SELECT count(*) FROM {}", table_name(rng)),
        1 => format!(
            "SELECT TOP {} * FROM {}",
            rng.gen_range(1..30),
            table_name(rng)
        ),
        _ => format!("SELECT objid FROM PhotoTag WHERE objid={}", objid(rng)),
    }
}

/// Queries rejected before reaching the server: keyword typos, truncation,
/// or plain natural language pasted into the SQL box.
fn severe_statement(rng: &mut StdRng) -> String {
    // Every arm carries fresh constants: without them, identical severe
    // statements collapse in the dedup pass and the class starves.
    match rng.gen_range(0..5) {
        0 => format!("SELEC * FROM PhotoObj WHERE objid={}", objid(rng)),
        1 => format!(
            "SELECT * FORM PhotoTag WHERE ra < {:.2}",
            rng.gen_range(0.0..360.0)
        ),
        2 => format!(
            "SELECT * FROM PhotoObj WHERE ra BETWEEN {:.2} AND",
            rng.gen_range(0.0..360.0)
        ),
        3 => {
            let noun = ["galaxies", "stars", "quasars", "nebulae"][rng.gen_range(0..4)];
            let target = ["m31", "ngc 1275", "the crab nebula", "sgr a*"][rng.gen_range(0..4)];
            match rng.gen_range(0..3) {
                0 => format!("how do I find all the {noun} near {target}"),
                1 => format!(
                    "please show me {noun} brighter than {:.1}",
                    rng.gen_range(10.0..22.0)
                ),
                _ => format!("what is the redshift of {target}?"),
            }
        }
        _ => format!(
            "SELECT objid FROM PhotoObj WHERE name='{}{}", // unterminated literal
            word(rng),
            rng.gen_range(0..10_000)
        ),
    }
}

/// Misspell one identifier so the statement parses but fails at the server.
fn break_identifier(sql: &str, rng: &mut StdRng) -> String {
    // Column misspellings seen in real logs: wrong case is fine (we're
    // case-insensitive) so use genuinely wrong names.
    let swaps: &[(&str, &[&str])] = &[
        ("objid", &["objectid", "obj_id", "objld"]),
        ("PhotoObj", &["PhotoObjAll", "Photoobjs", "PhotObj"]),
        ("PhotoTag", &["PhotoTags", "Phototagg"]),
        ("SpecObj", &["SpecObjAll", "SpectroObj"]),
        ("ra", &["rightascension", "ra2000"]),
        ("dec", &["declination", "dec2000"]),
        ("z", &["redshift"]),
        ("flags", &["flag", "flags_r"]),
    ];
    for (needle, subs) in swaps {
        if sql.contains(needle) && rng.gen_bool(0.6) {
            let sub = subs[rng.gen_range(0..subs.len())];
            return sql.replacen(needle, sub, 1);
        }
    }
    // Fallback: reference a column that doesn't exist anywhere.
    format!("{sql} AND nonexistent_col > 0")
}

// ---- shared helpers -------------------------------------------------------

fn objid(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.3) {
        // Hex object ids, as in the paper's Figure 2a. These miss the
        // synthetic id space, returning 0 rows — like most dangling bot
        // lookups in the real archive.
        format!("0x{:016x}", rng.gen::<u64>() >> 8)
    } else {
        // In-range sequential ids hit exactly one row.
        format!("{}", rng.gen_range(0..70_000))
    }
}

fn table_name(rng: &mut StdRng) -> &'static str {
    [
        "PhotoObj",
        "PhotoTag",
        "Galaxy",
        "Star",
        "SpecObj",
        "SpecPhoto",
        "Field",
    ][rng.gen_range(0..7)]
}

fn flag_name(rng: &mut StdRng) -> &'static str {
    [
        "BLENDED",
        "SATURATED",
        "EDGE",
        "CHILD",
        "DEBLENDED_AS_MOVING",
        "BRIGHT",
    ][rng.gen_range(0..6)]
}

fn word(rng: &mut StdRng) -> &'static str {
    ["andromeda", "m31", "crab", "sombrero"][rng.gen_range(0..4)]
}

// ---- SQLShare -------------------------------------------------------------

/// Generate one SQLShare-style statement over `user`'s schema.
///
/// SQLShare queries are longer, touch more tables, and nest more than SDSS
/// ones (Figure 4 vs Figure 3) but carry fewer WHERE predicates.
pub fn sqlshare_statement(user: &UserSchema, rng: &mut StdRng) -> String {
    let p_severe = 0.015;
    let p_non_severe = 0.035;
    let roll: f64 = rng.gen();
    if roll < p_severe {
        return sqlshare_severe(user, rng);
    }
    let sql = sqlshare_clean(user, rng);
    if roll < p_severe + p_non_severe {
        // Reference a column from a *different* user's naming space.
        format!("{sql} AND missing_{} > 0", rng.gen_range(0..50))
    } else {
        sql
    }
}

fn pick_table<'u>(user: &'u UserSchema, rng: &mut StdRng) -> (usize, &'u str) {
    let i = rng.gen_range(0..user.table_names.len());
    (i, user.table_names[i].as_str())
}

fn pick_cols<'u>(user: &'u UserSchema, t: usize, n: usize, rng: &mut StdRng) -> Vec<&'u str> {
    let cols = &user.table_columns[t];
    (0..n)
        .map(|_| cols[rng.gen_range(0..cols.len())].as_str())
        .collect()
}

fn sqlshare_clean(user: &UserSchema, rng: &mut StdRng) -> String {
    let (t, table) = pick_table(user, rng);
    match rng.gen_range(0..9) {
        8 => {
            // Correlated running-aggregate — the quadratic anti-pattern
            // ad-hoc analysts write; dominates the CPU label's heavy tail.
            let c = pick_cols(user, t, 1, rng)[0];
            format!(
                "SELECT a.rowid, a.{c} FROM {table} a WHERE a.rowid < {} AND a.{c} > \
                 (SELECT avg(b.{c}) FROM {table} b WHERE b.rowid < a.rowid)",
                rng.gen_range(100..1200)
            )
        }
        0 => {
            let cols = pick_cols(user, t, rng.gen_range(1..4), rng);
            format!("SELECT {} FROM {}", cols.join(", "), table)
        }
        1 => {
            let c = pick_cols(user, t, 1, rng)[0];
            format!("SELECT {c}, count(*) AS n FROM {table} GROUP BY {c} ORDER BY n DESC",)
        }
        2 => {
            let cols = pick_cols(user, t, 2, rng);
            format!(
                "SELECT {}, {} FROM {} WHERE {} > {:.3}",
                cols[0],
                cols[1],
                table,
                cols[0],
                rng.gen_range(0.0..100.0)
            )
        }
        3 => {
            // Self-join-ish two-table analytics when the user has ≥2 tables.
            if user.table_names.len() >= 2 {
                let (t2, table2) = pick_table(user, rng);
                let c1 = pick_cols(user, t, 1, rng)[0];
                let c2 = pick_cols(user, t2, 1, rng)[0];
                format!(
                    "SELECT a.{c1}, b.{c2} FROM {table} a INNER JOIN {table2} b ON a.rowid = b.rowid"
                )
            } else {
                let c = pick_cols(user, t, 1, rng)[0];
                format!("SELECT avg({c}) FROM {table}")
            }
        }
        4 => {
            // Derived-table nesting (SQLShare's hallmark).
            let c = pick_cols(user, t, 1, rng)[0];
            format!(
                "SELECT d.{c}, d.n FROM (SELECT {c}, count(*) AS n FROM {table} GROUP BY {c}) d \
                 WHERE d.n > {}",
                rng.gen_range(1..20)
            )
        }
        5 => {
            // Nested aggregation two levels deep.
            let c = pick_cols(user, t, 1, rng)[0];
            format!(
                "SELECT {c} FROM {table} WHERE {c} > (SELECT avg({c}) FROM {table} WHERE rowid IN \
                 (SELECT rowid FROM {table} WHERE {c} IS NOT NULL))"
            )
        }
        6 => {
            let c = pick_cols(user, t, 1, rng)[0];
            format!(
                "SELECT CASE WHEN {c} > {:.2} THEN 'high' WHEN {c} > {:.2} THEN 'mid' ELSE 'low' \
                 END AS bucket, count(*) FROM {table} GROUP BY CASE WHEN {c} > {:.2} THEN 'high' \
                 WHEN {c} > {:.2} THEN 'mid' ELSE 'low' END",
                rng.gen_range(50.0..100.0),
                rng.gen_range(0.0..50.0),
                rng.gen_range(50.0..100.0),
                rng.gen_range(0.0..50.0)
            )
        }
        _ => {
            let cols = pick_cols(user, t, rng.gen_range(2..6), rng);
            format!(
                "SELECT DISTINCT {} FROM {} WHERE {} BETWEEN {:.3} AND {:.3} ORDER BY {}",
                cols.join(", "),
                table,
                cols[0],
                rng.gen_range(0.0..20.0),
                rng.gen_range(20.0..120.0),
                cols[0]
            )
        }
    }
}

fn sqlshare_severe(user: &UserSchema, rng: &mut StdRng) -> String {
    let (_, table) = pick_table(user, rng);
    match rng.gen_range(0..3) {
        0 => format!("SELECT * FORM {table}"),
        1 => format!("SELECT count( FROM {table}"),
        _ => "paste your query here".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sqlan_sql::extract_props;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn bot_queries_are_uniform_point_lookups() {
        let mut r = rng(1);
        for _ in 0..50 {
            let q = sdss_statement(SessionClass::Bot, &mut r);
            assert!(q.to_uppercase().contains("SELECT"), "bad bot query: {q}");
        }
    }

    #[test]
    fn no_web_hit_is_more_complex_than_bot() {
        let mut r = rng(2);
        let avg = |class: SessionClass, r: &mut StdRng| -> f64 {
            let mut total = 0.0;
            for _ in 0..200 {
                let q = sdss_statement(class, r);
                let p = extract_props(&q);
                total += p.num_chars as f64;
            }
            total / 200.0
        };
        let bot = avg(SessionClass::Bot, &mut r);
        let nwh = avg(SessionClass::NoWebHit, &mut r);
        assert!(
            nwh > 2.0 * bot,
            "no_web_hit ({nwh:.0} chars) must be much longer than bot ({bot:.0})"
        );
    }

    #[test]
    fn most_statements_parse() {
        let mut r = rng(3);
        let mut parsed = 0;
        let n = 500;
        for i in 0..n {
            let class = SessionClass::ALL[i % 7];
            let q = sdss_statement(class, &mut r);
            if sqlan_sql::parse(&q).result.is_ok() {
                parsed += 1;
            }
        }
        // Severe rates are small; the overwhelming majority must parse.
        assert!(parsed as f64 / n as f64 > 0.9, "only {parsed}/{n} parsed");
    }

    #[test]
    fn nested_aggregation_appears_in_no_web_hit() {
        let mut r = rng(4);
        let mut seen = false;
        for _ in 0..200 {
            let q = sdss_statement(SessionClass::NoWebHit, &mut r);
            if extract_props(&q).nested_aggregation {
                seen = true;
                break;
            }
        }
        assert!(seen, "no_web_hit should sometimes nest aggregates");
    }

    #[test]
    fn sqlshare_statements_reference_user_tables() {
        let (_, users) = crate::schema::sqlshare_catalog(3, crate::schema::Scale(0.05), 5);
        let mut r = rng(5);
        for _ in 0..100 {
            let u = &users[1];
            let q = sqlshare_statement(u, &mut r);
            let refs_own = u.table_names.iter().any(|t| q.contains(t.as_str()))
                || !q.to_uppercase().contains("FROM"); // severe garbage
            assert!(refs_own, "query should reference user tables: {q}");
        }
    }

    #[test]
    fn sqlshare_nests_more_than_sdss_bots() {
        let (_, users) = crate::schema::sqlshare_catalog(3, crate::schema::Scale(0.05), 6);
        let mut r = rng(6);
        let mut nested = 0;
        for _ in 0..300 {
            let q = sqlshare_statement(&users[0], &mut r);
            if extract_props(&q).nestedness_level > 0 {
                nested += 1;
            }
        }
        assert!(
            nested > 10,
            "SQLShare should nest frequently, saw {nested}/300"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = rng(7);
        let mut b = rng(7);
        for class in SessionClass::ALL {
            assert_eq!(sdss_statement(class, &mut a), sdss_statement(class, &mut b));
        }
    }
}
