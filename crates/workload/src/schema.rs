//! Synthetic database schemas: an SDSS-like astronomy catalog and
//! per-user SQLShare-like instances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sqlan_engine::{Catalog, ColumnSpec, TableSpec};

/// Scale factor applied to all table row counts. 1.0 ≈ the default
/// laptop-friendly sizes below; the real SDSS is ~4 orders of magnitude
/// larger, which only stretches the CPU-time axis, not the learning
/// problem's shape.
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub f64);

impl Default for Scale {
    fn default() -> Self {
        Scale(1.0)
    }
}

fn rows(base: usize, scale: Scale) -> usize {
    ((base as f64) * scale.0).round().max(8.0) as usize
}

/// Photometric magnitude columns shared by several SDSS tables.
fn mag_columns(spec: TableSpec) -> TableSpec {
    spec.column("u", ColumnSpec::Normal(19.5, 1.8))
        .column("g", ColumnSpec::Normal(18.8, 1.7))
        .column("r", ColumnSpec::Normal(18.2, 1.6))
        .column("i", ColumnSpec::Normal(17.9, 1.6))
        .column("z", ColumnSpec::Normal(17.6, 1.7))
        .column("modelmag_u", ColumnSpec::Normal(19.4, 1.9))
        .column("modelmag_g", ColumnSpec::Normal(18.7, 1.8))
        .column("psfmag_r", ColumnSpec::Normal(18.3, 1.7))
        .column("psfmagerr_g", ColumnSpec::Uniform(0.0, 0.5))
        .column("psfmagerr_u", ColumnSpec::Uniform(0.0, 0.6))
}

/// The SDSS-like catalog: the tables the paper's motivating examples and
/// our query templates reference. Row counts keep the *ratios* of the real
/// archive (PhotoObj ≫ SpecObj ≫ admin tables).
pub fn sdss_table_specs(scale: Scale) -> Vec<TableSpec> {
    let photo = rows(60_000, scale);
    let spec = rows(8_000, scale);
    vec![
        mag_columns(
            TableSpec::new("PhotoObj", photo)
                .column("objid", ColumnSpec::SeqId)
                .column("ra", ColumnSpec::Uniform(0.0, 360.0))
                .column("dec", ColumnSpec::Uniform(-25.0, 85.0))
                .column("type", ColumnSpec::Categorical(7))
                .column("flags", ColumnSpec::Bitmask(20))
                .column("status", ColumnSpec::Bitmask(12))
                .column("mode", ColumnSpec::IntUniform(1, 3))
                .column("field", ColumnSpec::IntUniform(0, 800)),
        ),
        // PhotoTag: same objects, fewer columns (the "tag" table).
        TableSpec::new("PhotoTag", photo)
            .column("objid", ColumnSpec::SeqId)
            .column("ra", ColumnSpec::Uniform(0.0, 360.0))
            .column("dec", ColumnSpec::Uniform(-25.0, 85.0))
            .column("type", ColumnSpec::Categorical(7))
            .column("flags", ColumnSpec::Bitmask(20)),
        mag_columns(
            TableSpec::new("Galaxy", rows(30_000, scale))
                .column("objid", ColumnSpec::SeqId)
                .column("ra", ColumnSpec::Uniform(0.0, 360.0))
                .column("dec", ColumnSpec::Uniform(-25.0, 85.0))
                .column("flags", ColumnSpec::Bitmask(20))
                .column("petror50_r", ColumnSpec::Uniform(0.2, 30.0)),
        ),
        mag_columns(
            TableSpec::new("Star", rows(25_000, scale))
                .column("objid", ColumnSpec::SeqId)
                .column("ra", ColumnSpec::Uniform(0.0, 360.0))
                .column("dec", ColumnSpec::Uniform(-25.0, 85.0))
                .column("flags", ColumnSpec::Bitmask(20)),
        ),
        TableSpec::new("SpecObj", spec)
            .column("specobjid", ColumnSpec::SeqId)
            .column("bestobjid", ColumnSpec::IntUniform(0, photo as i64 - 1))
            .column("z", ColumnSpec::Uniform(0.0, 3.5))
            .column("zerr", ColumnSpec::Uniform(0.0, 0.01))
            .column("zconf", ColumnSpec::Uniform(0.5, 1.0))
            .column("ra", ColumnSpec::Uniform(0.0, 360.0))
            .column("dec", ColumnSpec::Uniform(-25.0, 85.0))
            .column("specclass", ColumnSpec::Categorical(6))
            .column("plate", ColumnSpec::IntUniform(266, 2974))
            .column("fiberid", ColumnSpec::IntUniform(1, 640)),
        TableSpec::new("SpecPhoto", spec)
            .column("specobjid", ColumnSpec::SeqId)
            .column("objid", ColumnSpec::IntUniform(0, photo as i64 - 1))
            .column("z", ColumnSpec::Uniform(0.0, 3.5))
            .column("ra", ColumnSpec::Uniform(0.0, 360.0))
            .column("dec", ColumnSpec::Uniform(-25.0, 85.0))
            .column("modelmag_u", ColumnSpec::Normal(19.4, 1.9))
            .column("modelmag_g", ColumnSpec::Normal(18.7, 1.8))
            .column("flags_g", ColumnSpec::Bitmask(8))
            .column("flags_s", ColumnSpec::Bitmask(8))
            .column("type", ColumnSpec::Categorical(7)),
        TableSpec::new("Neighbors", rows(40_000, scale))
            .column("objid", ColumnSpec::IntUniform(0, photo as i64 - 1))
            .column("neighborobjid", ColumnSpec::IntUniform(0, photo as i64 - 1))
            .column("distance", ColumnSpec::Uniform(0.0, 2.0))
            .column("neighbortype", ColumnSpec::Categorical(7)),
        TableSpec::new("Field", rows(900, scale))
            .column("fieldid", ColumnSpec::SeqId)
            .column("run", ColumnSpec::IntUniform(94, 8000))
            .column("camcol", ColumnSpec::IntUniform(1, 6))
            .column("quality", ColumnSpec::Categorical(4))
            .column("ra", ColumnSpec::Uniform(0.0, 360.0))
            .column("dec", ColumnSpec::Uniform(-25.0, 85.0)),
        // CasJobs administrative tables (Figure 16 of the paper queries
        // Jobs/Users/Status/Servers).
        TableSpec::new("Jobs", rows(2_000, scale))
            .column("jobid", ColumnSpec::SeqId)
            .column("userid", ColumnSpec::IntUniform(0, 499))
            .column(
                "target",
                ColumnSpec::StrChoice(&["DR5", "DR7", "DR8", "MYDB"]),
            )
            .column("queue", ColumnSpec::IntUniform(1, 5))
            .column("estimate", ColumnSpec::Uniform(0.0, 500.0))
            .column("status", ColumnSpec::Categorical(6))
            .column(
                "outputtype",
                ColumnSpec::StrChoice(&["QUERY", "TABLE", "FILE"]),
            ),
        TableSpec::new("Users", rows(500, scale))
            .column("userid", ColumnSpec::SeqId)
            .column("privilege", ColumnSpec::Categorical(3))
            .column("webservicesid", ColumnSpec::IntUniform(0, 9)),
        TableSpec::new("Servers", rows(40, scale))
            .column("serverid", ColumnSpec::SeqId)
            .column("name", ColumnSpec::TaggedSeq("srv"))
            .column(
                "target",
                ColumnSpec::StrChoice(&["DR5", "DR7", "DR8", "MYDB"]),
            )
            .column("queue", ColumnSpec::IntUniform(1, 5)),
        TableSpec::new("Status", rows(64, scale))
            .column("statusid", ColumnSpec::SeqId)
            .column(
                "name",
                ColumnSpec::StrChoice(&[
                    "ready",
                    "started",
                    "finished",
                    "failed",
                    "cancelled",
                    "queued",
                ]),
            ),
    ]
}

/// Build the SDSS-like catalog.
pub fn sdss_catalog(scale: Scale, seed: u64) -> Catalog {
    Catalog::generate(&sdss_table_specs(scale), seed)
}

/// Vocabulary pools for synthesizing SQLShare-style user schemas: short-term
/// ad-hoc analytics over uploaded CSVs (genomics, oceanography, sensor
/// dumps — the domains reported in the SQLShare paper).
const SQLSHARE_TABLE_STEMS: &[&str] = &[
    "samples",
    "reads",
    "genes",
    "proteins",
    "taxa",
    "stations",
    "casts",
    "sensors",
    "measurements",
    "observations",
    "results",
    "metadata",
    "runs",
    "trials",
    "plates",
    "wells",
    "counts",
    "abundance",
    "alignment",
    "variants",
    "sites",
    "events",
];

const SQLSHARE_COL_STEMS: &[&str] = &[
    "id", "name", "value", "score", "count", "depth", "temp", "salinity", "lat", "lon", "time",
    "qc", "flag", "group", "batch", "conc", "ph", "ratio", "length", "width", "mass", "seq", "gc",
    "cov", "freq", "pval", "fold", "rank",
];

/// One SQLShare user's uploaded dataset: a private little schema.
#[derive(Debug, Clone)]
pub struct UserSchema {
    pub user_id: u32,
    pub table_names: Vec<String>,
    /// Column names per table.
    pub table_columns: Vec<Vec<String>>,
}

/// Generate `n_users` SQLShare-like user schemas and a combined catalog
/// holding all their tables (each table name is prefixed with the user id,
/// as SQLShare scopes uploads per user).
pub fn sqlshare_catalog(n_users: u32, scale: Scale, seed: u64) -> (Catalog, Vec<UserSchema>) {
    let mut specs = Vec::new();
    let mut users = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for user_id in 0..n_users {
        let n_tables = rng.gen_range(1..=5);
        let mut table_names = Vec::with_capacity(n_tables);
        let mut table_columns = Vec::with_capacity(n_tables);
        for t in 0..n_tables {
            let stem = SQLSHARE_TABLE_STEMS[rng.gen_range(0..SQLSHARE_TABLE_STEMS.len())];
            let name = format!("u{user_id}_{stem}_{t}");
            let n_cols = rng.gen_range(3..=10);
            // Log-uniform row counts: user uploads span paste-sized CSVs to
            // multi-GB instrument dumps, and this spread is what gives the
            // CPU-time labels their dynamic range.
            let n_rows = 10f64.powf(rng.gen_range(2.3..4.3)) as usize;
            let mut spec = TableSpec::new(name.clone(), rows(n_rows, scale));
            let mut cols = Vec::with_capacity(n_cols + 1);
            spec = spec.column("rowid", ColumnSpec::SeqId);
            cols.push("rowid".to_string());
            for c in 0..n_cols {
                // Column names carry a per-user random tag: real SQLShare
                // uploads use each scientist's private naming conventions,
                // so word-level vocabularies do NOT transfer across users —
                // the mechanism behind the paper's Heterogeneous-Schema
                // degradation (§6.2.3). The shared stem keeps a subword
                // signal that character-level models can still exploit.
                let stem = SQLSHARE_COL_STEMS[rng.gen_range(0..SQLSHARE_COL_STEMS.len())];
                let col = format!("{stem}_{:04x}_{c}", rng.gen::<u16>());
                let cspec = match rng.gen_range(0..4) {
                    0 => ColumnSpec::IntUniform(0, rng.gen_range(10..5_000)),
                    1 => ColumnSpec::Uniform(0.0, rng.gen_range(1.0..1_000.0)),
                    2 => ColumnSpec::Categorical(rng.gen_range(2..20)),
                    _ => ColumnSpec::Normal(rng.gen_range(-10.0..100.0), rng.gen_range(0.5..20.0)),
                };
                spec = spec.column(col.clone(), cspec);
                cols.push(col);
            }
            specs.push(spec);
            table_names.push(name);
            table_columns.push(cols);
        }
        users.push(UserSchema {
            user_id,
            table_names,
            table_columns,
        });
    }
    (Catalog::generate(&specs, seed ^ 0xD1CE), users)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdss_catalog_has_expected_tables() {
        let cat = sdss_catalog(Scale(0.02), 1);
        for t in [
            "PhotoObj",
            "PhotoTag",
            "SpecObj",
            "SpecPhoto",
            "Galaxy",
            "Jobs",
            "Servers",
        ] {
            assert!(cat.get(t).is_some(), "missing {t}");
        }
    }

    #[test]
    fn scale_changes_row_counts() {
        let small = sdss_catalog(Scale(0.01), 1);
        let large = sdss_catalog(Scale(0.1), 1);
        assert!(
            large.get("PhotoObj").unwrap().row_count() > small.get("PhotoObj").unwrap().row_count()
        );
    }

    #[test]
    fn photoobj_and_spectro_ratio_preserved() {
        let cat = sdss_catalog(Scale(0.05), 2);
        let photo = cat.get("PhotoObj").unwrap().row_count();
        let spec = cat.get("SpecObj").unwrap().row_count();
        assert!(
            photo > 5 * spec,
            "PhotoObj ({photo}) should dwarf SpecObj ({spec})"
        );
    }

    #[test]
    fn sqlshare_users_have_private_tables() {
        let (cat, users) = sqlshare_catalog(10, Scale(0.2), 3);
        assert_eq!(users.len(), 10);
        for u in &users {
            assert!(!u.table_names.is_empty());
            for t in &u.table_names {
                assert!(cat.get(t).is_some(), "missing user table {t}");
                assert!(t.starts_with(&format!("u{}_", u.user_id)));
            }
        }
    }

    #[test]
    fn sqlshare_schemas_differ_between_users() {
        let (_, users) = sqlshare_catalog(20, Scale(0.1), 4);
        let a: std::collections::BTreeSet<_> =
            users[0].table_columns.concat().into_iter().collect();
        let b: std::collections::BTreeSet<_> =
            users[1].table_columns.concat().into_iter().collect();
        assert_ne!(a, b, "independent users should draw different columns");
    }

    #[test]
    fn generation_is_deterministic() {
        let (c1, u1) = sqlshare_catalog(5, Scale(0.1), 9);
        let (c2, u2) = sqlshare_catalog(5, Scale(0.1), 9);
        assert_eq!(c1.len(), c2.len());
        assert_eq!(u1.len(), u2.len());
        for (a, b) in u1.iter().zip(&u2) {
            assert_eq!(a.table_names, b.table_names);
        }
    }
}
