//! Train/validation/test splits for the three problem settings (Table 1).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::labels::WorkloadEntry;

/// Index-based split of a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    pub train: Vec<usize>,
    pub valid: Vec<usize>,
    pub test: Vec<usize>,
}

impl Split {
    pub fn total(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }
}

/// Random 80/10/10 split (Homogeneous Instance and Homogeneous Schema —
/// the paper splits SDSS and SQLShare "randomly", Table 1).
pub fn random_split(n: usize, seed: u64) -> Split {
    split_with_fractions(n, 0.8, 0.1, seed)
}

/// Random split with explicit train/valid fractions (test gets the rest).
pub fn split_with_fractions(n: usize, train: f64, valid: f64, seed: u64) -> Split {
    assert!(
        train >= 0.0 && valid >= 0.0 && train + valid <= 1.0,
        "bad fractions"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let n_train = (n as f64 * train).round() as usize;
    let n_valid = (n as f64 * valid).round() as usize;
    let n_train = n_train.min(n);
    let n_valid = n_valid.min(n - n_train);
    Split {
        train: idx[..n_train].to_vec(),
        valid: idx[n_train..n_train + n_valid].to_vec(),
        test: idx[n_train + n_valid..].to_vec(),
    }
}

/// Split by user (Heterogeneous Schema): whole users land in exactly one
/// of train/valid/test, "so as to decrease the likelihood of data sharing"
/// (§6.1). Entries without a user id are dropped.
pub fn split_by_user(entries: &[WorkloadEntry], train: f64, valid: f64, seed: u64) -> Split {
    let mut users: Vec<u32> = entries.iter().filter_map(|e| e.user_id).collect();
    users.sort_unstable();
    users.dedup();
    users.shuffle(&mut StdRng::seed_from_u64(seed));

    // Assign users greedily by quota measured in *entries*, so heavy users
    // don't blow up the train fraction.
    let n = entries.iter().filter(|e| e.user_id.is_some()).count();
    let mut per_user: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for e in entries {
        if let Some(u) = e.user_id {
            *per_user.entry(u).or_default() += 1;
        }
    }
    let target_train = (n as f64 * train).round() as usize;
    let target_valid = (n as f64 * valid).round() as usize;

    let mut train_users = std::collections::HashSet::new();
    let mut valid_users = std::collections::HashSet::new();
    let mut test_users = std::collections::HashSet::new();
    let (mut got_train, mut got_valid) = (0usize, 0usize);
    let n_users = users.len();
    for (i, u) in users.into_iter().enumerate() {
        let k = per_user[&u];
        // Greedy quota fill, but guarantee valid and test each receive at
        // least one user when there are ≥3 users: a zipf-heavy head can
        // otherwise exhaust the list before the quotas trip.
        let remaining = n_users - i;
        let need_valid = valid_users.is_empty() as usize;
        let need_test = test_users.is_empty() as usize;
        if remaining <= need_valid + need_test {
            if valid_users.is_empty() {
                valid_users.insert(u);
                got_valid += k;
            } else {
                test_users.insert(u);
            }
        } else if got_train < target_train {
            train_users.insert(u);
            got_train += k;
        } else if got_valid < target_valid {
            valid_users.insert(u);
            got_valid += k;
        } else {
            test_users.insert(u);
        }
    }

    let mut split = Split {
        train: Vec::new(),
        valid: Vec::new(),
        test: Vec::new(),
    };
    for (i, e) in entries.iter().enumerate() {
        match e.user_id {
            Some(u) if train_users.contains(&u) => split.train.push(i),
            Some(u) if valid_users.contains(&u) => split.valid.push(i),
            Some(u) if test_users.contains(&u) => split.test.push(i),
            _ => {}
        }
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{ErrorClass, WorkloadEntry};

    fn entry(user: u32) -> WorkloadEntry {
        WorkloadEntry {
            statement: format!("SELECT {user}"),
            error_class: ErrorClass::Success,
            session_class: None,
            answer_size: 1.0,
            cpu_seconds: 0.0,
            user_id: Some(user),
        }
    }

    #[test]
    fn random_split_partitions() {
        let s = random_split(1000, 1);
        assert_eq!(s.total(), 1000);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.valid)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
        assert!((s.train.len() as f64 - 800.0).abs() <= 1.0);
        assert!((s.valid.len() as f64 - 100.0).abs() <= 1.0);
    }

    #[test]
    fn random_split_is_seeded() {
        assert_eq!(random_split(100, 5), random_split(100, 5));
        assert_ne!(random_split(100, 5), random_split(100, 6));
    }

    #[test]
    fn user_split_keeps_users_whole() {
        let entries: Vec<WorkloadEntry> = (0..30)
            .flat_map(|u| (0..10).map(move |_| entry(u)))
            .collect();
        let s = split_by_user(&entries, 0.8, 0.07, 3);
        assert_eq!(s.total(), 300);
        let users_of = |idxs: &[usize]| -> std::collections::HashSet<u32> {
            idxs.iter().map(|&i| entries[i].user_id.unwrap()).collect()
        };
        let (tr, va, te) = (users_of(&s.train), users_of(&s.valid), users_of(&s.test));
        assert!(tr.is_disjoint(&va));
        assert!(tr.is_disjoint(&te));
        assert!(va.is_disjoint(&te));
        assert!(!te.is_empty());
    }

    #[test]
    fn user_split_never_leaves_test_empty() {
        // A zipf-heavy head used to exhaust the quota before test got
        // anyone; the split must still produce non-empty valid and test.
        let entries: Vec<WorkloadEntry> = (0..10u32)
            .flat_map(|u| {
                let n = if u == 0 { 400 } else { 10 };
                (0..n).map(move |_| entry(u))
            })
            .collect();
        for seed in 0..10 {
            let s = split_by_user(&entries, 0.8, 0.07, seed);
            assert!(!s.test.is_empty(), "seed {seed}: empty test");
            assert!(!s.valid.is_empty(), "seed {seed}: empty valid");
            assert!(!s.train.is_empty(), "seed {seed}: empty train");
        }
    }

    #[test]
    fn tiny_split_does_not_panic() {
        let s = random_split(3, 1);
        assert_eq!(s.total(), 3);
        let s0 = random_split(0, 1);
        assert_eq!(s0.total(), 0);
    }
}
