//! # sqlan-workload
//!
//! Synthetic SDSS-like and SQLShare-like query workloads for the `sqlan`
//! reproduction of *"Facilitating SQL Query Composition and Analysis"*
//! (SIGMOD 2020).
//!
//! We cannot redistribute the original workloads, so this crate rebuilds
//! their *generating process*: per-session-class query templates, hit-
//! stream simulation with 30-minute-gap session identification, execution
//! against a deterministic engine for ground-truth labels, and the paper's
//! extraction pipeline (per-session sampling, statement dedup with label
//! aggregation). See DESIGN.md §2 for the substitution argument.
//!
//! ```
//! use sqlan_workload::{build_sdss, SdssConfig, Scale};
//!
//! let workload = build_sdss(SdssConfig { n_sessions: 100, scale: Scale(0.02), seed: 1 });
//! assert!(!workload.is_empty());
//! // Every entry has the paper's labels attached.
//! let e = &workload.entries[0];
//! assert!(e.session_class.is_some());
//! ```

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod build;
pub mod compress;
pub mod labels;
pub mod schema;
pub mod session;
pub mod split;
pub mod templates;

pub use analysis::{
    by_session_class, pearson, repetition_histogram, statement_type_shares, BoxStats, LogHistogram,
    PropsMatrix, SummaryStats,
};
pub use build::{
    build_sdss, build_sqlshare, sdss_database, sqlshare_database, SdssConfig, SqlShareConfig,
    Workload,
};
pub use compress::{compress, template_of, CompressedWorkload, TemplateStats};
pub use labels::{ErrorClass, Hit, SessionClass, WorkloadEntry};
pub use schema::{sdss_catalog, sqlshare_catalog, Scale, UserSchema};
pub use session::{
    identify_sessions, simulate_sessions, GeneratedSession, IdentifiedSession, SESSION_GAP_SECONDS,
};
pub use split::{random_split, split_by_user, split_with_fractions, Split};
pub use templates::{sdss_statement, sqlshare_statement};
