//! Template-level workload compression.
//!
//! The paper observes that "bot sessions or administrative sessions
//! typically submit the same query template but with different constants"
//! (§4.1) and points to workload compression as an orthogonal extension
//! (§7, §8). This module implements the core primitive: canonicalizing a
//! statement by masking its literals, so statements differing only in
//! constants collapse onto one *template*.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sqlan_sql::{lex, Tok};

use crate::labels::WorkloadEntry;

/// Canonical form of a statement: literals masked, identifiers and
/// keywords lower-cased, whitespace normalized.
///
/// `SELECT * FROM PhotoTag WHERE objId=0x112d075f80360018` and
/// `select * from phototag where objid = 42` share one template.
pub fn template_of(statement: &str) -> String {
    let (toks, _) = lex(statement);
    let mut out = String::with_capacity(statement.len() / 2);
    for t in &toks {
        if !out.is_empty() {
            out.push(' ');
        }
        match &t.tok {
            Tok::Number(_) | Tok::HexNumber(_) => out.push_str("?n"),
            Tok::String(_) => out.push_str("?s"),
            Tok::Ident(name) => out.push_str(&name.to_ascii_lowercase()),
            Tok::Keyword(k) => out.push_str(&format!("{k:?}").to_ascii_lowercase()),
            other => out.push_str(&other.to_string()),
        }
    }
    out
}

/// One template's aggregate statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateStats {
    pub template: String,
    /// How many workload entries instantiate this template.
    pub count: usize,
    /// Index of one representative entry.
    pub representative: usize,
    /// Mean CPU seconds across instantiations.
    pub mean_cpu_seconds: f64,
    /// Mean answer size across instantiations (error entries excluded).
    pub mean_answer_size: f64,
}

/// A compressed view of a workload: one row per template, ordered by
/// descending frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressedWorkload {
    pub templates: Vec<TemplateStats>,
    pub total_entries: usize,
}

impl CompressedWorkload {
    /// Compression ratio: entries per template (≥ 1).
    pub fn ratio(&self) -> f64 {
        if self.templates.is_empty() {
            return 1.0;
        }
        self.total_entries as f64 / self.templates.len() as f64
    }

    /// Fraction of the workload covered by the `k` most frequent templates
    /// — the skew workload-compression schemes exploit.
    pub fn coverage(&self, k: usize) -> f64 {
        if self.total_entries == 0 {
            return 0.0;
        }
        let covered: usize = self.templates.iter().take(k).map(|t| t.count).sum();
        covered as f64 / self.total_entries as f64
    }
}

/// Compress a workload by template.
pub fn compress(entries: &[WorkloadEntry]) -> CompressedWorkload {
    let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, e) in entries.iter().enumerate() {
        groups.entry(template_of(&e.statement)).or_default().push(i);
    }
    let mut templates: Vec<TemplateStats> = groups
        .into_iter()
        .map(|(template, idxs)| {
            let n = idxs.len();
            let cpu = idxs.iter().map(|&i| entries[i].cpu_seconds).sum::<f64>() / n as f64;
            let answers: Vec<f64> = idxs
                .iter()
                .map(|&i| entries[i].answer_size)
                .filter(|&a| a >= 0.0)
                .collect();
            let mean_answer = if answers.is_empty() {
                -1.0
            } else {
                answers.iter().sum::<f64>() / answers.len() as f64
            };
            TemplateStats {
                template,
                count: n,
                representative: idxs[0],
                mean_cpu_seconds: cpu,
                mean_answer_size: mean_answer,
            }
        })
        .collect();
    // Descending count, then template text for determinism.
    templates.sort_by(|a, b| b.count.cmp(&a.count).then(a.template.cmp(&b.template)));
    CompressedWorkload {
        templates,
        total_entries: entries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::ErrorClass;

    fn entry(stmt: &str, cpu: f64, answer: f64) -> WorkloadEntry {
        WorkloadEntry {
            statement: stmt.to_string(),
            error_class: ErrorClass::Success,
            session_class: None,
            answer_size: answer,
            cpu_seconds: cpu,
            user_id: None,
        }
    }

    #[test]
    fn constants_collapse_into_one_template() {
        let a = template_of("SELECT * FROM PhotoTag WHERE objId=0x112d075f80360018");
        let b = template_of("select * from phototag where objid = 42");
        assert_eq!(a, b);
        assert!(a.contains("?n"), "{a}");
    }

    #[test]
    fn strings_and_numbers_mask_differently() {
        let t = template_of("SELECT x FROM t WHERE name = 'abc' AND k = 5");
        assert!(t.contains("?s"));
        assert!(t.contains("?n"));
    }

    #[test]
    fn different_structure_different_template() {
        assert_ne!(
            template_of("SELECT a FROM t WHERE x = 1"),
            template_of("SELECT a, b FROM t WHERE x = 1"),
        );
        assert_ne!(
            template_of("SELECT a FROM t WHERE x = 1"),
            template_of("SELECT a FROM u WHERE x = 1"),
        );
    }

    #[test]
    fn compress_groups_and_orders_by_frequency() {
        let entries = vec![
            entry("SELECT * FROM t WHERE id = 1", 1.0, 1.0),
            entry("SELECT * FROM t WHERE id = 2", 3.0, 3.0),
            entry("SELECT * FROM t WHERE id = 3", 5.0, -1.0),
            entry("SELECT count(*) FROM u", 7.0, 1.0),
        ];
        let c = compress(&entries);
        assert_eq!(c.total_entries, 4);
        assert_eq!(c.templates.len(), 2);
        assert_eq!(c.templates[0].count, 3); // the point-lookup template
        assert!((c.templates[0].mean_cpu_seconds - 3.0).abs() < 1e-12);
        // Error answer (-1) excluded from the answer mean.
        assert!((c.templates[0].mean_answer_size - 2.0).abs() < 1e-12);
        assert!((c.ratio() - 2.0).abs() < 1e-12);
        assert!((c.coverage(1) - 0.75).abs() < 1e-12);
        assert_eq!(c.coverage(2), 1.0);
    }

    #[test]
    fn empty_workload() {
        let c = compress(&[]);
        assert_eq!(c.ratio(), 1.0);
        assert_eq!(c.coverage(5), 0.0);
    }

    #[test]
    fn sdss_bots_compress_hard() {
        // Bot templates collapse far more than no_web_hit's ad-hoc SQL.
        use crate::templates::sdss_statement;
        use crate::SessionClass;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(4);
        let gen = |class: SessionClass, rng: &mut StdRng| -> Vec<WorkloadEntry> {
            (0..300)
                .map(|_| entry(&sdss_statement(class, rng), 0.0, 0.0))
                .collect()
        };
        let bots = compress(&gen(SessionClass::Bot, &mut rng));
        let adhoc = compress(&gen(SessionClass::NoWebHit, &mut rng));
        assert!(
            bots.ratio() > 2.0 * adhoc.ratio(),
            "bots ({:.1}x) should compress much harder than ad-hoc SQL ({:.1}x)",
            bots.ratio(),
            adhoc.ratio()
        );
    }
}
