//! Session simulation and identification.
//!
//! The paper (following Raddick et al. and Szalay et al.) defines a session
//! as "an ordered sequence of hits from a single IP address, such that the
//! gaps between hits in the sequence is no longer than 30 minutes". We
//! simulate agents emitting hit streams, then *re-identify* sessions with
//! exactly that rule — the generator and the identifier are independent
//! code paths, and their agreement is property-tested.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::labels::{Hit, SessionClass};
use crate::templates::sdss_statement;

/// The 30-minute session gap, in seconds.
pub const SESSION_GAP_SECONDS: f64 = 30.0 * 60.0;

/// Mixture weights for session classes, tuned to the paper's Table 4 /
/// Figure 6b empirical distribution (no_web_hit 44.8%, bot 26.1%,
/// browser 20.4%, program 7.9%, anonymous 0.76%, unknown 0.07%, admin ~0).
pub fn class_weights() -> [(SessionClass, f64); 7] {
    [
        (SessionClass::NoWebHit, 0.4478),
        (SessionClass::Unknown, 0.0007),
        (SessionClass::Bot, 0.2613),
        (SessionClass::Admin, 0.0004),
        (SessionClass::Program, 0.0790),
        (SessionClass::Anonymous, 0.0076),
        (SessionClass::Browser, 0.2032),
    ]
}

fn sample_class(rng: &mut StdRng) -> SessionClass {
    let total: f64 = class_weights().iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for (c, w) in class_weights() {
        if x < w {
            return c;
        }
        x -= w;
    }
    SessionClass::Browser
}

/// Typical per-class session length (number of SQL hits) and intra-session
/// think time. Bots and programs fire long mechanical bursts; browsers are
/// short interactive bursts.
fn session_shape(class: SessionClass) -> (f64 /* mean hits */, f64 /* mean gap s */) {
    match class {
        SessionClass::Bot => (20.0, 5.0),
        SessionClass::Admin => (10.0, 60.0),
        SessionClass::Program => (15.0, 20.0),
        SessionClass::Browser => (4.0, 120.0),
        SessionClass::NoWebHit => (3.0, 300.0),
        SessionClass::Anonymous => (2.0, 90.0),
        SessionClass::Unknown => (3.0, 100.0),
    }
}

/// Draw from a geometric-ish distribution with the given mean (≥ 1).
fn draw_count(mean: f64, rng: &mut StdRng) -> usize {
    let p = 1.0 / mean.max(1.0);
    let mut n = 1usize;
    while n < 500 && !rng.gen_bool(p) {
        n += 1;
    }
    n
}

/// Exponential inter-arrival with the given mean, truncated below the
/// session gap so generated sessions never self-split.
fn draw_gap(mean: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-u.ln() * mean).min(SESSION_GAP_SECONDS * 0.9)
}

/// A generated session with ground truth attached.
#[derive(Debug, Clone)]
pub struct GeneratedSession {
    pub class: SessionClass,
    pub hits: Vec<Hit>,
}

/// Simulate `n_sessions` sessions' worth of SQL hits.
///
/// Each session gets its own IP; session start times are spread over a
/// simulated year so that distinct sessions from the same IP pool don't
/// merge. (The real logs have IP reuse — we also reuse a small fraction of
/// IPs with start times far apart, to exercise the splitter.)
///
/// Deliberately sequential: every draw comes off one seeded RNG stream
/// whose order the golden-label pins depend on, and simulation is cheap
/// next to statement execution. The parallel stage of the workload
/// pipeline is labeling (see `build.rs` / `sqlan-par`), not simulation.
pub fn simulate_sessions(n_sessions: usize, seed: u64) -> Vec<GeneratedSession> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_sessions);
    for s in 0..n_sessions {
        let class = sample_class(&mut rng);
        let (mean_hits, mean_gap) = session_shape(class);
        let n_hits = draw_count(mean_hits, &mut rng);
        // 10% of sessions reuse an earlier IP (far apart in time).
        let ip = if s > 10 && rng.gen_bool(0.1) {
            rng.gen_range(0..s as u32)
        } else {
            s as u32
        };
        let mut t = s as f64 * 3.0 * SESSION_GAP_SECONDS + rng.gen_range(0.0..SESSION_GAP_SECONDS);
        let mut hits = Vec::with_capacity(n_hits);
        for _ in 0..n_hits {
            hits.push(Hit {
                timestamp: t,
                ip,
                statement: sdss_statement(class, &mut rng),
                agent_class: class,
            });
            t += draw_gap(mean_gap, &mut rng);
        }
        out.push(GeneratedSession { class, hits });
    }
    out
}

/// An identified session: indices into the original hit slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentifiedSession {
    pub hit_indices: Vec<usize>,
    pub label: SessionClass,
}

/// Re-identify sessions from a flat hit log using the 30-minute gap rule,
/// then label each session the way SDSS does (Appendix B.1): majority vote
/// over the hits' agent classes, except that *any* bot hit marks the whole
/// session as bot.
pub fn identify_sessions(hits: &[Hit]) -> Vec<IdentifiedSession> {
    // Sort hit indices by (ip, timestamp).
    let mut order: Vec<usize> = (0..hits.len()).collect();
    order.sort_by(|&a, &b| {
        hits[a]
            .ip
            .cmp(&hits[b].ip)
            .then(hits[a].timestamp.total_cmp(&hits[b].timestamp))
    });

    let mut sessions = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut last: Option<(u32, f64)> = None;
    for idx in order {
        let h = &hits[idx];
        let same_session = match last {
            Some((ip, t)) => ip == h.ip && (h.timestamp - t) <= SESSION_GAP_SECONDS,
            None => false,
        };
        if !same_session && !current.is_empty() {
            sessions.push(close_session(std::mem::take(&mut current), hits));
        }
        current.push(idx);
        last = Some((h.ip, h.timestamp));
    }
    if !current.is_empty() {
        sessions.push(close_session(current, hits));
    }
    sessions
}

fn close_session(hit_indices: Vec<usize>, hits: &[Hit]) -> IdentifiedSession {
    // Majority vote with BOT override.
    let mut counts = [0usize; 7];
    let mut any_bot = false;
    for &i in &hit_indices {
        let c = hits[i].agent_class;
        counts[c.index()] += 1;
        any_bot |= c == SessionClass::Bot;
    }
    let label = if any_bot {
        SessionClass::Bot
    } else {
        let best = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, n)| **n)
            .map(|(i, _)| i)
            .unwrap_or(0);
        SessionClass::from_index(best).unwrap_or(SessionClass::Unknown)
    };
    IdentifiedSession { hit_indices, label }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_produces_requested_sessions() {
        let s = simulate_sessions(50, 1);
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|x| !x.hits.is_empty()));
    }

    #[test]
    fn identification_recovers_generated_sessions() {
        let generated = simulate_sessions(100, 2);
        let all_hits: Vec<Hit> = generated.iter().flat_map(|s| s.hits.clone()).collect();
        let identified = identify_sessions(&all_hits);
        // Some IP reuse merges sessions only when they're close in time —
        // our spacing guarantees they aren't, so counts should match the
        // number of generated sessions that have distinct (ip, window)s.
        let total_hits: usize = identified.iter().map(|s| s.hit_indices.len()).sum();
        assert_eq!(
            total_hits,
            all_hits.len(),
            "every hit lands in exactly one session"
        );
        assert!(identified.len() >= 95, "over-merged: {}", identified.len());
        assert!(identified.len() <= 100, "over-split: {}", identified.len());
    }

    #[test]
    fn gap_rule_splits_distant_hits() {
        let mk = |t: f64| Hit {
            timestamp: t,
            ip: 1,
            statement: "SELECT 1".into(),
            agent_class: SessionClass::Browser,
        };
        let hits = vec![mk(0.0), mk(100.0), mk(100.0 + SESSION_GAP_SECONDS + 1.0)];
        let sessions = identify_sessions(&hits);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].hit_indices.len(), 2);
        assert_eq!(sessions[1].hit_indices.len(), 1);
    }

    #[test]
    fn bot_override_wins_majority_vote() {
        let mk = |class: SessionClass| Hit {
            timestamp: 0.0,
            ip: 1,
            statement: "SELECT 1".into(),
            agent_class: class,
        };
        let hits = vec![
            mk(SessionClass::Browser),
            mk(SessionClass::Browser),
            mk(SessionClass::Bot),
        ];
        let sessions = identify_sessions(&hits);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].label, SessionClass::Bot);
    }

    #[test]
    fn class_mixture_is_roughly_calibrated() {
        let s = simulate_sessions(3000, 3);
        let frac =
            |c: SessionClass| s.iter().filter(|x| x.class == c).count() as f64 / s.len() as f64;
        assert!((frac(SessionClass::NoWebHit) - 0.4478).abs() < 0.05);
        assert!((frac(SessionClass::Bot) - 0.2613).abs() < 0.05);
        assert!((frac(SessionClass::Browser) - 0.2032).abs() < 0.05);
    }

    #[test]
    fn determinism() {
        let a = simulate_sessions(20, 9);
        let b = simulate_sessions(20, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.class, y.class);
            assert_eq!(x.hits.len(), y.hits.len());
            for (h1, h2) in x.hits.iter().zip(&y.hits) {
                assert_eq!(h1.statement, h2.statement);
            }
        }
    }
}
