//! Workload analysis (§4.3): summary statistics, histograms, correlation
//! matrices, and per-session-class breakdowns — the machinery behind
//! Figures 3, 4, 6, 7, 8 and 20.

use serde::{Deserialize, Serialize};

use sqlan_sql::{extract_props, StructuralProps};

use crate::labels::{SessionClass, WorkloadEntry};

/// The summary line printed in each panel of Figures 3/4/6:
/// mean (µ), std (σ), min, max, mode, median.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
    pub mode: f64,
    pub median: f64,
    pub count: usize,
}

impl SummaryStats {
    /// Compute over a sample; empty input yields all-NaN stats.
    pub fn compute(values: &[f64]) -> SummaryStats {
        let n = values.len();
        if n == 0 {
            return SummaryStats {
                mean: f64::NAN,
                std: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                mode: f64::NAN,
                median: f64::NAN,
                count: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        // Mode over the sorted run-lengths (values are mostly small ints).
        let mut mode = sorted[0];
        let mut best_run = 0usize;
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j < n && sorted[j] == sorted[i] {
                j += 1;
            }
            if j - i > best_run {
                best_run = j - i;
                mode = sorted[i];
            }
            i = j;
        }
        SummaryStats {
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            mode,
            median,
            count: n,
        }
    }
}

/// Quartile box (Figure 8's box plots): q1, median, q3, plus mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub mean: f64,
    pub count: usize,
}

impl BoxStats {
    pub fn compute(values: &[f64]) -> BoxStats {
        let n = values.len();
        if n == 0 {
            return BoxStats {
                q1: f64::NAN,
                median: f64::NAN,
                q3: f64::NAN,
                mean: f64::NAN,
                count: 0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            let idx = p * (n - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        BoxStats {
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            mean: values.iter().sum::<f64>() / n as f64,
            count: n,
        }
    }
}

/// Log-spaced histogram for heavy-tailed quantities (the paper's log-log
/// panels). Buckets: [0,1), [1,2), [2,4), [4,8), ...
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// (bucket lower bound, count) pairs.
    pub buckets: Vec<(f64, usize)>,
}

impl LogHistogram {
    pub fn compute(values: &[f64]) -> LogHistogram {
        let mut counts: std::collections::BTreeMap<i32, usize> = Default::default();
        for &v in values {
            let b = if v < 1.0 { -1 } else { v.log2().floor() as i32 };
            *counts.entry(b).or_default() += 1;
        }
        LogHistogram {
            buckets: counts
                .into_iter()
                .map(|(b, n)| (if b < 0 { 0.0 } else { 2f64.powi(b) }, n))
                .collect(),
        }
    }

    pub fn total(&self) -> usize {
        self.buckets.iter().map(|(_, n)| n).sum()
    }
}

/// All ten structural-property vectors of a workload, extracted once.
#[derive(Debug, Clone)]
pub struct PropsMatrix {
    pub props: Vec<StructuralProps>,
}

impl PropsMatrix {
    pub fn extract(entries: &[WorkloadEntry]) -> PropsMatrix {
        PropsMatrix {
            props: entries
                .iter()
                .map(|e| extract_props(&e.statement))
                .collect(),
        }
    }

    /// Column `k` of the property matrix (see [`StructuralProps::NAMES`]).
    pub fn column(&self, k: usize) -> Vec<f64> {
        self.props.iter().map(|p| p.as_vector()[k]).collect()
    }

    /// Pearson correlation matrix over the ten properties (Figure 7).
    pub fn correlation_matrix(&self) -> [[f64; 10]; 10] {
        let cols: Vec<Vec<f64>> = (0..10).map(|k| self.column(k)).collect();
        let mut m = [[0.0f64; 10]; 10];
        for i in 0..10 {
            for j in 0..10 {
                m[i][j] = pearson(&cols[i], &cols[j]);
            }
        }
        m
    }
}

/// Pearson correlation; returns 0 for degenerate (constant) inputs and 1 on
/// the diagonal-by-identity case.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for k in 0..n {
        let da = a[k] - ma;
        let db = b[k] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        if std::ptr::eq(a.as_ptr(), b.as_ptr()) {
            1.0
        } else {
            0.0
        }
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Per-session-class breakdown of a numeric quantity (Figure 8).
pub fn by_session_class(
    entries: &[WorkloadEntry],
    value: impl Fn(&WorkloadEntry) -> Option<f64>,
) -> Vec<(SessionClass, BoxStats)> {
    SessionClass::ALL
        .iter()
        .map(|&class| {
            let vals: Vec<f64> = entries
                .iter()
                .filter(|e| e.session_class == Some(class))
                .filter_map(&value)
                .collect();
            (class, BoxStats::compute(&vals))
        })
        .collect()
}

/// Figure 20's repetition histogram buckets: 1, 2, 3, 4–20, 21–100,
/// 101–1000, >1000.
pub fn repetition_histogram(repetitions: &[u32]) -> [(String, usize); 7] {
    let mut out = [
        ("1".to_string(), 0),
        ("2".to_string(), 0),
        ("3".to_string(), 0),
        ("4-20".to_string(), 0),
        ("21-100".to_string(), 0),
        ("101-1000".to_string(), 0),
        (">1000".to_string(), 0),
    ];
    for &r in repetitions {
        let slot = match r {
            0 | 1 => 0,
            2 => 1,
            3 => 2,
            4..=20 => 3,
            21..=100 => 4,
            101..=1000 => 5,
            _ => 6,
        };
        out[slot].1 += 1;
    }
    out
}

/// Statement-type shares (§4.3.1: SELECT ≈ 96.5% on SDSS).
pub fn statement_type_shares(entries: &[WorkloadEntry]) -> Vec<(String, f64)> {
    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    for e in entries {
        let ty = match sqlan_sql::parse(&e.statement).result {
            Ok(script) => script.statement_type().to_string(),
            Err(_) => "UNPARSEABLE".to_string(),
        };
        *counts.entry(ty).or_default() += 1;
    }
    let total = entries.len().max(1) as f64;
    counts
        .into_iter()
        .map(|(k, v)| (k, v as f64 / total))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_stats_basic() {
        let s = SummaryStats::compute(&[1.0, 2.0, 2.0, 3.0, 10.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.mode, 2.0);
        assert_eq!(s.median, 2.0);
        assert!((s.mean - 3.6).abs() < 1e-12);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn summary_stats_empty_is_nan() {
        let s = SummaryStats::compute(&[]);
        assert!(s.mean.is_nan());
        assert_eq!(s.count, 0);
    }

    #[test]
    fn box_stats_quartiles() {
        let b = BoxStats::compute(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&a, &b), 0.0);
    }

    #[test]
    fn log_histogram_counts_everything() {
        let h = LogHistogram::compute(&[0.0, 0.5, 1.0, 3.0, 100.0, 1e6]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn repetition_buckets() {
        let h = repetition_histogram(&[1, 1, 2, 3, 7, 50, 500, 5000]);
        assert_eq!(h[0].1, 2);
        assert_eq!(h[1].1, 1);
        assert_eq!(h[2].1, 1);
        assert_eq!(h[3].1, 1);
        assert_eq!(h[4].1, 1);
        assert_eq!(h[5].1, 1);
        assert_eq!(h[6].1, 1);
    }

    #[test]
    fn correlation_matrix_diagonal_is_one_for_varying_props() {
        use crate::labels::ErrorClass;
        let entries: Vec<WorkloadEntry> = (0..20)
            .map(|i| WorkloadEntry {
                statement: format!("SELECT a{} FROM t WHERE x > {}", "a".repeat(i), i),
                error_class: ErrorClass::Success,
                session_class: None,
                answer_size: 1.0,
                cpu_seconds: 0.0,
                user_id: None,
            })
            .collect();
        let m = PropsMatrix::extract(&entries).correlation_matrix();
        // num_chars varies → diagonal 1; constant columns are defined as 1
        // on the diagonal via the self-pointer check.
        assert!((m[0][0] - 1.0).abs() < 1e-9);
        // Symmetry.
        for (i, row) in m.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-9);
            }
        }
    }
}
