//! The workload extraction pipeline (§4.1–4.2 and Appendix B.3):
//! simulate → identify sessions → sample one SQL hit per session →
//! execute for labels → group identical statements → aggregate labels.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sqlan_engine::{Database, ErrorClass, ExecLimits};

use crate::labels::{SessionClass, WorkloadEntry};
use crate::schema::{sdss_catalog, sqlshare_catalog, Scale, UserSchema};
use crate::session::{identify_sessions, simulate_sessions};
use crate::templates::sqlshare_statement;

/// Configuration for synthesizing the SDSS-like workload.
#[derive(Debug, Clone, Copy)]
pub struct SdssConfig {
    /// Number of simulated sessions (one query statement is sampled per
    /// session, mirroring the paper's 1.56M-session sample).
    pub n_sessions: usize,
    /// Catalog size multiplier.
    pub scale: Scale,
    pub seed: u64,
}

impl Default for SdssConfig {
    fn default() -> Self {
        // 0x5D55 ≈ "SDSS".
        SdssConfig {
            n_sessions: 4_000,
            scale: Scale(0.25),
            seed: 0x5D55,
        }
    }
}

/// A built workload plus the bookkeeping the analysis figures need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    pub entries: Vec<WorkloadEntry>,
    /// How many sampled log entries each unique statement absorbed
    /// (Figure 20's histogram input). Aligned with `entries`.
    pub repetitions: Vec<u32>,
    /// Total sampled log entries before grouping.
    pub sampled_logs: usize,
}

impl Workload {
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Build the SDSS-like workload end to end.
///
/// Session simulation and per-session sampling are sequential (they share
/// one seeded RNG stream, pinned by the golden-label tests); the expensive
/// stage — executing every unique statement for ground-truth labels — fans
/// out across the [`sqlan_par`] pool. `Database` is `Sync` (execution
/// state lives in a per-query `ExecCtx`), so all workers share one
/// instance built from the same seed, and the input-order merge makes the
/// labels byte-identical at any `SQLAN_THREADS`.
pub fn build_sdss(cfg: SdssConfig) -> Workload {
    let catalog = sdss_catalog(cfg.scale, cfg.seed ^ 0xCA7A);
    let db = Database::new(catalog).with_limits(ExecLimits::default());
    let sessions = simulate_sessions(cfg.n_sessions, cfg.seed ^ 0x5E55);

    // Flatten hits, re-identify sessions, sample one query per session.
    let hits: Vec<_> = sessions.iter().flat_map(|s| s.hits.clone()).collect();
    let identified = identify_sessions(&hits);

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5A2B);
    let mut sampled: Vec<(String, SessionClass)> = Vec::with_capacity(identified.len());
    for sess in &identified {
        let pick = sess.hit_indices[rng.gen_range(0..sess.hit_indices.len())];
        sampled.push((hits[pick].statement.clone(), sess.label));
    }

    group_and_label(sampled, |stmt| {
        let out = db.submit(stmt);
        (out.error_class, out.answer_size as f64, out.cpu_seconds)
    })
}

/// Group sampled (statement, session) pairs, execute each unique statement
/// once, and aggregate labels: majority class, averaged numerics (§4.1).
///
/// Labeling runs on the [`sqlan_par`] pool: each unique statement is an
/// independent execution, and the pool's input-order merge keeps the
/// entry vector identical to the sequential loop it replaced.
fn group_and_label(
    sampled: Vec<(String, SessionClass)>,
    label: impl Fn(&str) -> (ErrorClass, f64, f64) + Sync,
) -> Workload {
    let sampled_logs = sampled.len();
    let mut groups: HashMap<String, Vec<SessionClass>> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for (stmt, class) in sampled {
        let entry = groups.entry(stmt.clone());
        if matches!(entry, std::collections::hash_map::Entry::Vacant(_)) {
            order.push(stmt);
        }
        entry.or_default().push(class);
    }

    let labeled = sqlan_par::par_map(&order, |stmt| label(stmt));

    let mut entries = Vec::with_capacity(order.len());
    let mut repetitions = Vec::with_capacity(order.len());
    for (stmt, (error_class, answer, cpu)) in order.into_iter().zip(labeled) {
        let classes = &groups[&stmt];
        let session_class = majority_class(classes);
        repetitions.push(classes.len() as u32);
        entries.push(WorkloadEntry {
            statement: stmt,
            error_class,
            session_class: Some(session_class),
            answer_size: answer,
            cpu_seconds: cpu,
            user_id: None,
        });
    }
    Workload {
        entries,
        repetitions,
        sampled_logs,
    }
}

fn majority_class(classes: &[SessionClass]) -> SessionClass {
    let mut counts = [0usize; 7];
    for c in classes {
        counts[c.index()] += 1;
    }
    let best = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, n)| **n)
        .map(|(i, _)| i)
        .unwrap_or(0);
    SessionClass::from_index(best).unwrap_or(SessionClass::Unknown)
}

/// Configuration for synthesizing the SQLShare-like workload.
#[derive(Debug, Clone, Copy)]
pub struct SqlShareConfig {
    pub n_queries: usize,
    pub n_users: u32,
    pub scale: Scale,
    pub seed: u64,
}

impl Default for SqlShareConfig {
    fn default() -> Self {
        SqlShareConfig {
            n_queries: 2_000,
            n_users: 60,
            scale: Scale(0.5),
            seed: 0x5A5E,
        }
    }
}

/// Build the SQLShare-like workload: per-user schemas, per-user queries,
/// CPU-time labels from execution. Session metadata is absent, as in the
/// real SQLShare release (§4.2).
///
/// Statement *generation* is a sequential seeded-RNG stream (dedup-driven
/// retries must consume the RNG in a fixed order); statement *execution*
/// — the dominant cost — fans out over the [`sqlan_par`] pool with
/// input-order results, so the built workload is byte-identical at any
/// thread count.
pub fn build_sqlshare(cfg: SqlShareConfig) -> Workload {
    let (catalog, users) = sqlshare_catalog(cfg.n_users, cfg.scale, cfg.seed ^ 0x11);
    let db = Database::new(catalog);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x22);

    // Zipf-ish user activity: low-id users submit more queries, the long
    // tail submits a handful — matching SQLShare's reported skew.
    let pick_user = |rng: &mut StdRng, users: &[UserSchema]| -> usize {
        let n = users.len();
        let weights: Vec<f64> = (0..n).map(|k| 1.0 / (k as f64 + 1.5)).collect();
        let total: f64 = weights.iter().sum();
        let mut x = rng.gen_range(0.0..total);
        for (k, w) in weights.iter().enumerate() {
            if x < *w {
                return k;
            }
            x -= w;
        }
        n - 1
    };

    // Phase 1 (sequential): draw unique statements. Acceptance depends
    // only on the RNG stream and the dedup set, never on execution, so
    // labeling can be deferred and batched.
    let mut seen: HashMap<String, ()> = HashMap::new();
    let mut planned: Vec<(String, u32)> = Vec::with_capacity(cfg.n_queries);
    let mut attempts = 0usize;
    while planned.len() < cfg.n_queries && attempts < cfg.n_queries * 20 {
        attempts += 1;
        let u = pick_user(&mut rng, &users);
        let stmt = sqlshare_statement(&users[u], &mut rng);
        if seen.insert(stmt.clone(), ()).is_some() {
            continue; // SQLShare workload is deduplicated upstream
        }
        planned.push((stmt, users[u].user_id));
    }

    // Phase 2 (parallel): execute for labels, merged in input order.
    let outcomes = sqlan_par::par_map(&planned, |(stmt, _)| db.submit(stmt));

    let sampled_logs = planned.len();
    let entries: Vec<WorkloadEntry> = planned
        .into_iter()
        .zip(outcomes)
        .map(|((statement, user_id), out)| WorkloadEntry {
            statement,
            error_class: out.error_class,
            session_class: None,
            answer_size: out.answer_size as f64,
            cpu_seconds: out.cpu_seconds,
            user_id: Some(user_id),
        })
        .collect();
    let repetitions = vec![1; entries.len()];
    Workload {
        entries,
        repetitions,
        sampled_logs,
    }
}

/// Access to the database used for SQLShare labeling (needed by the `opt`
/// baseline, which reads optimizer estimates).
pub fn sqlshare_database(cfg: SqlShareConfig) -> Database {
    let (catalog, _) = sqlshare_catalog(cfg.n_users, cfg.scale, cfg.seed ^ 0x11);
    Database::new(catalog)
}

/// Access to the database used for SDSS labeling.
pub fn sdss_database(cfg: SdssConfig) -> Database {
    Database::new(sdss_catalog(cfg.scale, cfg.seed ^ 0xCA7A))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sdss() -> Workload {
        build_sdss(SdssConfig {
            n_sessions: 300,
            scale: Scale(0.02),
            seed: 7,
        })
    }

    #[test]
    fn sdss_pipeline_produces_unique_statements() {
        let w = small_sdss();
        assert!(!w.is_empty());
        let mut set = std::collections::HashSet::new();
        for e in &w.entries {
            assert!(
                set.insert(e.statement.clone()),
                "duplicate: {}",
                e.statement
            );
        }
        assert_eq!(w.repetitions.len(), w.entries.len());
        let total: u32 = w.repetitions.iter().sum();
        assert_eq!(total as usize, w.sampled_logs);
    }

    #[test]
    fn sdss_error_mix_is_dominated_by_success() {
        let w = build_sdss(SdssConfig {
            n_sessions: 800,
            scale: Scale(0.02),
            seed: 8,
        });
        let frac = |c: ErrorClass| {
            w.entries.iter().filter(|e| e.error_class == c).count() as f64 / w.len() as f64
        };
        assert!(
            frac(ErrorClass::Success) > 0.85,
            "success {}",
            frac(ErrorClass::Success)
        );
        assert!(frac(ErrorClass::Severe) < 0.08);
        assert!(frac(ErrorClass::NonSevere) < 0.12);
    }

    #[test]
    fn sdss_labels_are_deterministic() {
        let a = small_sdss();
        let b = small_sdss();
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn sdss_answer_sizes_heavy_tailed() {
        let w = build_sdss(SdssConfig {
            n_sessions: 600,
            scale: Scale(0.05),
            seed: 9,
        });
        let ok: Vec<f64> = w
            .entries
            .iter()
            .filter(|e| e.error_class == ErrorClass::Success)
            .map(|e| e.answer_size)
            .collect();
        let max = ok.iter().cloned().fold(0.0, f64::max);
        let mut sorted = ok.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        assert!(max > 100.0, "some query should return many rows, max={max}");
        assert!(
            median <= 10.0,
            "most queries return few rows, median={median}"
        );
    }

    #[test]
    fn sqlshare_pipeline_attaches_users() {
        let w = build_sqlshare(SqlShareConfig {
            n_queries: 150,
            n_users: 10,
            scale: Scale(0.05),
            seed: 4,
        });
        assert!(w.len() >= 100);
        assert!(w.entries.iter().all(|e| e.user_id.is_some()));
        assert!(w.entries.iter().all(|e| e.session_class.is_none()));
        let users: std::collections::HashSet<_> =
            w.entries.iter().map(|e| e.user_id.unwrap()).collect();
        assert!(
            users.len() >= 5,
            "queries should span users: {}",
            users.len()
        );
    }

    #[test]
    fn bots_repeat_statements_more_than_browsers() {
        let w = build_sdss(SdssConfig {
            n_sessions: 1500,
            scale: Scale(0.02),
            seed: 10,
        });
        // Bot point-lookups collide (same id drawn twice); others rarely do.
        let max_rep = w.repetitions.iter().copied().max().unwrap_or(1);
        assert!(max_rep >= 2, "some statement should repeat, max={max_rep}");
    }
}
