//! Label types: session classes and workload entries.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use sqlan_engine::ErrorClass;

/// The seven session classes of the SDSS workload (§4.1 and Appendix B.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SessionClass {
    /// The session was not established through the Web (direct SQL access,
    /// e.g. CasJobs batch queries).
    NoWebHit,
    /// Web session with no agent string reported.
    Unknown,
    /// Search-engine crawlers and similar automation.
    Bot,
    /// Administrative services (performance monitors etc.).
    Admin,
    /// User programs, e.g. data downloaders.
    Program,
    /// Web sessions flagged anonymous by the agent tables.
    Anonymous,
    /// Interactive web browsers.
    Browser,
}

impl SessionClass {
    /// Paper ordering (Figure 6b / Table 4 columns).
    pub const ALL: [SessionClass; 7] = [
        SessionClass::NoWebHit,
        SessionClass::Unknown,
        SessionClass::Bot,
        SessionClass::Admin,
        SessionClass::Program,
        SessionClass::Anonymous,
        SessionClass::Browser,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SessionClass::NoWebHit => "no_web_hit",
            SessionClass::Unknown => "unknown",
            SessionClass::Bot => "bot",
            SessionClass::Admin => "admin",
            SessionClass::Program => "program",
            SessionClass::Anonymous => "anonymous",
            SessionClass::Browser => "browser",
        }
    }

    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|c| *c == self)
            .expect("class in ALL")
    }

    pub fn from_index(i: usize) -> Option<SessionClass> {
        Self::ALL.get(i).copied()
    }
}

impl fmt::Display for SessionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One labeled workload entry after extraction (Definition 3: a query
/// statement plus the properties obtained by submitting it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadEntry {
    pub statement: String,
    pub error_class: ErrorClass,
    /// `None` for SQLShare, which records no session metadata (§4.2).
    pub session_class: Option<SessionClass>,
    /// Rows retrieved; `-1` when the query did not run.
    pub answer_size: f64,
    /// CPU seconds (`busy`).
    pub cpu_seconds: f64,
    /// SQLShare only: the owning user id, used for the Heterogeneous
    /// Schema split.
    pub user_id: Option<u32>,
}

/// One raw hit in the simulated log, before extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hit {
    /// Seconds since the simulation epoch.
    pub timestamp: f64,
    /// Simulated client IP (opaque id).
    pub ip: u32,
    /// The submitted statement.
    pub statement: String,
    /// The class of the generating agent (ground truth, later recovered by
    /// the session labeler through the agent-string tables).
    pub agent_class: SessionClass,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_order_matches_paper() {
        let names: Vec<&str> = SessionClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "no_web_hit",
                "unknown",
                "bot",
                "admin",
                "program",
                "anonymous",
                "browser"
            ]
        );
    }

    #[test]
    fn index_roundtrip() {
        for c in SessionClass::ALL {
            assert_eq!(SessionClass::from_index(c.index()), Some(c));
        }
        assert_eq!(SessionClass::from_index(7), None);
    }
}
