//! Offline stand-in for `fxhash` / `rustc-hash`.
//!
//! The standard library's `HashMap` defaults to SipHash-1-3, which is
//! DoS-resistant but costs ~1 ns/byte plus a fixed per-key setup — far
//! too heavy for the featurization hot path, where every n-gram of every
//! statement does a vocabulary probe. This crate provides the classic
//! "Fx" multiply-rotate hash used by rustc: the input is consumed in
//! 8-byte words folded as `hash = (hash.rotl(5) ^ word) * K` with an
//! odd 64-bit constant. It is *not* DoS-resistant and must only be used
//! for internal keys (tokens, feature ids), never attacker-controlled
//! map keys on a trust boundary — which is exactly how the workspace
//! uses it.
//!
//! Determinism: unlike `RandomState`, [`FxHasher`] has no per-process
//! random seed, so iteration order of an `FxHashMap` is stable for a
//! fixed insertion sequence. Nothing in the workspace relies on map
//! iteration order (every ranked extraction sorts with a total order),
//! but stability is a nice property for debugging.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from Firefox's original Fx hash (the 64-bit
/// golden-ratio-derived odd constant rustc also uses).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let word = u64::from_le_bytes(c.try_into().expect("exact chunk"));
            self.fold(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            // Pack the tail into one word, length-tagged so "ab" and
            // "ab\0" hash differently.
            let mut word = rest.len() as u64;
            for (i, &b) in rest.iter().enumerate() {
                word ^= (b as u64) << (8 * (i + 1) % 64);
            }
            self.fold(word);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (no random state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(b"select * from t"), hash_of(b"select * from t"));
    }

    #[test]
    fn distinguishes_close_keys() {
        assert_ne!(hash_of(b"a"), hash_of(b"b"));
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
        assert_ne!(hash_of(b"12345678"), hash_of(b"123456789"));
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for (i, k) in ["a", "b", "select", "<DIGIT>"].iter().enumerate() {
            m.insert(k.to_string(), i as u32);
        }
        assert_eq!(m.get("select"), Some(&2));
        assert_eq!(m.get("missing"), None);
        assert_eq!(m.len(), 4);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn spreads_small_integers() {
        // Small sequential ids must not collide in the low bits (the
        // bits HashMap actually uses for bucketing).
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..1000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish() >> 57); // top 7 bits, like hashbrown
        }
        assert!(seen.len() > 64, "top bits poorly distributed");
    }
}
