//! Offline stand-in for `serde_json`.
//!
//! Serializes the shared [`serde::Value`] tree to JSON text and parses it
//! back. Numbers round-trip losslessly: integers print exactly, floats
//! print with Rust's shortest round-trip formatting (`{:?}`), non-finite
//! floats print as `null` (matching upstream serde_json).

use std::fmt::Write as _;

pub use serde::{Error, Map, Number, Value};

// ================= serialization =================

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::I(i) => {
            let _ = write!(out, "{i}");
        }
        Number::U(u) => {
            let _ = write!(out, "{u}");
        }
        Number::F(f) if f.is_finite() => {
            // `{:?}` is Rust's shortest round-trip float rendering.
            let _ = write!(out, "{f:?}");
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ================= parsing =================

/// Parse JSON text and deserialize into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value_str(s)?;
    T::deserialize_value(&v)
}

fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let mut chars = std::str::from_utf8(rest)
                .map_err(|_| Error::custom("invalid UTF-8"))?
                .chars();
            match chars.next() {
                None => return Err(Error::custom("unterminated string")),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(Error::custom(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }
}

// ================= json! macro =================

/// Build a [`Value`] from JSON-like syntax. Object values and array
/// elements may be nested `{...}`/`[...]` literals or arbitrary
/// `Serialize` expressions (keys must be string literals).
#[macro_export]
macro_rules! json {
    // ---- object member muncher: json!(@obj map key : value, ...) ----
    (@obj $m:ident) => {};
    (@obj $m:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $m.insert(String::from($key), $crate::Value::Null);
        $crate::json!(@obj $m $($($rest)*)?);
    };
    (@obj $m:ident $key:literal : {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $m.insert(String::from($key), $crate::json!({$($inner)*}));
        $crate::json!(@obj $m $($($rest)*)?);
    };
    (@obj $m:ident $key:literal : [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $m.insert(String::from($key), $crate::json!([$($inner)*]));
        $crate::json!(@obj $m $($($rest)*)?);
    };
    (@obj $m:ident $key:literal : $val:expr , $($rest:tt)*) => {
        $m.insert(String::from($key), $crate::json!($val));
        $crate::json!(@obj $m $($rest)*);
    };
    (@obj $m:ident $key:literal : $val:expr) => {
        $m.insert(String::from($key), $crate::json!($val));
    };
    // ---- array element muncher: json!(@arr [acc...] elem, ...) ----
    // Accumulates converted elements into one `vec![...]` literal, so the
    // whole array stays a single expression in the caller's context
    // (`?`/`return`/`break` inside elements keep working) and the
    // expansion never contains a Vec-init-then-push statement pair.
    (@arr [$($acc:expr),*]) => {
        $crate::Value::Array(vec![$($acc),*])
    };
    (@arr [$($acc:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json!(@arr [$($acc,)* $crate::Value::Null] $($($rest)*)?)
    };
    (@arr [$($acc:expr),*] {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json!(@arr [$($acc,)* $crate::json!({$($inner)*})] $($($rest)*)?)
    };
    (@arr [$($acc:expr),*] [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json!(@arr [$($acc,)* $crate::json!([$($inner)*])] $($($rest)*)?)
    };
    (@arr [$($acc:expr),*] $val:expr , $($rest:tt)*) => {
        $crate::json!(@arr [$($acc,)* $crate::json!($val)] $($rest)*)
    };
    (@arr [$($acc:expr),*] $val:expr) => {
        $crate::json!(@arr [$($acc,)* $crate::json!($val)])
    };
    // ---- entry points ----
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {
        $crate::json!(@arr [] $($tt)*)
    };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $crate::json!(@obj m $($tt)*);
        $crate::Value::Object(m)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("serializing into json! cannot fail")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.25", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn round_trip_big_integers() {
        let big = (1u64 << 60) + 3;
        let v: Value = from_str(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn round_trip_floats_exactly() {
        for f in [0.1f64, 1e-300, 123456.789, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn nested_structures() {
        let v = json!({"a": [1, 2, {"b": null}], "c": "x"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn pretty_output_parses() {
        let v = json!({"k": [true, false]});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn json_macro_embeds_serialize_exprs() {
        let xs = vec![1u8, 2];
        let v = json!({"xs": xs, "n": 5});
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("n").unwrap().as_i64(), Some(5));
    }

    #[test]
    fn json_macro_arrays_stay_in_expression_context() {
        // `?` inside an array element must propagate from the enclosing
        // function (real serde_json semantics) — the expansion cannot
        // hide elements behind a closure boundary.
        fn build(x: Option<u8>) -> Option<Value> {
            Some(json!([x?, 2, [x?], {"k": 3}]))
        }
        let v = build(Some(1)).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 4);
        assert_eq!(build(None), None);

        // Empty and trailing-comma forms.
        assert_eq!(json!([]).as_array().unwrap().len(), 0);
        assert_eq!(json!([1, 2,]).as_array().unwrap().len(), 2);
    }
}
