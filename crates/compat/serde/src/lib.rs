//! Offline stand-in for `serde`.
//!
//! The real crates.io `serde` is unavailable in this build environment, so
//! this crate provides the subset of its API the workspace uses, built
//! around a concrete JSON-like value tree instead of serde's visitor
//! machinery:
//!
//! * [`Serialize`] / [`Deserialize`] traits (`derive` re-exported from the
//!   companion proc-macro crate `serde_derive`),
//! * a [`Value`] data model ([`Number`], [`Map`]) shared with the
//!   `serde_json` stand-in,
//! * impls for the primitive, container, and tuple types the workspace
//!   serializes.
//!
//! Fidelity goal: self-consistent round-trips (`to_string` → `from_str`
//! reproduces the value exactly, including i64/u64 beyond 2^53 and f32/f64
//! bit patterns) — not wire compatibility with upstream serde.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

// ================= data model =================

/// A JSON-like value tree: the serialization target for every type.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A JSON number: integer, unsigned, or float, kept lossless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I(i) => i as f64,
            Number::U(u) => u as f64,
            Number::F(f) => f,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I(i) => Some(i),
            Number::U(u) => i64::try_from(u).ok(),
            Number::F(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Some(f as i64),
            Number::F(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I(i) => u64::try_from(i).ok(),
            Number::U(u) => Some(u),
            Number::F(f) if f.fract() == 0.0 && (0.0..1.8e19).contains(&f) => Some(f as u64),
            Number::F(_) => None,
        }
    }
}

/// An ordered string-keyed map (JSON object). Insertion order preserved.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map {
            entries: Vec::new(),
        }
    }

    /// Insert, replacing any existing entry with the same key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// The sole entry of a single-key object (how enums are encoded).
    pub fn single(&self) -> Option<(&str, &Value)> {
        match self.entries.as_slice() {
            [(k, v)] => Some((k.as_str(), v)),
            _ => None,
        }
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

// ================= conversions =================

macro_rules! value_from {
    ($($t:ty => $body:expr),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                #[allow(clippy::redundant_closure_call)]
                ($body)(v)
            }
        }
    )*};
}

value_from! {
    bool => Value::Bool,
    i32 => |v: i32| Value::Number(Number::I(v as i64)),
    i64 => |v| Value::Number(Number::I(v)),
    u32 => |v: u32| Value::Number(Number::U(v as u64)),
    u64 => |v| Value::Number(Number::U(v)),
    usize => |v: usize| Value::Number(Number::U(v as u64)),
    f32 => |v: f32| Value::Number(Number::F(v as f64)),
    f64 => |v| Value::Number(Number::F(v)),
    String => Value::String,
    &str => |v: &str| Value::String(v.to_string()),
    Vec<Value> => Value::Array,
    Map => Value::Object,
}

// ================= error =================

/// Serialization / deserialization error (shared with `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

// ================= traits =================

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by derived code: fetch a struct field (missing → Null, so
/// `Option` fields default to `None`).
pub fn field<'v>(m: &'v Map, name: &str) -> &'v Value {
    static NULL: Value = Value::Null;
    m.get(name).unwrap_or(&NULL)
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {got:?}")))
}

// ================= primitive impls =================

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().map_or_else(|| type_err("bool", v), Ok)
    }
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v.as_i64() {
                    Some(i) => <$t>::try_from(i)
                        .map_err(|_| Error::custom(format!("{i} out of range"))),
                    None => type_err("integer", v),
                }
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize);

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v.as_u64() {
                    Some(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom(format!("{u} out of range"))),
                    None => type_err("unsigned integer", v),
                }
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // Non-finite floats serialize as null (JSON has no NaN).
            Value::Null => Ok(f64::NAN),
            _ => type_err("number", v),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        // f32 → f64 is exact, so the round-trip back to f32 is exact too.
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v.as_str().and_then(|s| {
            let mut it = s.chars();
            match (it.next(), it.next()) {
                (Some(c), None) => Some(c),
                _ => None,
            }
        }) {
            Some(c) => Ok(c),
            None => type_err("single-char string", v),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map_or_else(|| type_err("string", v), |s| Ok(s.to_string()))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ================= container impls =================

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some(items) => items.iter().map(T::deserialize_value).collect(),
            None => type_err("array", v),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected {N} elements, got {n}")))
    }
}

macro_rules! tuple_impl {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$i.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v.as_array() {
                    Some(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            {
                                let slot = it.next()
                                    .ok_or_else(|| Error::custom("tuple too short"))?;
                                $t::deserialize_value(slot)?
                            },
                        )+);
                        Ok(out)
                    }
                    None => type_err("tuple array", v),
                }
            }
        }
    )*};
}

tuple_impl! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// Generic over the hasher so maps keyed with a custom `BuildHasher`
// (e.g. the workspace's `fxhash` stand-in) serialize identically to the
// SipHash default — the wire form is key-sorted either way.
impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn serialize_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].serialize_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v.as_object() {
            Some(m) => m
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize_value(val)?)))
                .collect(),
            None => type_err("object", v),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        for (k, val) in self {
            m.insert(k.clone(), val.serialize_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v.as_object() {
            Some(m) => m
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize_value(val)?)))
                .collect(),
            None => type_err("object", v),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for Map {
    fn serialize_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .map_or_else(|| type_err("object", v), |m| Ok(m.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::deserialize_value(&(-5i64).serialize_value()), Ok(-5));
        assert_eq!(
            u64::deserialize_value(&u64::MAX.serialize_value()),
            Ok(u64::MAX)
        );
        assert_eq!(f64::deserialize_value(&0.1f64.serialize_value()), Ok(0.1));
        assert_eq!(bool::deserialize_value(&true.serialize_value()), Ok(true));
        assert_eq!(
            String::deserialize_value(&"hi".to_string().serialize_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn big_i64_is_lossless() {
        let big = (1i64 << 56) + 7;
        assert_eq!(i64::deserialize_value(&big.serialize_value()), Ok(big));
    }

    #[test]
    fn options_and_vecs() {
        let v: Option<i32> = None;
        assert_eq!(v.serialize_value(), Value::Null);
        assert_eq!(Option::<i32>::deserialize_value(&Value::Null), Ok(None));
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize_value(&xs.serialize_value()), Ok(xs));
    }

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        m.insert("a".into(), Value::Bool(true));
        let old = m.insert("a".into(), Value::Bool(false));
        assert_eq!(old, Some(Value::Bool(true)));
        assert_eq!(m.len(), 1);
    }
}
