//! Offline stand-in for `criterion`.
//!
//! Implements the `bench_function` / `Bencher::iter` surface with plain
//! wall-clock timing (median of a few batches) instead of criterion's
//! statistical machinery. Supports both `criterion_group!` forms (plain
//! target list and `name/config/targets`). Without the `--bench` CLI flag
//! each benchmark runs one short batch, so bench targets stay
//! compile-and-smoke-checked cheaply.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    quick: bool,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quick: false,
            sample_size: 7,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            batch_ns: Vec::new(),
            quick: self.quick,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    batch_ns: Vec<f64>,
    quick: bool,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.quick {
            let start = Instant::now();
            black_box(f());
            self.batch_ns.push(start.elapsed().as_nanos() as f64);
            return;
        }
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
        }
        // Measure: batches until sample_size or the time budget runs out.
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.batch_ns.push(start.elapsed().as_nanos() as f64);
            if measure_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.batch_ns.is_empty() {
            return;
        }
        let mut ns = self.batch_ns.clone();
        ns.sort_by(f64::total_cmp);
        let median = ns[ns.len() / 2];
        eprintln!("bench {name:<40} {median:>14.0} ns/iter");
    }
}

#[doc(hidden)]
pub fn run_group(name: &str, config: Criterion, fns: &mut [&mut dyn FnMut(&mut Criterion)]) {
    // Under `cargo test` (no `--bench` flag) run a minimal smoke pass.
    let quick = !std::env::args().any(|a| a == "--bench");
    let mut c = Criterion { quick, ..config };
    eprintln!(
        "running benchmark group `{name}`{}",
        if quick { " (quick)" } else { "" }
    );
    for f in fns {
        f(&mut c);
    }
}

/// Define a benchmark group, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $group:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $group() {
            $crate::run_group(stringify!($group), $config, &mut [$(&mut $target),+]);
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            $crate::run_group(
                stringify!($group),
                $crate::Criterion::default(),
                &mut [$(&mut $target),+],
            );
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
