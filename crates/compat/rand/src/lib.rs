//! Offline stand-in for `rand` 0.8.
//!
//! Provides the API subset this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}` — backed by xoshiro256**.
//!
//! Determinism is the only contract that matters here (every workload and
//! catalog is generated from a seed); the streams differ from upstream
//! rand's ChaCha12-based `StdRng`, which is fine because all consumers are
//! in-workspace and self-consistent.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// The standard RNG: xoshiro256** seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types drawable from a uniform range (`rand::distributions::uniform`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample from `[lo, hi)` when `inclusive` is false, `[lo, hi]` when
    /// true. Emptiness is checked by the caller.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges usable with [`Rng::gen_range`]. The single blanket impl per
/// range type is load-bearing: it lets integer-literal inference flow from
/// the result type into the range bounds (as with the real rand crate).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Widening-multiply uniform sampling; bias is < 2^-64, irrelevant here.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
                } else {
                    lo.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let u = f64::sample_standard(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// The user-facing RNG interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    pub use super::StdRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates, identical order of rng draws to rand 0.8's
            // implementation shape (i from len down to 2).
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let i: i64 = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&i));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_standard_types() {
        let mut rng = StdRng::seed_from_u64(2);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let _: u16 = rng.gen::<u16>();
        let _: u64 = rng.gen::<u64>();
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
