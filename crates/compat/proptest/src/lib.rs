//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { ... } }` with an
//!   optional `#![proptest_config(...)]` header,
//! * strategies: numeric ranges, `any::<bool>()`,
//!   `prop::collection::vec(strategy, size_range)`, and string literals
//!   interpreted as a small regex-like pattern language (`.`, `[a-z0-9_]`
//!   classes, `{m,n}` repetition, `*`, `+`, `?`, literals),
//! * `prop_assert!` / `prop_assert_eq!` and `TestCaseError`.
//!
//! No shrinking: a failing case panics immediately, printing the inputs
//! and the case's deterministic seed. Cases derive from a fixed per-test
//! seed, so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    pub use crate::collection_mod as collection;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
        TestRunner,
    };
}

/// `prop::...` paths used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection_mod as collection;
}

#[doc(hidden)]
pub mod collection_mod {
    use super::*;

    /// Strategy for `Vec<T>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A failing test case (what `prop_assert!` returns).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test runner used by the `proptest!` expansion.
#[derive(Debug)]
pub struct TestRunner {
    pub config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, test_name: &str) -> TestRunner {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner { config, seed: h }
    }

    pub fn case_rng(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ ((case as u64) << 32 | 0x9E37))
    }
}

/// Value generators. Unlike real proptest there is no shrinking tree —
/// `generate` yields the final value directly.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// `any::<T>()` for the types the tests draw "anything" of.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub trait Arbitrary {
    type Strategy: Strategy;

    fn arbitrary() -> Self::Strategy;
}

#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ================= string pattern strategies =================

/// String literals act as regex-like generators (proptest's `&str`
/// strategy). Supported: literal chars, `.`, `[...]` classes with ranges,
/// `{m,n}` / `{n}` repetition, `*` (0–8), `+` (1–8), `?`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.rep.sample(rng);
            for _ in 0..n {
                atom.kind.push_one(rng, &mut out);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        self.as_str().generate(rng)
    }
}

#[derive(Debug, Clone)]
struct Atom {
    kind: AtomKind,
    rep: Rep,
}

#[derive(Debug, Clone)]
enum AtomKind {
    Literal(char),
    /// `.` — printable ASCII plus a sprinkle of newlines/unicode, so
    /// "arbitrary input" tests still explore edge characters.
    Any,
    /// `[...]` — expanded set of candidate chars.
    Class(Vec<char>),
}

impl AtomKind {
    fn push_one(&self, rng: &mut StdRng, out: &mut String) {
        match self {
            AtomKind::Literal(c) => out.push(*c),
            AtomKind::Any => {
                let roll = rng.gen_range(0..100u32);
                let c = if roll < 92 {
                    // printable ASCII
                    char::from(rng.gen_range(0x20u8..0x7f))
                } else if roll < 96 {
                    ['\n', '\t', '\r'][rng.gen_range(0..3usize)]
                } else {
                    ['é', 'λ', '中', '🦀', '\u{0}'][rng.gen_range(0..5usize)]
                };
                out.push(c);
            }
            AtomKind::Class(cs) => {
                if !cs.is_empty() {
                    out.push(cs[rng.gen_range(0..cs.len())]);
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Rep {
    Exactly(u32),
    Between(u32, u32),
}

impl Rep {
    fn sample(self, rng: &mut StdRng) -> u32 {
        match self {
            Rep::Exactly(n) => n,
            Rep::Between(lo, hi) => rng.gen_range(lo..=hi),
        }
    }
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let kind = match chars[i] {
            '.' => {
                i += 1;
                AtomKind::Any
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ]
                AtomKind::Class(set)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                AtomKind::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                AtomKind::Literal(c)
            }
        };
        // Optional quantifier.
        let rep = match chars.get(i) {
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                let body: String = match close {
                    Some(e) => chars[i + 1..e].iter().collect(),
                    None => String::new(),
                };
                i = close.map(|e| e + 1).unwrap_or(i);
                match body.split_once(',') {
                    Some((lo, hi)) => Rep::Between(
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(8),
                    ),
                    None => Rep::Exactly(body.trim().parse().unwrap_or(1)),
                }
            }
            Some('*') => {
                i += 1;
                Rep::Between(0, 8)
            }
            Some('+') => {
                i += 1;
                Rep::Between(1, 8)
            }
            Some('?') => {
                i += 1;
                Rep::Between(0, 1)
            }
            _ => Rep::Exactly(1),
        };
        atoms.push(Atom { kind, rep });
    }
    atoms
}

// ================= macros =================

/// Assert inside a `proptest!` body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@funcs ($config:expr)) => {};
    (
        @funcs ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let runner = $crate::TestRunner::new($config, stringify!($name));
            for case in 0..runner.config.cases {
                let mut rng = runner.case_rng(case);
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {}",
                        case + 1,
                        runner.config.cases,
                        e,
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", "),
                    );
                }
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_generation_matches_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let s = "[a-c][0-9]{2,4}x".generate(&mut rng);
            let cs: Vec<char> = s.chars().collect();
            assert!(('a'..='c').contains(&cs[0]));
            assert!(cs[cs.len() - 1] == 'x');
            assert!((4..=6).contains(&cs.len()));
        }
    }

    #[test]
    fn any_dot_pattern_bounds_length() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            let s = ".{0,40}".generate(&mut rng);
            assert!(s.chars().count() <= 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_expansion_runs(x in 0u32..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert_eq!(flip, flip);
        }
    }
}
