//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! `serde` stand-in.
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote`
//! available offline). Supports non-generic structs (named, tuple, unit)
//! and enums (unit, tuple, struct variants) — the shapes this workspace
//! derives. `#[serde(...)]` field attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ================= item model =================

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ================= parsing =================

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();

    // Outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                // Optional `!` then the bracket group.
                if let Some(TokenTree::Punct(p)) = toks.peek() {
                    if p.as_char() == '!' {
                        toks.next();
                    }
                }
                toks.next(); // [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // (crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let item_kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the offline shim");
        }
    }

    let kind = match item_kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Input { name, kind }
}

/// Parse `name: Type, ...` field lists, returning the names. Type tokens
/// are skipped up to the next comma outside angle brackets (grouped
/// delimiters arrive as single atomic trees, so only `<...>` needs depth
/// tracking).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match toks.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
        // Expect `:` then skip the type until a top-level comma.
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:`, got {other:?}"),
        }
        let mut angle = 0i32;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut n = 0usize;
    let mut angle = 0i32;
    let mut pending = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                n += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = Shape::Tuple(count_tuple_fields(g.stream()));
                toks.next();
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = Shape::Named(parse_named_fields(g.stream()));
                toks.next();
                s
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an optional discriminant, then the separating comma.
        let mut angle = 0i32;
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => break,
                None => break,
                _ => {}
            }
        }
    }
    variants
}

// ================= code generation =================

fn ser_call(expr: &str) -> String {
    format!("::serde::Serialize::serialize_value({expr})")
}

fn de_call(expr: &str) -> String {
    format!("::serde::Deserialize::deserialize_value({expr})?")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(String::from(\"{f}\"), {});\n",
                    ser_call(&format!("&self.{f}"))
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n).map(|i| ser_call(&format!("&self.{i}"))).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            ser_call("f0")
                        } else {
                            let items: Vec<String> = binds.iter().map(|b| ser_call(b)).collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{ let mut m = ::serde::Map::new(); \
                             m.insert(String::from(\"{vn}\"), {inner}); \
                             ::serde::Value::Object(m) }}\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(String::from(\"{f}\"), {});\n",
                                ser_call(f)
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {inner} \
                             let mut m = ::serde::Map::new(); \
                             m.insert(String::from(\"{vn}\"), ::serde::Value::Object(fm)); \
                             ::serde::Value::Object(m) }}\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: {},\n",
                    de_call(&format!("::serde::field(m, \"{f}\")"))
                ));
            }
            format!(
                "let m = v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Kind::TupleStruct(n) => {
            let mut items = String::new();
            for i in 0..*n {
                items.push_str(&format!("{},\n", de_call(&format!("&a[{i}]"))));
            }
            format!(
                "let a = v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if a.len() != {n} {{ return Err(::serde::Error::custom(\
                 \"wrong arity for {name}\")); }}\n\
                 Ok({name}({items}))"
            )
        }
        Kind::UnitStruct => format!("Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"))
                    }
                    Shape::Tuple(n) => {
                        if *n == 1 {
                            data_arms.push_str(&format!(
                                "\"{vn}\" => return Ok({name}::{vn}({})),\n",
                                de_call("inner")
                            ));
                        } else {
                            let mut items = String::new();
                            for i in 0..*n {
                                items.push_str(&format!("{},\n", de_call(&format!("&a[{i}]"))));
                            }
                            data_arms.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let a = inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                                 if a.len() != {n} {{ return Err(::serde::Error::custom(\
                                 \"wrong arity for {name}::{vn}\")); }}\n\
                                 return Ok({name}::{vn}({items}));\n}}\n"
                            ));
                        }
                    }
                    Shape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: {},\n",
                                de_call(&format!("::serde::field(fm, \"{f}\")"))
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let fm = inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                             return Ok({name}::{vn} {{ {inits} }});\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "if let Some(s) = v.as_str() {{\n\
                 match s {{\n{unit_arms}\
                 other => return Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n}}\n}}\n\
                 if let Some(m) = v.as_object() {{\n\
                 if let Some((k, inner)) = m.single() {{\n\
                 let _ = inner;\n\
                 match k {{\n{data_arms}\
                 other => return Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n}}\n}}\n}}\n\
                 Err(::serde::Error::custom(\"expected enum {name}\"))"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
