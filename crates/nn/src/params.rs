//! Parameter and gradient stores, separated from the tape so that a fresh
//! graph can be built per example while parameters persist across steps
//! (and so data-parallel workers can hold private gradient buffers).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Handle to one parameter tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// The trainable state of a model.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Params {
    tensors: Vec<Tensor>,
    names: Vec<String>,
}

impl Params {
    pub fn new() -> Params {
        Params::default()
    }

    /// Register a parameter with an explicit initial value.
    pub fn add(&mut self, name: impl Into<String>, t: Tensor) -> ParamId {
        self.tensors.push(t);
        self.names.push(name.into());
        ParamId(self.tensors.len() - 1)
    }

    /// Xavier/Glorot-uniform initialized matrix.
    pub fn add_xavier(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut StdRng,
    ) -> ParamId {
        let bound = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        self.add(name, Tensor::from_vec(rows, cols, data))
    }

    /// Zero-initialized (biases).
    pub fn add_zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Tensor::zeros(rows, cols))
    }

    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar parameter count (the paper's Table 2 `p` column).
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// A zeroed gradient buffer matching this parameter set. Backed by
    /// the thread-local buffer arena — short-lived per-tile/per-example
    /// buffers should go back via [`Grads::recycle`] once merged.
    pub fn zero_grads(&self) -> Grads {
        Grads {
            bufs: self
                .tensors
                .iter()
                .map(|t| Tensor::zeros_pooled(t.rows, t.cols))
                .collect(),
        }
    }

    pub fn iter_ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.tensors.len()).map(ParamId)
    }
}

/// Gradient buffers aligned with a [`Params`].
#[derive(Debug, Clone)]
pub struct Grads {
    pub(crate) bufs: Vec<Tensor>,
}

impl Grads {
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.bufs[id.0]
    }

    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.bufs[id.0]
    }

    pub fn zero(&mut self) {
        for b in &mut self.bufs {
            b.zero();
        }
    }

    /// Merge another worker's gradients into this buffer.
    pub fn merge(&mut self, other: &Grads) {
        assert_eq!(self.bufs.len(), other.bufs.len());
        for (a, b) in self.bufs.iter_mut().zip(&other.bufs) {
            a.add_assign(b);
        }
    }

    /// Scale all gradients (e.g. by 1/batch).
    pub fn scale(&mut self, k: f32) {
        for b in &mut self.bufs {
            b.scale_assign(k);
        }
    }

    /// Global L2 norm across every gradient element.
    pub fn global_norm(&self) -> f32 {
        self.bufs
            .iter()
            .map(|b| {
                let n = b.norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Return every gradient buffer to the thread-local arena (call on
    /// worker-private buffers after merging them).
    pub fn recycle(self) {
        for b in self.bufs {
            b.recycle();
        }
    }

    /// Clip by global norm (the paper's "clipping rate"); no-op when the
    /// norm is under `max_norm` or `max_norm <= 0`.
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        if max_norm <= 0.0 {
            return;
        }
        let norm = self.global_norm();
        if norm > max_norm && norm.is_finite() {
            self.scale(max_norm / norm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn add_and_lookup() {
        let mut p = Params::new();
        let id = p.add("w", Tensor::row(vec![1.0, 2.0]));
        assert_eq!(p.get(id).data, vec![1.0, 2.0]);
        assert_eq!(p.name(id), "w");
        assert_eq!(p.num_scalars(), 2);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = Params::new();
        let id = p.add_xavier("w", 10, 10, &mut rng);
        let bound = (6.0f64 / 20.0).sqrt() as f32;
        assert!(p.get(id).data.iter().all(|v| v.abs() <= bound));
        // And not all zero.
        assert!(p.get(id).norm() > 0.0);
    }

    #[test]
    fn grads_merge_and_scale() {
        let mut p = Params::new();
        let id = p.add("w", Tensor::row(vec![0.0, 0.0]));
        let mut g1 = p.zero_grads();
        let mut g2 = p.zero_grads();
        g1.get_mut(id).data[0] = 1.0;
        g2.get_mut(id).data[0] = 3.0;
        g1.merge(&g2);
        assert_eq!(g1.get(id).data[0], 4.0);
        g1.scale(0.5);
        assert_eq!(g1.get(id).data[0], 2.0);
    }

    #[test]
    fn clip_global_norm_caps() {
        let mut p = Params::new();
        let id = p.add("w", Tensor::row(vec![0.0, 0.0]));
        let mut g = p.zero_grads();
        g.get_mut(id).data.copy_from_slice(&[3.0, 4.0]);
        g.clip_global_norm(1.0);
        assert!((g.global_norm() - 1.0).abs() < 1e-5);
        // Already small: untouched.
        let before = g.get(id).data.clone();
        g.clip_global_norm(10.0);
        assert_eq!(g.get(id).data, before);
    }
}
