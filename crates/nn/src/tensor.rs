//! A minimal dense 2-D tensor.
//!
//! Everything in the model zoo (embeddings, LSTM states, convolution
//! activations, logits) is a row-major 2-D `f32` matrix; sequences are
//! `(seq_len, dim)` and vectors are `(1, dim)`. Keeping a single concrete
//! shape rules out a whole class of broadcasting bugs and keeps the
//! autograd tape simple.

use serde::{Deserialize, Serialize};

/// Row-major 2-D tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Tensor {
    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Tensor from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// 1×n row vector.
    pub fn row(data: Vec<f32>) -> Tensor {
        let cols = data.len();
        Tensor {
            rows: 1,
            cols,
            data,
        }
    }

    /// Scalar (1×1) tensor.
    pub fn scalar(v: f32) -> Tensor {
        Tensor {
            rows: 1,
            cols: 1,
            data: vec![v],
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Value at (r, c).
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a scalar tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() on non-scalar");
        self.data[0]
    }

    /// Matrix multiply: (m,k) × (k,n) → (m,n). Plain ikj loop with the
    /// inner dimension contiguous — fast enough at model sizes (≤ a few
    /// hundred) without pulling in BLAS.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(m, n, out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.at_mut(c, r) = self.at(r, c);
            }
        }
        out
    }

    /// Element-wise in-place accumulate: `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Zero out in place (for gradient reuse).
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Map a unary function over a copy.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(0, 0), 1.0);
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.row_slice(1), &[4., 5., 6.]);
        assert_eq!(t.shape(), (2, 3));
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![3., 1., 4., 1.]);
        let i = Tensor::from_vec(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn norm_and_scale() {
        let mut a = Tensor::row(vec![3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        a.scale_assign(2.0);
        assert_eq!(a.data, vec![6.0, 8.0]);
        a.zero();
        assert_eq!(a.data, vec![0.0, 0.0]);
    }
}
