//! A minimal dense 2-D tensor.
//!
//! Everything in the model zoo (embeddings, LSTM states, convolution
//! activations, logits) is a row-major 2-D `f32` matrix; sequences are
//! `(seq_len, dim)` and vectors are `(1, dim)`. Keeping a single concrete
//! shape rules out a whole class of broadcasting bugs and keeps the
//! autograd tape simple.
//!
//! Hot-path storage comes from the thread-local [buffer arena]: the
//! `*_pooled` constructors pop recycled buffers and [`Tensor::recycle`]
//! files them back, so steady-state training/inference steps allocate
//! O(1) fresh buffers.
//!
//! [buffer arena]: crate::arena

use serde::{Deserialize, Serialize};

use crate::arena;

/// Row-major 2-D tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Tensor {
    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All-zero tensor backed by the thread-local buffer arena.
    pub fn zeros_pooled(rows: usize, cols: usize) -> Tensor {
        Tensor {
            rows,
            cols,
            data: arena::take_zeroed(rows * cols),
        }
    }

    /// Copy of `self` backed by the arena.
    pub fn copy_pooled(&self) -> Tensor {
        let mut data = arena::take_empty(self.data.len());
        data.extend_from_slice(&self.data);
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Build from an exact-size iterator into an arena buffer.
    pub(crate) fn collect_pooled(
        rows: usize,
        cols: usize,
        it: impl Iterator<Item = f32>,
    ) -> Tensor {
        let mut data = arena::take_empty(rows * cols);
        data.extend(it);
        assert_eq!(data.len(), rows * cols, "shape/iterator mismatch");
        Tensor { rows, cols, data }
    }

    /// Return this tensor's buffer to the thread-local arena.
    pub fn recycle(mut self) {
        arena::give(std::mem::take(&mut self.data));
    }

    /// Tensor from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// 1×n row vector.
    pub fn row(data: Vec<f32>) -> Tensor {
        let cols = data.len();
        Tensor {
            rows: 1,
            cols,
            data,
        }
    }

    /// Scalar (1×1) tensor.
    pub fn scalar(v: f32) -> Tensor {
        Tensor {
            rows: 1,
            cols: 1,
            data: vec![v],
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Value at (r, c).
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a scalar tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() on non-scalar");
        self.data[0]
    }

    /// Matrix multiply: (m,k) × (k,n) → (m,n).
    ///
    /// This is the workspace's one matmul kernel, and its numeric order
    /// is a *contract*: each output element accumulates its k-products
    /// in ascending `p` order starting from its initial value (ikj
    /// order, no k-tiling), and rows never mix. Because of that, the
    /// result row for input row `i` is bit-identical whether `i` arrives
    /// alone as a (1,k) vector or stacked into a (B,k) batch — the
    /// property the batched inference path relies on to stay byte-equal
    /// to the per-example path.
    ///
    /// Mechanically the kernel *row-blocks*: four output rows advance
    /// through `p` together so each `b` row is loaded once per block
    /// instead of once per row — the concrete reason one `(B,k)·(k,n)`
    /// product beats B vector-matrix products. Blocking shares loads
    /// only; every row still performs its own adds in the contract
    /// order, and the inner axpy vectorizes without reassociating any
    /// sum.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, n) = (self.rows, other.cols);
        let mut out = Tensor::from_vec(m, n, arena::take_zeroed(m * n));
        out.matmul_acc(self, other);
        out
    }

    /// Matrix-multiply-accumulate: `self += a · b` with the
    /// [`Tensor::matmul`] kernel (same contract) into an existing
    /// buffer — the fused-layer ops use it to skip intermediate
    /// products.
    ///
    /// The kernel body lives in `sqlan-simd` (`matmul_acc_f32`), which
    /// compiles it once at the scalar baseline — byte-for-byte the
    /// historical 4×16 register-tiled loop — and once under AVX2 with a
    /// wider tile, dispatching at runtime. Both copies honor the
    /// accumulation-order contract above, so the tier is invisible to
    /// results.
    pub fn matmul_acc(&mut self, a: &Tensor, b: &Tensor) {
        assert_eq!(a.cols, b.rows, "matmul_acc shape mismatch");
        assert_eq!(self.shape(), (a.rows, b.cols), "matmul_acc out shape");
        let (m, k, n) = (a.rows, a.cols, b.cols);
        sqlan_simd::matmul_acc_f32(&mut self.data, &a.data, &b.data, m, k, n);
    }

    /// Transposed copy (blocked: both source and destination are walked
    /// in 32×32 tiles so neither side strides a whole row per element —
    /// the naive loop thrashes cache on the tall matrices backward
    /// passes transpose).
    pub fn transpose(&self) -> Tensor {
        const B: usize = 32;
        let (r, c) = (self.rows, self.cols);
        let mut out = arena::take_zeroed(r * c);
        for r0 in (0..r).step_by(B) {
            let r1 = (r0 + B).min(r);
            for c0 in (0..c).step_by(B) {
                let c1 = (c0 + B).min(c);
                for i in r0..r1 {
                    for j in c0..c1 {
                        out[j * r + i] = self.data[i * c + j];
                    }
                }
            }
        }
        Tensor::from_vec(c, r, out)
    }

    /// Element-wise in-place accumulate: `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        sqlan_simd::add_assign_f32(&mut self.data, &other.data);
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, k: f32) {
        sqlan_simd::scale_f32(&mut self.data, k);
    }

    /// Zero out in place (for gradient reuse).
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Map a unary function over a copy.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::collect_pooled(self.rows, self.cols, self.data.iter().map(|&v| f(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(0, 0), 1.0);
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.row_slice(1), &[4., 5., 6.]);
        assert_eq!(t.shape(), (2, 3));
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![3., 1., 4., 1.]);
        let i = Tensor::from_vec(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_rows_are_batch_invariant() {
        // The kernel contract: row i of a (B,k)·(k,n) product is bitwise
        // the row produced by the (1,k)·(k,n) product of that row alone.
        let b = Tensor::from_vec(3, 4, (0..12).map(|i| (i as f32).sin()).collect());
        let batch = Tensor::from_vec(5, 3, (0..15).map(|i| (i as f32).cos()).collect());
        let full = batch.matmul(&b);
        for r in 0..batch.rows {
            let solo = Tensor::row(batch.row_slice(r).to_vec()).matmul(&b);
            let full_bits: Vec<u32> = full.row_slice(r).iter().map(|f| f.to_bits()).collect();
            let solo_bits: Vec<u32> = solo.row_slice(0).iter().map(|f| f.to_bits()).collect();
            assert_eq!(full_bits, solo_bits, "row {r}");
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn transpose_blocked_matches_naive_on_odd_shapes() {
        // Shapes straddling the 32-tile boundary.
        for (r, c) in [(1, 1), (31, 33), (32, 32), (33, 65), (100, 7)] {
            let a = Tensor::from_vec(r, c, (0..r * c).map(|i| i as f32).collect());
            let t = a.transpose();
            assert_eq!(t.shape(), (c, r));
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t.at(j, i), a.at(i, j), "({i},{j}) of {r}x{c}");
                }
            }
        }
    }

    #[test]
    fn pooled_zeros_and_recycle_roundtrip() {
        let t = Tensor::zeros_pooled(4, 5);
        assert_eq!(t.shape(), (4, 5));
        assert!(t.data.iter().all(|&v| v == 0.0));
        let u = t.copy_pooled();
        t.recycle();
        u.recycle();
        // A fresh pooled tensor after recycling must still be zeroed.
        let z = Tensor::zeros_pooled(4, 5);
        assert!(z.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn norm_and_scale() {
        let mut a = Tensor::row(vec![3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        a.scale_assign(2.0);
        assert_eq!(a.data, vec![6.0, 8.0]);
        a.zero();
        assert_eq!(a.data, vec![0.0, 0.0]);
    }
}
