//! Fast branch-free `tanh`/`σ` for the activation hot path.
//!
//! The LSTM gate activations call `σ`/`tanh` tens of thousands of times
//! per example (4·hidden per layer-step); libm's `tanhf`/`expf` are
//! correctly-rounded but cost tens of nanoseconds each and dominate the
//! training profile. This module uses the classic clamped odd-rational
//! approximation (the same shape Eigen/XNNPACK ship for ML inference):
//! clamp to the f32 saturation range, then `tanh(x) ≈ x·P(x²)/Q(x²)`
//! with small even polynomials. The body is straight-line FMA + one
//! divide — no branches, calls, or table loads — so LLVM vectorizes the
//! surrounding activation loops 8-wide instead of calling libm per
//! element. Relative error is ~1e-6, far below anything training or
//! ranking can observe (gradients use the stored outputs, so backward
//! is exactly consistent with forward).
//!
//! Scope: **encoder activations only** (the tape's `sigmoid`/`tanh` ops
//! and the fused LSTM cell). The softmax/cross-entropy path keeps libm
//! `exp` — loss numerics stay put, and it runs once per example, not per
//! timestep. Both the per-example and batched paths share these
//! functions, so batched inference remains bit-identical to per-example
//! inference.

/// `tanh(x)` to ~1e-6 absolute error, exactly bounded in `[-1, 1]`.
///
/// The rational body lives in `sqlan-simd` so the slice maps below can
/// compile it per dispatch tier; the per-element arithmetic is identical
/// on every tier.
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    sqlan_simd::tanh_f32(x)
}

/// Logistic sigmoid via the tanh identity `σ(x) = ½·(tanh(x/2) + 1)`;
/// bounded in `[0, 1]`.
#[inline]
pub fn fast_sigmoid(x: f32) -> f32 {
    sqlan_simd::sigmoid_f32(x)
}

/// `dst[i] = fast_tanh(src[i])`, runtime-dispatched (8-wide under AVX2,
/// bit-identical to mapping [`fast_tanh`] per element on any tier).
#[inline]
pub fn fast_tanh_map(src: &[f32], dst: &mut [f32]) {
    sqlan_simd::tanh_map(src, dst);
}

/// `dst[i] = fast_sigmoid(src[i])`, runtime-dispatched like
/// [`fast_tanh_map`].
#[inline]
pub fn fast_sigmoid_map(src: &[f32], dst: &mut [f32]) {
    sqlan_simd::sigmoid_map(src, dst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_tracks_libm_and_stays_bounded() {
        let mut worst = 0.0f32;
        let mut x = -25.0f32;
        while x < 25.0 {
            let got = fast_tanh(x);
            assert!((-1.0..=1.0).contains(&got), "tanh({x}) = {got}");
            worst = worst.max((got - x.tanh()).abs());
            x += 0.0191;
        }
        assert!(worst < 2e-6, "worst abs err {worst}");
    }

    #[test]
    fn sigmoid_tracks_libm_and_stays_bounded() {
        let mut worst = 0.0f32;
        let mut x = -25.0f32;
        while x < 25.0 {
            let got = fast_sigmoid(x);
            assert!((0.0..=1.0).contains(&got), "sigmoid({x}) = {got}");
            let want = 1.0 / (1.0 + (-x).exp());
            worst = worst.max((got - want).abs());
            x += 0.0191;
        }
        assert!(worst < 1e-6, "worst abs err {worst}");
    }

    #[test]
    fn saturation_and_symmetry() {
        assert_eq!(fast_tanh(0.0), 0.0);
        assert_eq!(fast_tanh(100.0), -fast_tanh(-100.0));
        assert!((fast_tanh(100.0) - 1.0).abs() < 1e-6);
        assert!(fast_sigmoid(-100.0) < 1e-6);
        assert!((fast_sigmoid(100.0) - 1.0).abs() < 1e-6);
    }
}
