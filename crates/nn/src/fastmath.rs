//! Fast branch-free `tanh`/`σ` for the activation hot path.
//!
//! The LSTM gate activations call `σ`/`tanh` tens of thousands of times
//! per example (4·hidden per layer-step); libm's `tanhf`/`expf` are
//! correctly-rounded but cost tens of nanoseconds each and dominate the
//! training profile. This module uses the classic clamped odd-rational
//! approximation (the same shape Eigen/XNNPACK ship for ML inference):
//! clamp to the f32 saturation range, then `tanh(x) ≈ x·P(x²)/Q(x²)`
//! with small even polynomials. The body is straight-line FMA + one
//! divide — no branches, calls, or table loads — so LLVM vectorizes the
//! surrounding activation loops 8-wide instead of calling libm per
//! element. Relative error is ~1e-6, far below anything training or
//! ranking can observe (gradients use the stored outputs, so backward
//! is exactly consistent with forward).
//!
//! Scope: **encoder activations only** (the tape's `sigmoid`/`tanh` ops
//! and the fused LSTM cell). The softmax/cross-entropy path keeps libm
//! `exp` — loss numerics stay put, and it runs once per example, not per
//! timestep. Both the per-example and batched paths share these
//! functions, so batched inference remains bit-identical to per-example
//! inference.

/// `tanh(x)` to ~1e-6 absolute error, exactly bounded in `[-1, 1]`.
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    // Beyond ±7.90531 f32 tanh is 1.0 to the last ulp; clamping first
    // keeps the rational in its fitted range and saturates smoothly.
    let x = x.clamp(-7.905_31, 7.905_31);
    let x2 = x * x;
    // Odd rational x·P(x²)/Q(x²), minimax-fitted on the clamped range.
    let p = x
        * (4.893_525e-3
            + x2 * (6.372_619e-4
                + x2 * (1.485_722_4e-5
                    + x2 * (5.122_297e-8
                        + x2 * (-8.604_672e-11 + x2 * (2.000_188e-13 + x2 * -2.760_768_4e-16))))));
    let q = 4.893_526e-3 + x2 * (2.268_434_6e-3 + x2 * (1.185_347_1e-4 + x2 * 1.198_258_4e-6));
    p / q
}

/// Logistic sigmoid via the tanh identity `σ(x) = ½·(tanh(x/2) + 1)`;
/// bounded in `[0, 1]`.
#[inline]
pub fn fast_sigmoid(x: f32) -> f32 {
    0.5 * fast_tanh(0.5 * x) + 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_tracks_libm_and_stays_bounded() {
        let mut worst = 0.0f32;
        let mut x = -25.0f32;
        while x < 25.0 {
            let got = fast_tanh(x);
            assert!((-1.0..=1.0).contains(&got), "tanh({x}) = {got}");
            worst = worst.max((got - x.tanh()).abs());
            x += 0.0191;
        }
        assert!(worst < 2e-6, "worst abs err {worst}");
    }

    #[test]
    fn sigmoid_tracks_libm_and_stays_bounded() {
        let mut worst = 0.0f32;
        let mut x = -25.0f32;
        while x < 25.0 {
            let got = fast_sigmoid(x);
            assert!((0.0..=1.0).contains(&got), "sigmoid({x}) = {got}");
            let want = 1.0 / (1.0 + (-x).exp());
            worst = worst.max((got - want).abs());
            x += 0.0191;
        }
        assert!(worst < 1e-6, "worst abs err {worst}");
    }

    #[test]
    fn saturation_and_symmetry() {
        assert_eq!(fast_tanh(0.0), 0.0);
        assert_eq!(fast_tanh(100.0), -fast_tanh(-100.0));
        assert!((fast_tanh(100.0) - 1.0).abs() < 1e-6);
        assert!(fast_sigmoid(-100.0) < 1e-6);
        assert!((fast_sigmoid(100.0) - 1.0).abs() < 1e-6);
    }
}
