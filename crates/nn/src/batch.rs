//! Minibatch tiling: length-bucketed, deterministically planned.
//!
//! Batched tapes want two things in tension: **full tiles** (a tile of
//! B examples amortizes tape, parameter-clone, and gradient-buffer
//! overhead B×) and **similar lengths within a tile** (the LSTM twin
//! pads every example to the tile's max length; masked steps are wasted
//! compute). [`plan_tiles`] gets both by sorting example indices by
//! length and chunking the sorted order into tiles of `max_tile`: every
//! tile except the last is full, and each tile spans the narrowest
//! possible length range — the length *buckets* are the sorted runs
//! themselves.
//!
//! The plan is a pure function of the lengths (ties break by index), so
//! the tile list — and therefore every merge that walks it — is
//! identical at any thread count. That is the scheduling half of the
//! training determinism contract; the numeric half is that gradients
//! accumulate across a tile's rows in example order inside the batched
//! kernels, and per-tile gradient buffers merge in tile order.

/// One planned tile: example indices (sorted by ascending length, ties
/// by index) plus the length every sequence pads to inside the tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    /// Indices into the caller's example list.
    pub indices: Vec<usize>,
    /// Max true length in the tile — the padded length for the LSTM
    /// twin; the CNN twin packs exactly and ignores it.
    pub padded_len: usize,
}

/// Plan length-bucketed tiles of at most `max_tile` examples over
/// `lens`. Empty input → empty plan. Tiles are ordered by ascending
/// length; every tile but the last is exactly `max_tile` examples.
pub fn plan_tiles(lens: &[usize], max_tile: usize) -> Vec<Tile> {
    let max_tile = max_tile.max(1);
    if lens.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..lens.len()).collect();
    order.sort_by_key(|&i| (lens[i], i));
    order
        .chunks(max_tile)
        .map(|chunk| Tile {
            padded_len: chunk.iter().map(|&i| lens[i]).max().expect("non-empty"),
            indices: chunk.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_empty_plan() {
        assert!(plan_tiles(&[], 8).is_empty());
    }

    #[test]
    fn covers_every_index_exactly_once_with_full_tiles() {
        let lens: Vec<usize> = (0..57).map(|i| (i * 13) % 90 + 1).collect();
        let tiles = plan_tiles(&lens, 8);
        let mut seen = vec![false; lens.len()];
        for (ti, t) in tiles.iter().enumerate() {
            // Every tile but the last is full.
            if ti + 1 < tiles.len() {
                assert_eq!(t.indices.len(), 8);
            }
            assert!(!t.indices.is_empty());
            for &i in &t.indices {
                assert!(!seen[i], "index {i} twice");
                seen[i] = true;
                assert!(lens[i] <= t.padded_len);
            }
            assert_eq!(
                t.padded_len,
                t.indices.iter().map(|&i| lens[i]).max().unwrap()
            );
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tiles_group_sorted_length_runs() {
        // 16 examples, lengths interleaved; sorted chunking puts the 8
        // shortest in tile 0 and the 8 longest in tile 1.
        let lens: Vec<usize> = (0..16)
            .map(|i| if i % 2 == 0 { 10 + i } else { 100 + i })
            .collect();
        let tiles = plan_tiles(&lens, 8);
        assert_eq!(tiles.len(), 2);
        assert!(tiles[0].indices.iter().all(|&i| i % 2 == 0));
        assert!(tiles[1].indices.iter().all(|&i| i % 2 == 1));
        assert!(tiles[0].padded_len < tiles[1].padded_len);
    }

    #[test]
    fn padding_waste_is_small_on_smooth_length_mixes() {
        let lens: Vec<usize> = (1..200).collect();
        for t in plan_tiles(&lens, 8) {
            for &i in &t.indices {
                // Consecutive sorted lengths: spread within a tile of 8
                // is at most 7 here.
                assert!(t.padded_len - lens[i] < 8);
            }
        }
    }

    #[test]
    fn deterministic_and_tie_stable() {
        let lens = vec![10usize; 20];
        let a = plan_tiles(&lens, 8);
        assert_eq!(
            a.iter().map(|t| t.indices.len()).collect::<Vec<_>>(),
            [8, 8, 4]
        );
        // Ties break by index, so equal-length tiles are index runs.
        assert_eq!(a[0].indices, (0..8).collect::<Vec<_>>());
        assert_eq!(a, plan_tiles(&lens, 8));
    }
}
