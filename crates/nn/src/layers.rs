//! Reusable layers built on the autograd tape: Linear, Embedding, the
//! multi-width convolution bank of the paper's shallow CNN (§5.3), and the
//! LSTM stack of §5.2 / Appendix A.2.
//!
//! Every layer is batch-capable. [`Linear::forward`] is shape-generic
//! (one `(B,K)·(K,N)` matmul covers a whole minibatch); the sequence
//! encoders have explicit batch twins — [`Conv1dBank::forward_packed`]
//! over per-example segments of a packed embedding, and
//! [`LstmStack::forward_batch`] over a length-bucketed padded batch with
//! per-row masks. The twins run the exact same per-row kernels as the
//! per-example paths, so batched inference is bit-identical to running
//! examples one at a time.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, Var};
use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

/// Fully connected layer: `x @ W + b`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Linear {
        Linear {
            w: params.add_xavier(format!("{name}.w"), in_dim, out_dim, rng),
            b: params.add_zeros(format!("{name}.b"), 1, out_dim),
            in_dim,
            out_dim,
        }
    }

    /// `x @ W + b`. Batch twin for free: `x` may be `(B, in_dim)` — the
    /// matmul kernel's per-row contract makes each output row identical
    /// to the row's solo forward.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let w = g.param(self.w);
        let b = g.param(self.b);
        let xw = g.matmul(x, w);
        g.add_row(xw, b)
    }
}

/// Token embedding table.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Embedding {
    pub table: ParamId,
    pub vocab: usize,
    pub dim: usize,
}

impl Embedding {
    pub fn new(
        params: &mut Params,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Embedding {
        // Slightly tighter init than Xavier for lookup tables.
        let bound = (3.0 / dim as f64).sqrt() as f32;
        let data = (0..vocab * dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Embedding {
            table: params.add(format!("{name}.emb"), Tensor::from_vec(vocab, dim, data)),
            vocab,
            dim,
        }
    }

    /// Embed a token sequence → (seq, dim).
    pub fn forward(&self, g: &mut Graph<'_>, tokens: &[u32]) -> Var {
        g.embed(self.table, tokens)
    }
}

/// The paper's shallow-CNN feature extractor: parallel 1-D convolutions
/// with kernel widths {3,4,5}, ReLU, max-over-time pooling, concatenated
/// into a fixed-size vector of `kernels_per_width × widths.len()`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1dBank {
    pub widths: Vec<usize>,
    pub kernels_per_width: usize,
    weights: Vec<ParamId>,
    biases: Vec<ParamId>,
}

impl Conv1dBank {
    pub fn new(
        params: &mut Params,
        name: &str,
        widths: &[usize],
        kernels_per_width: usize,
        embed_dim: usize,
        rng: &mut StdRng,
    ) -> Conv1dBank {
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for &w in widths {
            weights.push(params.add_xavier(
                format!("{name}.conv{w}.w"),
                kernels_per_width,
                w * embed_dim,
                rng,
            ));
            biases.push(params.add_zeros(format!("{name}.conv{w}.b"), 1, kernels_per_width));
        }
        Conv1dBank {
            widths: widths.to_vec(),
            kernels_per_width,
            weights,
            biases,
        }
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.widths.len() * self.kernels_per_width
    }

    /// Apply to an embedded sequence (seq, d). The caller must pad the
    /// sequence to at least `max(widths)` tokens.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let seq = g.value(x).rows;
        self.forward_packed(g, x, &[(0, seq)])
    }

    /// The pre-batching forward, one example at a time with the seed's
    /// scalar convolution kernel (same bits, see
    /// [`Graph::conv1d_seed_kernel`]). Benchmark baseline only.
    pub fn forward_legacy(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let mut pooled = Vec::with_capacity(self.widths.len());
        for (i, &w) in self.widths.iter().enumerate() {
            let weight = g.param(self.weights[i]);
            let bias = g.param(self.biases[i]);
            let conv = g.conv1d_seed_kernel(x, weight, bias, w);
            let act = g.relu(conv);
            pooled.push(g.max_over_time(act));
        }
        g.concat_cols(&pooled)
    }

    /// Batch twin: apply to a packed embedding (Σseqᵢ, d) whose
    /// per-example spans are `segs`, producing one pooled feature row
    /// per example — (B, out_dim). Every sequence must be at least
    /// `max(widths)` tokens (the encoder pads on encode). Convolution,
    /// ReLU, and max-over-time all run per segment with the per-example
    /// kernels, so row i is bit-identical to `forward` on example i.
    pub fn forward_packed(&self, g: &mut Graph<'_>, x: Var, segs: &[(usize, usize)]) -> Var {
        let mut pooled = Vec::with_capacity(self.widths.len());
        for (i, &w) in self.widths.iter().enumerate() {
            let weight = g.param(self.weights[i]);
            let bias = g.param(self.biases[i]);
            let conv = g.conv1d_packed(x, weight, bias, w, segs.to_vec());
            let act = g.relu(conv);
            // Output segments shrink by w−1 rows each.
            let mut out_segs = Vec::with_capacity(segs.len());
            let mut off = 0usize;
            for &(_, len) in segs {
                let out_len = len - w + 1;
                out_segs.push((off, out_len));
                off += out_len;
            }
            pooled.push(g.max_over_segs(act, out_segs));
        }
        g.concat_cols(&pooled)
    }
}

/// One LSTM layer (Appendix A.2): the four gates packed into single
/// `(in, 4k)` / `(k, 4k)` matrices, gate order `[c̃, u, f, o]`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LstmLayer {
    pub wx: ParamId,
    pub wh: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub hidden: usize,
}

impl LstmLayer {
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut StdRng,
    ) -> LstmLayer {
        let b = {
            // Forget-gate bias starts at 1.0 (standard trick for gradient
            // flow through early training).
            let mut data = vec![0.0f32; 4 * hidden];
            for v in data.iter_mut().skip(2 * hidden).take(hidden) {
                *v = 1.0;
            }
            params.add(format!("{name}.b"), Tensor::from_vec(1, 4 * hidden, data))
        };
        LstmLayer {
            wx: params.add_xavier(format!("{name}.wx"), in_dim, 4 * hidden, rng),
            wh: params.add_xavier(format!("{name}.wh"), hidden, 4 * hidden, rng),
            b,
            in_dim,
            hidden,
        }
    }

    /// Push this layer's parameters onto the tape once, so a sequence
    /// loop doesn't re-clone `wx`/`wh`/`b` at every timestep.
    pub fn param_vars(&self, g: &mut Graph<'_>) -> LstmParamVars {
        LstmParamVars {
            wx: g.param(self.wx),
            wh: g.param(self.wh),
            b: g.param(self.b),
        }
    }

    /// One timestep on the fused-cell state: previous hidden state `h`
    /// (B, k), previous cell state inside `hc` (B, 7k; see
    /// [`Graph::lstm_cell`]), input rows `x` (B, in_dim) → next fused
    /// state (B, 7k). Two tape nodes per step instead of the sixteen an
    /// op-by-op cell costs.
    pub fn step(&self, g: &mut Graph<'_>, x: Var, h: Var, hc: Var, pv: &LstmParamVars) -> Var {
        let gates = g.lstm_gates(x, h, pv.wx, pv.wh, pv.b);
        g.lstm_cell(gates, hc, self.hidden)
    }
}

/// One LSTM layer's parameters pushed onto a tape (see
/// [`LstmLayer::param_vars`]).
#[derive(Debug, Clone, Copy)]
pub struct LstmParamVars {
    wx: Var,
    wh: Var,
    b: Var,
}

/// A stack of LSTM layers (the paper uses three); the last layer's final
/// hidden state is the sequence representation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmStack {
    pub layers: Vec<LstmLayer>,
}

impl LstmStack {
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        hidden: usize,
        depth: usize,
        rng: &mut StdRng,
    ) -> LstmStack {
        let mut layers = Vec::with_capacity(depth);
        for l in 0..depth {
            let d_in = if l == 0 { in_dim } else { hidden };
            layers.push(LstmLayer::new(
                params,
                &format!("{name}.l{l}"),
                d_in,
                hidden,
                rng,
            ));
        }
        LstmStack { layers }
    }

    /// Run the full stack over an embedded sequence (seq, d); returns the
    /// top layer's final hidden state (1, hidden). This *is* the batch
    /// twin at B = 1 — one code path, so per-example and batched
    /// execution cannot drift.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let seq = g.value(x).rows;
        self.forward_batch(g, x, &[seq], seq)
    }

    /// The pre-batching forward: one timestep at a time with the
    /// op-by-op cell (matmul/add/add_row/slice/tanh/sigmoid/mul — 16
    /// tape nodes per layer-step), libm activations, and parameters
    /// re-pushed at every step, exactly as this crate shipped before
    /// the fused gate/cell ops. Benchmark baseline only
    /// (`SQLAN_NN_TRAIN=per_example`).
    pub fn forward_legacy(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let seq = g.value(x).rows;
        let hidden = self.layers[0].hidden;
        let mut hs: Vec<Var> = Vec::with_capacity(self.layers.len());
        let mut cs: Vec<Var> = Vec::with_capacity(self.layers.len());
        for _ in &self.layers {
            hs.push(g.input(Tensor::zeros(1, hidden)));
            cs.push(g.input(Tensor::zeros(1, hidden)));
        }
        for t in 0..seq {
            let mut inp = g.select_row(x, t);
            for (l, layer) in self.layers.iter().enumerate() {
                let k = layer.hidden;
                let wx = g.param(layer.wx);
                let wh = g.param(layer.wh);
                let b = g.param(layer.b);
                let xw = g.matmul(inp, wx);
                let hw = g.matmul(hs[l], wh);
                let sum = g.add(xw, hw);
                let gates = g.add_row(sum, b);
                let c_tilde_lin = g.slice_cols(gates, 0, k);
                let u_lin = g.slice_cols(gates, k, 2 * k);
                let f_lin = g.slice_cols(gates, 2 * k, 3 * k);
                let o_lin = g.slice_cols(gates, 3 * k, 4 * k);
                let c_tilde = g.tanh_seed_kernel(c_tilde_lin);
                let u = g.sigmoid_seed_kernel(u_lin);
                let f = g.sigmoid_seed_kernel(f_lin);
                let o = g.sigmoid_seed_kernel(o_lin);
                let uc = g.mul(u, c_tilde);
                let fc = g.mul(f, cs[l]);
                let c_next = g.add(uc, fc);
                let c_act = g.tanh_seed_kernel(c_next);
                let h_next = g.mul(o, c_act);
                hs[l] = h_next;
                cs[l] = c_next;
                inp = h_next;
            }
        }
        hs[self.layers.len() - 1]
    }

    /// Batch twin: run the stack over a length-bucketed padded batch.
    ///
    /// `x` is the packed padded embedding — `B · padded_len` rows, row
    /// `i · padded_len + t` holding example i's token t (PAD beyond the
    /// true length) — and `lens` the true lengths (each ≥ 1 and ≤
    /// `padded_len`). Each timestep gathers the batch's token rows and
    /// steps every layer on `(B, ·)` state through the fused gate/cell
    /// ops; finished rows freeze with a masked select, keeping their
    /// exact previous bits, so the final state row of every example is
    /// bit-identical to running that example alone. Returns the top
    /// layer's final hidden state, (B, hidden).
    pub fn forward_batch(
        &self,
        g: &mut Graph<'_>,
        x: Var,
        lens: &[usize],
        padded_len: usize,
    ) -> Var {
        let bsz = lens.len();
        assert!(bsz > 0, "forward_batch: empty batch");
        assert_eq!(
            g.value(x).rows,
            bsz * padded_len,
            "forward_batch: packed row count"
        );
        assert!(
            lens.iter().all(|&l| l >= 1 && l <= padded_len),
            "forward_batch: lengths must be in 1..=padded_len"
        );
        let hidden = self.layers[0].hidden;
        let pvs: Vec<LstmParamVars> = self.layers.iter().map(|l| l.param_vars(g)).collect();
        // Per-layer fused state [h|c|stash] plus the h view consumed by
        // the gates matmul and the next layer.
        let mut hcs: Vec<Var> = Vec::with_capacity(self.layers.len());
        let mut hs: Vec<Var> = Vec::with_capacity(self.layers.len());
        for _ in &self.layers {
            hcs.push(g.input(Tensor::zeros_pooled(bsz, 7 * hidden)));
            hs.push(g.input(Tensor::zeros_pooled(bsz, hidden)));
        }
        for t in 0..padded_len {
            let keep: Vec<bool> = lens.iter().map(|&l| t < l).collect();
            let all_active = keep.iter().all(|&k| k);
            let idx: Vec<usize> = (0..bsz).map(|i| i * padded_len + t).collect();
            let mut inp = g.gather_rows(x, idx);
            for (l, layer) in self.layers.iter().enumerate() {
                let hc_new = layer.step(g, inp, hs[l], hcs[l], &pvs[l]);
                hcs[l] = if all_active {
                    hc_new
                } else {
                    // Finished rows keep their frozen state (and the
                    // padded step's would-be update gets no gradient).
                    g.select_rows_where(keep.clone(), hc_new, hcs[l])
                };
                hs[l] = g.slice_cols(hcs[l], 0, hidden);
                inp = hs[l];
            }
        }
        hs[self.layers.len() - 1]
    }
}

/// Draw a dropout mask of `n` elements with keep-probability `keep`.
pub fn dropout_mask(n: usize, keep: f32, rng: &mut StdRng) -> Vec<bool> {
    (0..n).map(|_| rng.gen_bool(keep as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_shapes() {
        let mut r = rng();
        let mut params = Params::new();
        let lin = Linear::new(&mut params, "fc", 4, 3, &mut r);
        let mut g = Graph::new(&params);
        let x = g.input(Tensor::row(vec![1.0; 4]));
        let y = lin.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (1, 3));
    }

    #[test]
    fn embedding_shapes_and_clamping() {
        let mut r = rng();
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 10, 6, &mut r);
        let mut g = Graph::new(&params);
        let x = emb.forward(&mut g, &[0, 5, 9, 99]); // 99 clamps to last row
        assert_eq!(g.value(x).shape(), (4, 6));
        assert_eq!(g.value(x).row_slice(2), g.value(x).row_slice(3));
    }

    #[test]
    fn conv_bank_output_is_fixed_size_regardless_of_seq_len() {
        let mut r = rng();
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 10, 8, &mut r);
        let bank = Conv1dBank::new(&mut params, "cnn", &[3, 4, 5], 16, 8, &mut r);
        for seq_len in [5usize, 12, 80] {
            let mut g = Graph::new(&params);
            let tokens: Vec<u32> = (0..seq_len as u32).map(|i| i % 10).collect();
            let x = emb.forward(&mut g, &tokens);
            let y = bank.forward(&mut g, x);
            assert_eq!(g.value(y).shape(), (1, 48));
        }
    }

    #[test]
    fn lstm_stack_final_state_shape() {
        let mut r = rng();
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 20, 8, &mut r);
        let stack = LstmStack::new(&mut params, "lstm", 8, 12, 3, &mut r);
        let mut g = Graph::new(&params);
        let x = emb.forward(&mut g, &[1, 2, 3, 4, 5, 6]);
        let h = stack.forward(&mut g, x);
        assert_eq!(g.value(h).shape(), (1, 12));
        // Values bounded by tanh ∘ sigmoid composition.
        assert!(g.value(h).data.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_is_sensitive_to_token_order() {
        let mut r = rng();
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 20, 8, &mut r);
        let stack = LstmStack::new(&mut params, "lstm", 8, 12, 2, &mut r);
        let run = |tokens: &[u32], params: &Params| -> Vec<f32> {
            let mut g = Graph::new(params);
            let x = emb.forward(&mut g, tokens);
            let h = stack.forward(&mut g, x);
            g.value(h).data.clone()
        };
        let a = run(&[1, 2, 3, 4], &params);
        let b = run(&[4, 3, 2, 1], &params);
        assert_ne!(a, b);
    }

    #[test]
    fn cnn_pooling_is_shift_insensitive_for_contained_patterns() {
        // Max-over-time pooling should produce similar features when the
        // same n-gram appears at different positions (padding elsewhere).
        let mut r = rng();
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 10, 4, &mut r);
        let bank = Conv1dBank::new(&mut params, "cnn", &[3], 8, 4, &mut r);
        let run = |tokens: &[u32], params: &Params| -> Vec<f32> {
            let mut g = Graph::new(params);
            let x = emb.forward(&mut g, tokens);
            let y = bank.forward(&mut g, x);
            g.value(y).data.clone()
        };
        // The pattern window [7,8,9] appears in both padded runs, so each
        // pooled max dominates the activation of the pattern alone — no
        // matter where the pattern sits.
        let pat = run(&[7, 8, 9], &params);
        let a = run(&[7, 8, 9, 0, 0, 0], &params);
        let b = run(&[0, 0, 0, 7, 8, 9], &params);
        for k in 0..pat.len() {
            assert!(a[k] >= pat[k] - 1e-5, "a[{k}]={} < pat={}", a[k], pat[k]);
            assert!(b[k] >= pat[k] - 1e-5, "b[{k}]={} < pat={}", b[k], pat[k]);
        }
    }

    #[test]
    fn legacy_cnn_forward_is_bit_identical_to_current() {
        // The benchmark baseline must measure the old loop shape, not
        // different numerics: same bits, slower kernel.
        let mut r = rng();
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 10, 8, &mut r);
        let bank = Conv1dBank::new(&mut params, "cnn", &[3, 4, 5], 16, 8, &mut r);
        let tokens: Vec<u32> = (0..40u32).map(|i| i % 10).collect();
        let mut g = Graph::new(&params);
        let x = emb.forward(&mut g, &tokens);
        let now = bank.forward(&mut g, x);
        let legacy = bank.forward_legacy(&mut g, x);
        let now_bits: Vec<u32> = g.value(now).data.iter().map(|f| f.to_bits()).collect();
        let legacy_bits: Vec<u32> = g.value(legacy).data.iter().map(|f| f.to_bits()).collect();
        assert_eq!(now_bits, legacy_bits);
    }

    #[test]
    fn legacy_lstm_forward_matches_current_closely() {
        // The fused cell changed the gate-sum association (bias-first)
        // and the activation implementation, so legacy is not bitwise —
        // but it must still be the same function numerically.
        let mut r = rng();
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 20, 8, &mut r);
        let stack = LstmStack::new(&mut params, "lstm", 8, 12, 2, &mut r);
        let mut g = Graph::new(&params);
        let x = emb.forward(&mut g, &[1, 5, 3, 7, 2, 9]);
        let now_var = stack.forward(&mut g, x);
        let now = g.value(now_var).clone();
        let x2 = emb.forward(&mut g, &[1, 5, 3, 7, 2, 9]);
        let legacy_var = stack.forward_legacy(&mut g, x2);
        let legacy = g.value(legacy_var).clone();
        assert_eq!(now.shape(), legacy.shape());
        for (a, b) in now.data.iter().zip(&legacy.data) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn dropout_mask_respects_keep_probability() {
        let mut r = rng();
        let mask = dropout_mask(10_000, 0.8, &mut r);
        let kept = mask.iter().filter(|&&m| m).count();
        assert!((kept as f64 / 10_000.0 - 0.8).abs() < 0.02);
    }
}
