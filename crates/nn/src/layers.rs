//! Reusable layers built on the autograd tape: Linear, Embedding, the
//! multi-width convolution bank of the paper's shallow CNN (§5.3), and the
//! LSTM stack of §5.2 / Appendix A.2.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, Var};
use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

/// Fully connected layer: `x @ W + b`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Linear {
        Linear {
            w: params.add_xavier(format!("{name}.w"), in_dim, out_dim, rng),
            b: params.add_zeros(format!("{name}.b"), 1, out_dim),
            in_dim,
            out_dim,
        }
    }

    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let w = g.param(self.w);
        let b = g.param(self.b);
        let xw = g.matmul(x, w);
        g.add_row(xw, b)
    }
}

/// Token embedding table.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Embedding {
    pub table: ParamId,
    pub vocab: usize,
    pub dim: usize,
}

impl Embedding {
    pub fn new(
        params: &mut Params,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Embedding {
        // Slightly tighter init than Xavier for lookup tables.
        let bound = (3.0 / dim as f64).sqrt() as f32;
        let data = (0..vocab * dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Embedding {
            table: params.add(format!("{name}.emb"), Tensor::from_vec(vocab, dim, data)),
            vocab,
            dim,
        }
    }

    /// Embed a token sequence → (seq, dim).
    pub fn forward(&self, g: &mut Graph<'_>, tokens: &[u32]) -> Var {
        g.embed(self.table, tokens)
    }
}

/// The paper's shallow-CNN feature extractor: parallel 1-D convolutions
/// with kernel widths {3,4,5}, ReLU, max-over-time pooling, concatenated
/// into a fixed-size vector of `kernels_per_width × widths.len()`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1dBank {
    pub widths: Vec<usize>,
    pub kernels_per_width: usize,
    weights: Vec<ParamId>,
    biases: Vec<ParamId>,
}

impl Conv1dBank {
    pub fn new(
        params: &mut Params,
        name: &str,
        widths: &[usize],
        kernels_per_width: usize,
        embed_dim: usize,
        rng: &mut StdRng,
    ) -> Conv1dBank {
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for &w in widths {
            weights.push(params.add_xavier(
                format!("{name}.conv{w}.w"),
                kernels_per_width,
                w * embed_dim,
                rng,
            ));
            biases.push(params.add_zeros(format!("{name}.conv{w}.b"), 1, kernels_per_width));
        }
        Conv1dBank {
            widths: widths.to_vec(),
            kernels_per_width,
            weights,
            biases,
        }
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.widths.len() * self.kernels_per_width
    }

    /// Apply to an embedded sequence (seq, d). The caller must pad the
    /// sequence to at least `max(widths)` tokens.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let mut pooled = Vec::with_capacity(self.widths.len());
        for (i, &w) in self.widths.iter().enumerate() {
            let weight = g.param(self.weights[i]);
            let bias = g.param(self.biases[i]);
            let conv = g.conv1d(x, weight, bias, w);
            let act = g.relu(conv);
            pooled.push(g.max_over_time(act));
        }
        g.concat_cols(&pooled)
    }
}

/// One LSTM layer (Appendix A.2): the four gates packed into single
/// `(in, 4k)` / `(k, 4k)` matrices, gate order `[c̃, u, f, o]`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LstmLayer {
    pub wx: ParamId,
    pub wh: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub hidden: usize,
}

impl LstmLayer {
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut StdRng,
    ) -> LstmLayer {
        let b = {
            // Forget-gate bias starts at 1.0 (standard trick for gradient
            // flow through early training).
            let mut data = vec![0.0f32; 4 * hidden];
            for v in data.iter_mut().skip(2 * hidden).take(hidden) {
                *v = 1.0;
            }
            params.add(format!("{name}.b"), Tensor::from_vec(1, 4 * hidden, data))
        };
        LstmLayer {
            wx: params.add_xavier(format!("{name}.wx"), in_dim, 4 * hidden, rng),
            wh: params.add_xavier(format!("{name}.wh"), hidden, 4 * hidden, rng),
            b,
            in_dim,
            hidden,
        }
    }

    /// One timestep: `(x_t, h_{t-1}, c_{t-1}) → (h_t, c_t)`.
    pub fn step(&self, g: &mut Graph<'_>, x: Var, h: Var, c: Var) -> (Var, Var) {
        let k = self.hidden;
        let wx = g.param(self.wx);
        let wh = g.param(self.wh);
        let b = g.param(self.b);
        let xw = g.matmul(x, wx);
        let hw = g.matmul(h, wh);
        let sum = g.add(xw, hw);
        let gates = g.add_row(sum, b);
        let c_tilde_lin = g.slice_cols(gates, 0, k);
        let u_lin = g.slice_cols(gates, k, 2 * k);
        let f_lin = g.slice_cols(gates, 2 * k, 3 * k);
        let o_lin = g.slice_cols(gates, 3 * k, 4 * k);
        let c_tilde = g.tanh(c_tilde_lin);
        let u = g.sigmoid(u_lin);
        let f = g.sigmoid(f_lin);
        let o = g.sigmoid(o_lin);
        let uc = g.mul(u, c_tilde);
        let fc = g.mul(f, c);
        let c_next = g.add(uc, fc);
        let c_act = g.tanh(c_next);
        let h_next = g.mul(o, c_act);
        (h_next, c_next)
    }
}

/// A stack of LSTM layers (the paper uses three); the last layer's final
/// hidden state is the sequence representation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmStack {
    pub layers: Vec<LstmLayer>,
}

impl LstmStack {
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        hidden: usize,
        depth: usize,
        rng: &mut StdRng,
    ) -> LstmStack {
        let mut layers = Vec::with_capacity(depth);
        for l in 0..depth {
            let d_in = if l == 0 { in_dim } else { hidden };
            layers.push(LstmLayer::new(
                params,
                &format!("{name}.l{l}"),
                d_in,
                hidden,
                rng,
            ));
        }
        LstmStack { layers }
    }

    /// Run the full stack over an embedded sequence (seq, d); returns the
    /// top layer's final hidden state (1, hidden).
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let seq = g.value(x).rows;
        let hidden = self.layers[0].hidden;
        // Per-layer state.
        let mut hs: Vec<Var> = Vec::with_capacity(self.layers.len());
        let mut cs: Vec<Var> = Vec::with_capacity(self.layers.len());
        for _ in &self.layers {
            hs.push(g.input(Tensor::zeros(1, hidden)));
            cs.push(g.input(Tensor::zeros(1, hidden)));
        }
        for t in 0..seq {
            let mut inp = g.select_row(x, t);
            for (l, layer) in self.layers.iter().enumerate() {
                let (h, c) = layer.step(g, inp, hs[l], cs[l]);
                hs[l] = h;
                cs[l] = c;
                inp = h;
            }
        }
        hs[self.layers.len() - 1]
    }
}

/// Draw a dropout mask of `n` elements with keep-probability `keep`.
pub fn dropout_mask(n: usize, keep: f32, rng: &mut StdRng) -> Vec<bool> {
    (0..n).map(|_| rng.gen_bool(keep as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_shapes() {
        let mut r = rng();
        let mut params = Params::new();
        let lin = Linear::new(&mut params, "fc", 4, 3, &mut r);
        let mut g = Graph::new(&params);
        let x = g.input(Tensor::row(vec![1.0; 4]));
        let y = lin.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (1, 3));
    }

    #[test]
    fn embedding_shapes_and_clamping() {
        let mut r = rng();
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 10, 6, &mut r);
        let mut g = Graph::new(&params);
        let x = emb.forward(&mut g, &[0, 5, 9, 99]); // 99 clamps to last row
        assert_eq!(g.value(x).shape(), (4, 6));
        assert_eq!(g.value(x).row_slice(2), g.value(x).row_slice(3));
    }

    #[test]
    fn conv_bank_output_is_fixed_size_regardless_of_seq_len() {
        let mut r = rng();
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 10, 8, &mut r);
        let bank = Conv1dBank::new(&mut params, "cnn", &[3, 4, 5], 16, 8, &mut r);
        for seq_len in [5usize, 12, 80] {
            let mut g = Graph::new(&params);
            let tokens: Vec<u32> = (0..seq_len as u32).map(|i| i % 10).collect();
            let x = emb.forward(&mut g, &tokens);
            let y = bank.forward(&mut g, x);
            assert_eq!(g.value(y).shape(), (1, 48));
        }
    }

    #[test]
    fn lstm_stack_final_state_shape() {
        let mut r = rng();
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 20, 8, &mut r);
        let stack = LstmStack::new(&mut params, "lstm", 8, 12, 3, &mut r);
        let mut g = Graph::new(&params);
        let x = emb.forward(&mut g, &[1, 2, 3, 4, 5, 6]);
        let h = stack.forward(&mut g, x);
        assert_eq!(g.value(h).shape(), (1, 12));
        // Values bounded by tanh ∘ sigmoid composition.
        assert!(g.value(h).data.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_is_sensitive_to_token_order() {
        let mut r = rng();
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 20, 8, &mut r);
        let stack = LstmStack::new(&mut params, "lstm", 8, 12, 2, &mut r);
        let run = |tokens: &[u32], params: &Params| -> Vec<f32> {
            let mut g = Graph::new(params);
            let x = emb.forward(&mut g, tokens);
            let h = stack.forward(&mut g, x);
            g.value(h).data.clone()
        };
        let a = run(&[1, 2, 3, 4], &params);
        let b = run(&[4, 3, 2, 1], &params);
        assert_ne!(a, b);
    }

    #[test]
    fn cnn_pooling_is_shift_insensitive_for_contained_patterns() {
        // Max-over-time pooling should produce similar features when the
        // same n-gram appears at different positions (padding elsewhere).
        let mut r = rng();
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 10, 4, &mut r);
        let bank = Conv1dBank::new(&mut params, "cnn", &[3], 8, 4, &mut r);
        let run = |tokens: &[u32], params: &Params| -> Vec<f32> {
            let mut g = Graph::new(params);
            let x = emb.forward(&mut g, tokens);
            let y = bank.forward(&mut g, x);
            g.value(y).data.clone()
        };
        // The pattern window [7,8,9] appears in both padded runs, so each
        // pooled max dominates the activation of the pattern alone — no
        // matter where the pattern sits.
        let pat = run(&[7, 8, 9], &params);
        let a = run(&[7, 8, 9, 0, 0, 0], &params);
        let b = run(&[0, 0, 0, 7, 8, 9], &params);
        for k in 0..pat.len() {
            assert!(a[k] >= pat[k] - 1e-5, "a[{k}]={} < pat={}", a[k], pat[k]);
            assert!(b[k] >= pat[k] - 1e-5, "b[{k}]={} < pat={}", b[k], pat[k]);
        }
    }

    #[test]
    fn dropout_mask_respects_keep_probability() {
        let mut r = rng();
        let mask = dropout_mask(10_000, 0.8, &mut r);
        let kept = mask.iter().filter(|&&m| m).count();
        assert!((kept as f64 / 10_000.0 - 0.8).abs() < 0.02);
    }
}
