//! Thread-local buffer arena for tensor storage.
//!
//! A training step builds a tape of hundreds-to-thousands of nodes, each
//! owning a freshly `malloc`ed `Vec<f32>`, then frees them all when the
//! graph drops — and does it again next step with the *same* shapes.
//! This module turns that churn into a free-list hit: buffers are
//! recycled into per-size-class bins when a [`crate::Graph`] drops (and
//! when backward temporaries die), and the pooled `Tensor` constructors
//! pop them back out. After the first step at a given model shape, a
//! step allocates O(1) fresh buffers.
//!
//! The arena is **thread-local** by design: no locks on the hot path,
//! and a buffer recycled on a thread simply seeds that thread's bins.
//! Under `sqlan_par` (whose workers are per-call scoped threads) the
//! arena persists across steps on the caller thread — the single-thread
//! hot path — and warms up per parallel call on workers.
//!
//! The arena also carries the tape-length hint: [`crate::Graph::new`]
//! sizes its node vector from the previous graph's node count on this
//! thread, so steady-state training never regrows the tape.

use std::cell::RefCell;

/// Buffers kept per size-class bin. Bins hold buffers of capacity
/// `[2^bin, 2^(bin+1))`; at the largest model shapes in this workspace
/// a bin entry is a few hundred KiB, so the cap bounds arena memory to
/// a few MiB per thread in practice.
const MAX_PER_BIN: usize = 64;

/// Size classes up to 2^31 floats; anything larger simply isn't pooled.
const BINS: usize = 32;

struct Arena {
    bins: Vec<Vec<Vec<f32>>>,
    tape_hint: usize,
    enabled: bool,
}

thread_local! {
    static ARENA: RefCell<Arena> = RefCell::new(Arena {
        bins: (0..BINS).map(|_| Vec::new()).collect(),
        tape_hint: 0,
        enabled: true,
    });
}

/// Run `f` with buffer pooling disabled on this thread: every tensor
/// allocation is a fresh `Vec` and recycling drops buffers — the
/// allocation behavior of the pre-arena engine. Exists so the
/// `per_example` training baseline (`SQLAN_NN_TRAIN=per_example`)
/// faithfully reproduces what this crate did before batched execution;
/// benchmarks compare against that, not against a half-upgraded hybrid.
pub fn without_buffer_pool<R>(f: impl FnOnce() -> R) -> R {
    let prev = ARENA.with(|a| {
        let mut a = a.borrow_mut();
        std::mem::replace(&mut a.enabled, false)
    });
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            ARENA.with(|a| a.borrow_mut().enabled = self.0);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Size class a request of `len` allocates from: smallest power of two
/// ≥ `len`. Every buffer in bin `c` has capacity ≥ 2^c ≥ `len`.
#[inline]
fn class_of_request(len: usize) -> usize {
    (usize::BITS - (len.max(1) - 1).leading_zeros()) as usize
}

/// Bin a buffer of capacity `cap` files back into: floor(log2(cap)),
/// which guarantees the bin's capacity floor.
#[inline]
fn class_of_capacity(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

/// A buffer with `len` zeroed elements (pooled when possible).
pub(crate) fn take_zeroed(len: usize) -> Vec<f32> {
    let mut v = take_empty(len);
    v.resize(len, 0.0);
    v
}

/// An empty buffer with capacity ≥ `cap` (pooled when possible).
pub(crate) fn take_empty(cap: usize) -> Vec<f32> {
    if cap == 0 {
        return Vec::new();
    }
    let class = class_of_request(cap);
    if class >= BINS {
        return Vec::with_capacity(cap);
    }
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        if !a.enabled {
            return Vec::with_capacity(cap);
        }
        match a.bins[class].pop() {
            Some(mut v) => {
                v.clear();
                v
            }
            // Round fresh allocations up to the class size so the
            // buffer files back into the same bin it was taken from.
            None => Vec::with_capacity(1usize << class),
        }
    })
}

/// Return a buffer to this thread's arena.
pub(crate) fn give(v: Vec<f32>) {
    let cap = v.capacity();
    if cap == 0 {
        return;
    }
    let class = class_of_capacity(cap);
    if class >= BINS {
        return;
    }
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        if !a.enabled {
            return;
        }
        let bin = &mut a.bins[class];
        if bin.len() < MAX_PER_BIN {
            bin.push(v);
        }
    });
}

/// Tape-capacity hint: the node count of the last graph dropped on this
/// thread (0 before any graph completed).
pub(crate) fn tape_hint() -> usize {
    ARENA.with(|a| a.borrow().tape_hint)
}

/// Record a completed graph's node count as the next capacity hint.
pub(crate) fn set_tape_hint(n: usize) {
    ARENA.with(|a| a.borrow_mut().tape_hint = n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffer_is_reused() {
        // Drain whatever earlier tests left, then round-trip one buffer.
        let v = take_zeroed(100);
        assert_eq!(v.len(), 100);
        assert!(v.iter().all(|&x| x == 0.0));
        let cap = v.capacity();
        assert!(cap >= 100);
        give(v);
        let w = take_zeroed(100);
        // Same size class → same (or another pooled) buffer; capacity
        // must come from the class floor either way.
        assert!(w.capacity() >= 100);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zero_len_requests_are_cheap() {
        let v = take_zeroed(0);
        assert!(v.is_empty());
        give(v);
    }

    #[test]
    fn classes_are_consistent() {
        for len in [1usize, 2, 3, 4, 5, 63, 64, 65, 1000, 4096] {
            let req = class_of_request(len);
            assert!((1usize << req) >= len, "len={len}");
            // A fresh allocation of the class size files back into a bin
            // whose floor covers future requests of the same len.
            let back = class_of_capacity(1usize << req);
            assert!(back >= req || (1usize << back) >= len, "len={len}");
        }
    }

    #[test]
    fn tape_hint_roundtrip() {
        set_tape_hint(1234);
        assert_eq!(tape_hint(), 1234);
        set_tape_hint(0);
    }
}
