//! Optimizers: SGD, Adam, and AdaMax (Kingma & Ba 2014). The paper tuned
//! both Adam and AdaMax and "found the latter performed better" (§5.2).

use crate::params::{Grads, Params};
use crate::tensor::Tensor;

/// A first-order optimizer over a [`Params`] store.
pub trait Optimizer {
    /// Apply one update from accumulated gradients.
    fn step(&mut self, params: &mut Params, grads: &Grads);

    /// Learning rate accessor (for schedules).
    fn lr(&self) -> f32;
    fn set_lr(&mut self, lr: f32);
}

/// Plain SGD with optional weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
    pub weight_decay: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Sgd {
        Sgd {
            lr,
            weight_decay: 0.0,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, grads: &Grads) {
        for id in params.iter_ids().collect::<Vec<_>>() {
            let g = grads.get(id).clone();
            let t = params.get_mut(id);
            for (w, gi) in t.data.iter_mut().zip(&g.data) {
                *w -= self.lr * (gi + self.weight_decay * *w);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Shared moment state for the Adam family.
#[derive(Debug, Clone)]
struct Moments {
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Moments {
    fn for_params(params: &Params) -> Moments {
        let m = params
            .iter_ids()
            .map(|id| {
                let t = params.get(id);
                Tensor::zeros(t.rows, t.cols)
            })
            .collect::<Vec<_>>();
        Moments {
            v: m.clone(),
            m,
            t: 0,
        }
    }
}

/// Adam (Kingma & Ba 2014, Algorithm 1).
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    state: Option<Moments>,
}

impl Adam {
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            state: None,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params, grads: &Grads) {
        let state = self
            .state
            .get_or_insert_with(|| Moments::for_params(params));
        state.t += 1;
        let bc1 = 1.0 - self.beta1.powi(state.t as i32);
        let bc2 = 1.0 - self.beta2.powi(state.t as i32);
        for id in params.iter_ids().collect::<Vec<_>>() {
            let g = grads.get(id);
            let m = &mut state.m[id.0];
            let v = &mut state.v[id.0];
            for k in 0..g.data.len() {
                let gi = g.data[k] + self.weight_decay * params.get(id).data[k];
                m.data[k] = self.beta1 * m.data[k] + (1.0 - self.beta1) * gi;
                v.data[k] = self.beta2 * v.data[k] + (1.0 - self.beta2) * gi * gi;
            }
            let t = params.get_mut(id);
            for k in 0..t.data.len() {
                let mhat = m.data[k] / bc1;
                let vhat = v.data[k] / bc2;
                t.data[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// AdaMax (Kingma & Ba 2014, §7.1): Adam with the L∞ norm in place of the
/// second moment — the optimizer the paper settled on.
#[derive(Debug, Clone)]
pub struct AdaMax {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    state: Option<Moments>,
}

impl AdaMax {
    pub fn new(lr: f32) -> AdaMax {
        AdaMax {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            state: None,
        }
    }
}

impl Optimizer for AdaMax {
    fn step(&mut self, params: &mut Params, grads: &Grads) {
        let state = self
            .state
            .get_or_insert_with(|| Moments::for_params(params));
        state.t += 1;
        let bc1 = 1.0 - self.beta1.powi(state.t as i32);
        for id in params.iter_ids().collect::<Vec<_>>() {
            let g = grads.get(id);
            let m = &mut state.m[id.0];
            let u = &mut state.v[id.0]; // reused as the infinity-norm track
            for k in 0..g.data.len() {
                let gi = g.data[k] + self.weight_decay * params.get(id).data[k];
                m.data[k] = self.beta1 * m.data[k] + (1.0 - self.beta1) * gi;
                u.data[k] = (self.beta2 * u.data[k]).max(gi.abs());
            }
            let t = params.get_mut(id);
            for k in 0..t.data.len() {
                t.data[k] -= self.lr / bc1 * m.data[k] / (u.data[k] + self.eps);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::tensor::Tensor;

    /// Minimize huber(w·x − y) and check each optimizer converges on a
    /// trivial 1-D regression.
    fn converges(mut opt: impl Optimizer) -> f32 {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(0.0));
        // Target: w = 2 (x = 1, y = 2).
        for _ in 0..400 {
            let mut grads = params.zero_grads();
            let mut g = Graph::new(&params);
            let wv = g.param(w);
            let loss = g.huber(wv, 2.0, 1.0);
            g.backward(loss, 1.0, &mut grads);
            // Graph implements Drop (arena recycling), so its borrow of
            // `params` must end before the mutable optimizer step.
            drop(g);
            opt.step(&mut params, &grads);
        }
        params.get(w).item()
    }

    #[test]
    fn sgd_converges() {
        let w = converges(Sgd::new(0.05));
        assert!((w - 2.0).abs() < 0.1, "sgd w={w}");
    }

    #[test]
    fn adam_converges() {
        let w = converges(Adam::new(0.05));
        assert!((w - 2.0).abs() < 0.1, "adam w={w}");
    }

    #[test]
    fn adamax_converges() {
        let w = converges(AdaMax::new(0.05));
        assert!((w - 2.0).abs() < 0.1, "adamax w={w}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(5.0));
        let grads = params.zero_grads(); // zero gradient
        let mut opt = Sgd {
            lr: 0.1,
            weight_decay: 0.5,
        };
        opt.step(&mut params, &grads);
        assert!(params.get(w).item() < 5.0);
    }

    #[test]
    fn lr_accessors() {
        let mut o = Adam::new(0.01);
        assert_eq!(o.lr(), 0.01);
        o.set_lr(0.005);
        assert_eq!(o.lr(), 0.005);
    }
}
