//! # sqlan-nn
//!
//! A compact neural-network substrate for the `sqlan` reproduction of
//! *"Facilitating SQL Query Composition and Analysis"* (SIGMOD 2020):
//! dense 2-D tensors, a tape-based reverse-mode autograd, the layers the
//! paper's models need (embeddings, multi-width 1-D convolutions with
//! max-over-time pooling, stacked LSTMs, linear heads, dropout), and the
//! SGD/Adam/AdaMax optimizers with global-norm gradient clipping.
//!
//! Gradient correctness for every op is property-tested against central
//! finite differences (`tests/prop_grad.rs`).
//!
//! ```
//! use sqlan_nn::{Graph, Params, Tensor};
//!
//! let mut params = Params::new();
//! let w = params.add("w", Tensor::scalar(3.0));
//! let mut grads = params.zero_grads();
//! let mut g = Graph::new(&params);
//! let wv = g.param(w);
//! let loss = g.huber(wv, 1.0, 1.0); // residual 2 > delta → linear region
//! g.backward(loss, 1.0, &mut grads);
//! assert_eq!(grads.get(w).item(), 1.0);
//! ```

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod graph;
pub mod layers;
pub mod optim;
pub mod params;
pub mod tensor;

pub use graph::{softmax_row, Graph, Var};
pub use layers::{dropout_mask, Conv1dBank, Embedding, Linear, LstmLayer, LstmStack};
pub use optim::{AdaMax, Adam, Optimizer, Sgd};
pub use params::{Grads, ParamId, Params};
pub use tensor::Tensor;
