//! # sqlan-nn
//!
//! A compact neural-network substrate for the `sqlan` reproduction of
//! *"Facilitating SQL Query Composition and Analysis"* (SIGMOD 2020):
//! dense 2-D tensors, a tape-based reverse-mode autograd, the layers the
//! paper's models need (embeddings, multi-width 1-D convolutions with
//! max-over-time pooling, stacked LSTMs, linear heads, dropout), and the
//! SGD/Adam/AdaMax optimizers with global-norm gradient clipping.
//!
//! Execution is **batched tensor execution**: one tape covers a whole
//! minibatch. [`plan_tiles`] buckets examples by length into tiles; the
//! encoders have batch twins ([`Conv1dBank::forward_packed`] over exact
//! packed segments, [`LstmStack::forward_batch`] over a padded batch
//! with masked state freezing, fused `lstm_gates`/`lstm_cell` tape ops);
//! linear heads run one `(B,K)·(K,N)` matmul. The kernels batch along
//! rows only — each row keeps the per-example accumulation order — so
//! batched inference is bit-identical to running examples one at a time
//! (`tests/prop_batch.rs`). Tape storage is recycled through a
//! thread-local buffer arena, so steady-state steps allocate O(1) fresh
//! buffers; [`without_buffer_pool`] scopes that off for the pre-batching
//! benchmark baseline. The engine's `ARCHITECTURE.md` ("Batched
//! training") documents the bucketing, the bit-identity argument, and
//! the gradient merge-order contract.
//!
//! Gradient correctness for every op — including the fused and batched
//! ones — is property-tested against central finite differences
//! (`tests/prop_grad.rs`).
//!
//! ```
//! use sqlan_nn::{Graph, Params, Tensor};
//!
//! let mut params = Params::new();
//! let w = params.add("w", Tensor::scalar(3.0));
//! let mut grads = params.zero_grads();
//! let mut g = Graph::new(&params);
//! let wv = g.param(w);
//! let loss = g.huber(wv, 1.0, 1.0); // residual 2 > delta → linear region
//! g.backward(loss, 1.0, &mut grads);
//! assert_eq!(grads.get(w).item(), 1.0);
//! ```

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub(crate) mod arena;
pub mod batch;
pub mod fastmath;
pub mod graph;
pub mod layers;
pub mod optim;
pub mod params;
pub mod tensor;

pub use arena::without_buffer_pool;
pub use batch::{plan_tiles, Tile};
pub use graph::{softmax_row, Graph, Seg, Var};
pub use layers::{dropout_mask, Conv1dBank, Embedding, Linear, LstmLayer, LstmStack};
pub use optim::{AdaMax, Adam, Optimizer, Sgd};
pub use params::{Grads, ParamId, Params};
pub use tensor::Tensor;
