//! Finite-difference verification of every autograd op.
//!
//! For a scalar loss L(θ), the analytic gradient from `Graph::backward`
//! must match the central difference (L(θ+ε) − L(θ−ε)) / 2ε on every
//! parameter coordinate. Each test builds a small network exercising one
//! op (plus the plumbing ops), with randomized parameters via proptest.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sqlan_nn::{Conv1dBank, Embedding, Graph, Linear, LstmStack, Params, Tensor};

/// Relative/absolute tolerance appropriate for f32 central differences.
const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Compare analytic and numeric gradients for a loss closure.
fn check_gradients(
    params: &mut Params,
    loss_fn: &dyn Fn(&Params) -> (f32, sqlan_nn::Grads),
) -> Result<(), TestCaseError> {
    let (_, grads) = loss_fn(params);
    let ids: Vec<_> = params.iter_ids().collect();
    for id in ids {
        let n = params.get(id).data.len();
        // Probe a few coordinates per parameter, not all (speed).
        let probes: Vec<usize> = if n <= 4 {
            (0..n).collect()
        } else {
            vec![0, n / 3, n / 2, n - 1]
        };
        let (l0, _) = loss_fn(params);
        for k in probes {
            let orig = params.get(id).data[k];
            params.get_mut(id).data[k] = orig + EPS;
            let (lp, _) = loss_fn(params);
            params.get_mut(id).data[k] = orig - EPS;
            let (lm, _) = loss_fn(params);
            params.get_mut(id).data[k] = orig;
            let central = (lp - lm) / (2.0 * EPS);
            let fwd = (lp - l0) / EPS;
            let bwd = (l0 - lm) / EPS;
            let analytic = grads.get(id).data[k];
            let scale = 1.0f32.max(central.abs()).max(analytic.abs());
            // ReLU / max-pool kinks make finite differences invalid; at a
            // kink the one-sided slopes disagree. Skip those coordinates —
            // the op is genuinely non-differentiable there.
            if (fwd - bwd).abs() / scale > TOL {
                continue;
            }
            prop_assert!(
                (central - analytic).abs() / scale < TOL,
                "param {} [{}]: numeric {} vs analytic {}",
                params.name(id),
                k,
                central,
                analytic
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Linear + sigmoid + Huber regression head.
    #[test]
    fn grad_linear_sigmoid_huber(seed in 0u64..1000, target in -2.0f32..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let lin = Linear::new(&mut params, "fc", 3, 1, &mut rng);
        let x = vec![0.5f32, -1.0, 2.0];
        let f = move |p: &Params| {
            let mut g = Graph::new(p);
            let xin = g.input(Tensor::row(x.clone()));
            let h = lin.forward(&mut g, xin);
            let s = g.sigmoid(h);
            let loss = g.huber(s, target, 1.0);
            let mut grads = p.zero_grads();
            let l = g.value(loss).item();
            g.backward(loss, 1.0, &mut grads);
            (l, grads)
        };
        check_gradients(&mut params, &f)?;
    }

    /// Two-layer tanh/relu MLP with softmax cross-entropy.
    #[test]
    fn grad_mlp_softmax_ce(seed in 0u64..1000, target in 0usize..3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let l1 = Linear::new(&mut params, "l1", 4, 5, &mut rng);
        let l2 = Linear::new(&mut params, "l2", 5, 3, &mut rng);
        let x = vec![1.0f32, -0.5, 0.25, 2.0];
        let f = move |p: &Params| {
            let mut g = Graph::new(p);
            let xin = g.input(Tensor::row(x.clone()));
            let h1 = l1.forward(&mut g, xin);
            let a1 = g.tanh(h1);
            let h2 = l2.forward(&mut g, a1);
            let r = g.relu(h2);
            let loss = g.softmax_ce(r, target);
            let mut grads = p.zero_grads();
            let l = g.value(loss).item();
            g.backward(loss, 1.0, &mut grads);
            (l, grads)
        };
        check_gradients(&mut params, &f)?;
    }

    /// Embedding → CNN bank (conv1d, relu, max-over-time, concat) → head.
    #[test]
    fn grad_cnn_pipeline(seed in 0u64..1000, target in 0usize..2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 7, 4, &mut rng);
        let bank = Conv1dBank::new(&mut params, "cnn", &[2, 3], 3, 4, &mut rng);
        let head = Linear::new(&mut params, "head", 6, 2, &mut rng);
        let tokens: Vec<u32> = vec![1, 4, 2, 6, 0, 3];
        let f = move |p: &Params| {
            let mut g = Graph::new(p);
            let x = emb.forward(&mut g, &tokens);
            let feats = bank.forward(&mut g, x);
            let logits = head.forward(&mut g, feats);
            let loss = g.softmax_ce(logits, target);
            let mut grads = p.zero_grads();
            let l = g.value(loss).item();
            g.backward(loss, 1.0, &mut grads);
            (l, grads)
        };
        check_gradients(&mut params, &f)?;
    }

    /// Embedding → 2-layer LSTM → Huber head: exercises matmul, add,
    /// add_row, slice_cols, select_row, mul, tanh, sigmoid through time.
    #[test]
    fn grad_lstm_pipeline(seed in 0u64..1000, target in -1.0f32..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 6, 3, &mut rng);
        let lstm = LstmStack::new(&mut params, "lstm", 3, 4, 2, &mut rng);
        let head = Linear::new(&mut params, "head", 4, 1, &mut rng);
        let tokens: Vec<u32> = vec![2, 5, 1, 3];
        let f = move |p: &Params| {
            let mut g = Graph::new(p);
            let x = emb.forward(&mut g, &tokens);
            let h = lstm.forward(&mut g, x);
            let y = head.forward(&mut g, h);
            let loss = g.huber(y, target, 1.0);
            let mut grads = p.zero_grads();
            let l = g.value(loss).item();
            g.backward(loss, 1.0, &mut grads);
            (l, grads)
        };
        check_gradients(&mut params, &f)?;
    }

    /// Dropout with a fixed mask is differentiable through kept elements.
    #[test]
    fn grad_dropout(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let lin = Linear::new(&mut params, "fc", 3, 4, &mut rng);
        let head = Linear::new(&mut params, "head", 4, 1, &mut rng);
        let mask = vec![true, false, true, true];
        let f = move |p: &Params| {
            let mut g = Graph::new(p);
            let xin = g.input(Tensor::row(vec![1.0, 2.0, -0.5]));
            let h = lin.forward(&mut g, xin);
            let d = g.dropout(h, mask.clone(), 0.75);
            let y = head.forward(&mut g, d);
            let loss = g.huber(y, 0.3, 1.0);
            let mut grads = p.zero_grads();
            let l = g.value(loss).item();
            g.backward(loss, 1.0, &mut grads);
            (l, grads)
        };
        check_gradients(&mut params, &f)?;
    }

    /// Elementwise mul and scale ops.
    #[test]
    fn grad_mul_scale(seed in 0u64..1000, k in -2.0f32..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let a = params.add_xavier("a", 1, 4, &mut rng);
        let b = params.add_xavier("b", 1, 4, &mut rng);
        let head = Linear::new(&mut params, "head", 4, 1, &mut rng);
        let f = move |p: &Params| {
            let mut g = Graph::new(p);
            let av = g.param(a);
            let bv = g.param(b);
            let m = g.mul(av, bv);
            let s = g.scale(m, k);
            let y = head.forward(&mut g, s);
            let loss = g.huber(y, 0.5, 1.0);
            let mut grads = p.zero_grads();
            let l = g.value(loss).item();
            g.backward(loss, 1.0, &mut grads);
            (l, grads)
        };
        check_gradients(&mut params, &f)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batched CNN tape: packed-segment convolution, per-segment max
    /// pooling, row-wise cross-entropy, and sum_all — the whole
    /// minibatch training graph of the CNN models.
    #[test]
    fn grad_batched_cnn_tape(seed in 0u64..1000, t0 in 0usize..2, t1 in 0usize..2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 7, 4, &mut rng);
        let bank = Conv1dBank::new(&mut params, "cnn", &[2, 3], 3, 4, &mut rng);
        let head = Linear::new(&mut params, "head", 6, 2, &mut rng);
        // Two sequences of different lengths, packed back to back.
        let flat: Vec<u32> = vec![1, 4, 2, 6, 0, 3, 5, 2, 1];
        let segs = vec![(0usize, 4usize), (4, 5)];
        let targets = vec![t0, t1];
        let f = move |p: &Params| {
            let mut g = Graph::new(p);
            let x = emb.forward(&mut g, &flat);
            let feats = bank.forward_packed(&mut g, x, &segs);
            let logits = head.forward(&mut g, feats);
            let losses = g.softmax_ce_rows(logits, targets.clone());
            let loss = g.sum_all(losses);
            let mut grads = p.zero_grads();
            let l = g.value(loss).item();
            g.backward(loss, 0.5, &mut grads);
            (l * 0.5, grads)
        };
        check_gradients(&mut params, &f)?;
    }

    /// Batched LSTM tape: row gather from the padded embedding, masked
    /// state freezing (select_rows_where), and row-wise Huber — the
    /// minibatch training graph of the LSTM models.
    #[test]
    fn grad_batched_lstm_tape(seed in 0u64..1000, y0 in -1.0f32..1.0, y1 in -1.0f32..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 6, 3, &mut rng);
        let lstm = LstmStack::new(&mut params, "lstm", 3, 4, 2, &mut rng);
        let head = Linear::new(&mut params, "head", 4, 1, &mut rng);
        // Lengths 4 and 2, padded to 4 → two masked steps for row 1.
        let flat: Vec<u32> = vec![2, 5, 1, 3, 4, 1, 0, 0];
        let lens = vec![4usize, 2];
        let targets = vec![y0, y1];
        let f = move |p: &Params| {
            let mut g = Graph::new(p);
            let x = emb.forward(&mut g, &flat);
            let h = lstm.forward_batch(&mut g, x, &lens, 4);
            let y = head.forward(&mut g, h);
            let losses = g.huber_rows(y, targets.clone(), 1.0);
            let loss = g.sum_all(losses);
            let mut grads = p.zero_grads();
            let l = g.value(loss).item();
            g.backward(loss, 1.0, &mut grads);
            (l, grads)
        };
        check_gradients(&mut params, &f)?;
    }
}
