//! Bit-identity of batched execution: for arbitrary sequences, batch
//! compositions, and bucket boundaries, the batch twins of the encoders
//! and head produce rows **bitwise equal** (`to_bits`) to running each
//! example through the per-example path alone. This is the contract that
//! lets `predict_*_batch` feed the serving layer without changing a
//! single prediction byte.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sqlan_nn::{plan_tiles, Conv1dBank, Embedding, Graph, Linear, LstmStack, Params, Tensor};

fn bits(t: &Tensor) -> Vec<Vec<u32>> {
    (0..t.rows)
        .map(|r| t.row_slice(r).iter().map(|f| f.to_bits()).collect())
        .collect()
}

/// Random token sequences with the given length bounds.
fn seqs_strategy(
    min_len: usize,
    max_len: usize,
    max_batch: usize,
) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::vec(0u32..12, min_len..max_len + 1),
        1..max_batch + 1,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CNN: packed-segment batch forward ≡ per-example forward, bitwise.
    #[test]
    fn cnn_batch_rows_equal_per_example_bits(
        seed in 0u64..500,
        seqs in seqs_strategy(5, 40, 9),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 12, 6, &mut rng);
        let bank = Conv1dBank::new(&mut params, "cnn", &[3, 4, 5], 4, 6, &mut rng);
        let head = Linear::new(&mut params, "head", bank.out_dim(), 3, &mut rng);

        // Batched: pack all sequences into one tape.
        let mut flat = Vec::new();
        let mut segs = Vec::new();
        for s in &seqs {
            segs.push((flat.len(), s.len()));
            flat.extend_from_slice(s);
        }
        let mut g = Graph::new(&params);
        let x = emb.forward(&mut g, &flat);
        let feats = bank.forward_packed(&mut g, x, &segs);
        let logits = head.forward(&mut g, feats);
        let batched = bits(g.value(logits));
        let batched_probs = bits(&g.softmax_probs_rows(logits));
        drop(g);

        // Per-example.
        for (i, s) in seqs.iter().enumerate() {
            let mut g = Graph::new(&params);
            let x = emb.forward(&mut g, s);
            let feats = bank.forward(&mut g, x);
            let logits = head.forward(&mut g, feats);
            prop_assert_eq!(&batched[i], &bits(g.value(logits))[0], "logits row {}", i);
            let probs = g.softmax_probs(logits);
            let probs_bits: Vec<u32> = probs.iter().map(|f| f.to_bits()).collect();
            prop_assert_eq!(&batched_probs[i], &probs_bits, "probs row {}", i);
        }
    }

    /// LSTM: padded + masked batch forward ≡ per-example forward,
    /// bitwise — across arbitrary length mixes (bucket boundaries land
    /// wherever the lengths do; padding is exercised whenever lengths
    /// differ within the batch).
    #[test]
    fn lstm_batch_rows_equal_per_example_bits(
        seed in 0u64..500,
        seqs in seqs_strategy(1, 24, 7),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 12, 5, &mut rng);
        let stack = LstmStack::new(&mut params, "lstm", 5, 6, 2, &mut rng);
        let head = Linear::new(&mut params, "head", 6, 1, &mut rng);

        let lens: Vec<usize> = seqs.iter().map(Vec::len).collect();
        let padded = *lens.iter().max().expect("non-empty");
        let mut flat = Vec::new();
        for s in &seqs {
            flat.extend_from_slice(s);
            flat.resize(flat.len() + (padded - s.len()), 0);
        }
        let mut g = Graph::new(&params);
        let x = emb.forward(&mut g, &flat);
        let h = stack.forward_batch(&mut g, x, &lens, padded);
        let logits = head.forward(&mut g, h);
        let batched = bits(g.value(logits));
        drop(g);

        for (i, s) in seqs.iter().enumerate() {
            let mut g = Graph::new(&params);
            let x = emb.forward(&mut g, s);
            let h = stack.forward(&mut g, x);
            let logits = head.forward(&mut g, h);
            prop_assert_eq!(&batched[i], &bits(g.value(logits))[0], "row {}", i);
        }
    }

    /// Tile plans partition the input for any length mix, and running
    /// the batch tile-by-tile reproduces the full-batch rows (tiling is
    /// invisible to the numbers).
    #[test]
    fn tiled_execution_is_partition_invariant(
        seed in 0u64..500,
        seqs in seqs_strategy(5, 60, 12),
        max_tile in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 12, 4, &mut rng);
        let bank = Conv1dBank::new(&mut params, "cnn", &[3], 3, 4, &mut rng);
        let head = Linear::new(&mut params, "head", bank.out_dim(), 2, &mut rng);

        let forward_tile = |tile_seqs: &[&[u32]]| -> Vec<Vec<u32>> {
            let mut flat = Vec::new();
            let mut segs = Vec::new();
            for s in tile_seqs {
                segs.push((flat.len(), s.len()));
                flat.extend_from_slice(s);
            }
            let mut g = Graph::new(&params);
            let x = emb.forward(&mut g, &flat);
            let feats = bank.forward_packed(&mut g, x, &segs);
            let logits = head.forward(&mut g, feats);
            bits(g.value(logits))
        };

        // Whole batch as one tile.
        let all: Vec<&[u32]> = seqs.iter().map(|s| s.as_slice()).collect();
        let whole = forward_tile(&all);

        // Arbitrary bucketed tiling of the same batch.
        let lens: Vec<usize> = seqs.iter().map(Vec::len).collect();
        let tiles = plan_tiles(&lens, max_tile);
        let mut covered = vec![false; seqs.len()];
        for tile in &tiles {
            let tile_seqs: Vec<&[u32]> =
                tile.indices.iter().map(|&i| seqs[i].as_slice()).collect();
            let rows = forward_tile(&tile_seqs);
            for (r, &i) in tile.indices.iter().enumerate() {
                prop_assert!(!covered[i]);
                covered[i] = true;
                prop_assert_eq!(&rows[r], &whole[i], "example {}", i);
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }
}
