//! Bag-of-ngrams + TF-IDF features (§5.1).
//!
//! "For the Bag-of-ngrams, we select the most frequent n-grams (up to
//! 5-grams) from the training set. … the weight of token tᵢ is computed
//! using TFIDF(tᵢ,Q,𝒬) = TF(tᵢ,Q) × IDF(tᵢ,𝒬)", with TF the normalized
//! in-query frequency and IDF = log(|𝒬| / (1 + |{Q : tᵢ ∈ Q}|)).
//!
//! Hot-path notes: [`TfidfVectorizer::transform`] runs once per labeled
//! statement and once per served prediction, so it avoids both SipHash
//! (the vocabulary and count maps use the [`fxhash`] multiply-rotate
//! hasher) and per-n-gram `String` allocation (n-gram keys are rendered
//! into one reusable scratch buffer and probed by `&str`). The count map
//! and key buffer live in a thread-local scratch reused across calls, so
//! a transform allocates only its output vector.

use fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// A sparse feature vector: sorted (feature id, weight) pairs.
pub type SparseVec = Vec<(u32, f32)>;

/// Separator between tokens of one rendered n-gram key.
const SEP: char = '\u{1f}';

/// Generate all n-grams of `tokens` for n in `1..=max_n`, rendered as
/// separator-joined strings. (Allocating; the vectorizer hot paths
/// render keys into a scratch buffer instead — keep this for callers
/// that want the materialized list.)
pub fn ngrams(tokens: &[String], max_n: usize) -> Vec<String> {
    let mut out = Vec::new();
    for_each_ngram(tokens, max_n, |key| out.push(key.to_string()));
    out
}

/// Visit every n-gram of `tokens` for n in `1..=max_n`, rendered into a
/// reused buffer — the borrowed-key scheme behind [`ngrams`] without its
/// per-n-gram allocation.
fn for_each_ngram(tokens: &[String], max_n: usize, mut visit: impl FnMut(&str)) {
    let mut key = String::new();
    for n in 1..=max_n {
        if tokens.len() < n {
            break;
        }
        for w in tokens.windows(n) {
            key.clear();
            for (i, t) in w.iter().enumerate() {
                if i > 0 {
                    key.push(SEP);
                }
                key.push_str(t);
            }
            visit(&key);
        }
    }
}

/// A fitted bag-of-ngrams TF-IDF vectorizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfidfVectorizer {
    pub max_n: usize,
    /// n-gram → feature id (Fx-hashed: internal keys, no DoS surface).
    vocab: FxHashMap<String, u32>,
    /// Per-feature inverse document frequency.
    idf: Vec<f32>,
}

/// Documents per accumulation chunk during [`TfidfVectorizer::fit`].
/// Boundaries depend only on this constant (never the worker count), so
/// the chunked document-frequency reduce merges in a fixed order.
const FIT_CHUNK_DOCS: usize = 64;

thread_local! {
    /// Reused across [`TfidfVectorizer::transform`] calls: the feature
    /// count map (cleared, capacity kept). One per thread — transforms
    /// fan out over the pool, and each worker gets its own scratch.
    static COUNT_SCRATCH: RefCell<FxHashMap<u32, f32>> = RefCell::new(FxHashMap::default());
    /// Structure-of-arrays scratch for the weighting tail: sorted ids,
    /// their counts, and the computed weights, as parallel columns the
    /// tiered `tfidf_weights` kernel can stream.
    static SOA_SCRATCH: RefCell<(Vec<u32>, Vec<f32>, Vec<f32>)> = RefCell::new(Default::default());
}

impl TfidfVectorizer {
    /// Fit on training token streams: select the `max_features` most
    /// frequent n-grams and compute their IDF.
    ///
    /// Document/collection-frequency accumulation fans out over the
    /// [`sqlan_par`] pool in fixed-size chunks; per-chunk maps merge in
    /// chunk order. Counts are integers and the ranking tiebreak is total
    /// (count desc, then n-gram asc), so the fitted vectorizer is
    /// identical to the sequential path at any thread count.
    pub fn fit(streams: &[Vec<String>], max_n: usize, max_features: usize) -> TfidfVectorizer {
        // Collection frequency and document frequency per n-gram.
        type Counts = FxHashMap<String, (usize, usize)>;
        let per_chunk: Vec<Counts> = sqlan_par::par_chunks(streams, FIT_CHUNK_DOCS, |chunk| {
            let mut counts: Counts = FxHashMap::default();
            // Per-stream occurrence counts, merged so each distinct
            // n-gram bumps the chunk's df exactly once per stream.
            let mut local: FxHashMap<String, usize> = FxHashMap::default();
            for stream in chunk {
                local.clear();
                for_each_ngram(stream, max_n, |key| match local.get_mut(key) {
                    Some(c) => *c += 1,
                    None => {
                        local.insert(key.to_string(), 1);
                    }
                });
                for (g, n) in local.drain() {
                    let slot = counts.entry(g).or_insert((0, 0));
                    slot.0 += n;
                    slot.1 += 1;
                }
            }
            counts
        });
        let mut merged: Counts = FxHashMap::default();
        for chunk in per_chunk {
            for (g, (cf, df)) in chunk {
                let slot = merged.entry(g).or_insert((0, 0));
                slot.0 += cf;
                slot.1 += df;
            }
        }
        let mut ranked: Vec<(String, (usize, usize))> = merged.into_iter().collect();
        ranked.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
        ranked.truncate(max_features);

        let n_docs = streams.len().max(1) as f32;
        let mut vocab = FxHashMap::default();
        vocab.reserve(ranked.len());
        let mut idf = Vec::with_capacity(ranked.len());
        for (i, (gram, (_, df))) in ranked.into_iter().enumerate() {
            idf.push((n_docs / (1.0 + df as f32)).ln().max(0.0));
            vocab.insert(gram, i as u32);
        }
        TfidfVectorizer { max_n, vocab, idf }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.idf.len()
    }

    /// Transform one token stream into a sparse TF-IDF vector.
    ///
    /// TF is the count of the n-gram divided by the total number of
    /// n-grams in the query ("the normalization prevents bias towards
    /// longer queries").
    pub fn transform(&self, tokens: &[String]) -> SparseVec {
        COUNT_SCRATCH.with(|scratch| {
            let counts = &mut *scratch.borrow_mut();
            counts.clear();
            let mut total = 0usize;
            for_each_ngram(tokens, self.max_n, |key| {
                total += 1;
                if let Some(&id) = self.vocab.get(key) {
                    *counts.entry(id).or_default() += 1.0;
                }
            });
            if total == 0 {
                return Vec::new();
            }
            let total = total as f32;
            // Flatten the count map into id-sorted parallel columns and
            // let the tiered kernel do the per-feature `(c/total)·idf`
            // (same association as the old per-pair expression, so the
            // weights are bit-identical on every tier).
            SOA_SCRATCH.with(|soa| {
                let (ids, cnts, wts) = &mut *soa.borrow_mut();
                ids.clear();
                ids.extend(counts.keys().copied());
                ids.sort_unstable();
                cnts.clear();
                cnts.extend(ids.iter().map(|id| counts[id]));
                wts.clear();
                wts.resize(ids.len(), 0.0);
                sqlan_simd::tfidf_weights(ids, cnts, &self.idf, total, wts);
                ids.iter().copied().zip(wts.iter().copied()).collect()
            })
        })
    }

    /// Transform many token streams at once, in parallel, preserving
    /// input order. Equivalent to mapping [`TfidfVectorizer::transform`]
    /// sequentially (each transform is a pure per-document function).
    ///
    /// When `SQLAN_OBS` is on, the batch records a `featurize` span on
    /// any trace installed on the calling thread (the `par_map` workers
    /// do not inherit the install stack, so timing wraps the whole batch
    /// here) and its wall time lands in the global
    /// `sqlan_featurize_seconds` histogram.  The transform itself is
    /// identical either way.
    pub fn transform_batch(&self, streams: &[Vec<String>]) -> Vec<SparseVec> {
        if !sqlan_obs::enabled() {
            return sqlan_par::par_map(streams, |s| self.transform(s));
        }
        let start = std::time::Instant::now();
        let out = sqlan_obs::trace::timed("featurize", streams.len() as u64, || {
            sqlan_par::par_map(streams, |s| self.transform(s))
        });
        featurize_hist().record(start.elapsed().as_nanos() as u64);
        out
    }
}

/// Global wall-time histogram for whole featurize batches, seconds.
fn featurize_hist() -> &'static std::sync::Arc<sqlan_obs::Histogram> {
    static H: std::sync::OnceLock<std::sync::Arc<sqlan_obs::Histogram>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        sqlan_obs::global().histogram(
            "sqlan_featurize_seconds",
            "Wall time per TF-IDF featurize batch",
            1e-9,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn ngrams_up_to_three() {
        let t = toks(&["a", "b", "c"]);
        let g = ngrams(&t, 3);
        assert_eq!(g.len(), 3 + 2 + 1);
        assert!(g.contains(&"a\u{1f}b".to_string()));
        assert!(g.contains(&"a\u{1f}b\u{1f}c".to_string()));
    }

    #[test]
    fn ngrams_short_input() {
        let t = toks(&["a"]);
        assert_eq!(ngrams(&t, 5), vec!["a".to_string()]);
        assert!(ngrams(&[], 5).is_empty());
    }

    #[test]
    fn fit_transform_roundtrip() {
        let corpus = vec![
            toks(&["select", "x", "from", "t"]),
            toks(&["select", "y", "from", "u"]),
            toks(&["drop", "table", "t"]),
        ];
        let v = TfidfVectorizer::fit(&corpus, 2, 100);
        assert!(v.dim() > 0);
        let f = v.transform(&corpus[0]);
        assert!(!f.is_empty());
        // Sorted by feature id.
        for w in f.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn common_tokens_have_lower_idf_weight() {
        // "select" appears in every doc; "drop" in one.
        let corpus = vec![
            toks(&["select", "a"]),
            toks(&["select", "b"]),
            toks(&["select", "c"]),
            toks(&["drop", "d"]),
        ];
        let v = TfidfVectorizer::fit(&corpus, 1, 100);
        let common = v.transform(&toks(&["select"]));
        let rare = v.transform(&toks(&["drop"]));
        let wc = common.first().map(|x| x.1).unwrap_or(0.0);
        let wr = rare.first().map(|x| x.1).unwrap_or(0.0);
        assert!(
            wr > wc,
            "rare n-gram should out-weigh common one: rare={wr}, common={wc}"
        );
    }

    #[test]
    fn unknown_ngrams_are_dropped() {
        let corpus = vec![toks(&["a", "b"])];
        let v = TfidfVectorizer::fit(&corpus, 1, 10);
        let f = v.transform(&toks(&["zzz"]));
        assert!(f.is_empty());
    }

    #[test]
    fn max_features_caps_dimensionality() {
        let corpus: Vec<Vec<String>> = (0..50).map(|i| toks(&["t", &format!("x{i}")])).collect();
        let v = TfidfVectorizer::fit(&corpus, 1, 5);
        assert_eq!(v.dim(), 5);
    }

    #[test]
    fn fit_and_transform_batch_are_thread_count_invariant() {
        // More docs than FIT_CHUNK_DOCS so the chunked reduce really runs.
        let corpus: Vec<Vec<String>> = (0..150)
            .map(|i| {
                toks(&[
                    "select",
                    &format!("c{}", i % 17),
                    "from",
                    &format!("t{}", i % 5),
                ])
            })
            .collect();
        let fit_all = |threads: usize| {
            sqlan_par::with_threads(threads, || {
                let v = TfidfVectorizer::fit(&corpus, 3, 200);
                (v.dim(), v.idf.clone(), v.transform_batch(&corpus))
            })
        };
        let (dim1, idf1, mat1) = fit_all(1);
        for t in [3, 8] {
            let (dim, idf, mat) = fit_all(t);
            assert_eq!(dim, dim1, "threads={t}");
            assert_eq!(
                idf.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                idf1.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "threads={t}"
            );
            assert_eq!(mat, mat1, "threads={t}");
        }
    }

    #[test]
    fn borrowed_key_transform_matches_materialized_ngrams() {
        // The scratch-buffer n-gram walk must visit exactly the n-grams
        // `ngrams` materializes, in the same multiset.
        let corpus = vec![
            toks(&["select", "x", "from", "t", "where", "x"]),
            toks(&["select", "x", "x", "x"]),
        ];
        let v = TfidfVectorizer::fit(&corpus, 3, 100);
        for stream in &corpus {
            let grams = ngrams(stream, v.max_n);
            let mut visited = Vec::new();
            for_each_ngram(stream, v.max_n, |k| visited.push(k.to_string()));
            assert_eq!(grams, visited);
            // And the transform agrees with a from-scratch recount.
            let total = grams.len() as f32;
            let mut expect: Vec<(u32, f32)> = {
                let mut m: std::collections::BTreeMap<u32, f32> = Default::default();
                for g in &grams {
                    if let Some(&id) = v.vocab.get(g.as_str()) {
                        *m.entry(id).or_default() += 1.0;
                    }
                }
                m.into_iter().collect()
            };
            for e in &mut expect {
                e.1 = (e.1 / total) * v.idf[e.0 as usize];
            }
            assert_eq!(v.transform(stream), expect);
        }
    }

    #[test]
    fn tf_normalization_prevents_length_bias() {
        let corpus = vec![toks(&["a", "b"]), toks(&["c"])];
        let v = TfidfVectorizer::fit(&corpus, 1, 10);
        let short = v.transform(&toks(&["a"]));
        let long = v.transform(&toks(&["a", "a", "a", "a"]));
        // Same relative frequency (1.0) → same weight.
        assert!((short[0].1 - long[0].1).abs() < 1e-6);
    }
}
