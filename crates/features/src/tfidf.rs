//! Bag-of-ngrams + TF-IDF features (§5.1).
//!
//! "For the Bag-of-ngrams, we select the most frequent n-grams (up to
//! 5-grams) from the training set. … the weight of token tᵢ is computed
//! using TFIDF(tᵢ,Q,𝒬) = TF(tᵢ,Q) × IDF(tᵢ,𝒬)", with TF the normalized
//! in-query frequency and IDF = log(|𝒬| / (1 + |{Q : tᵢ ∈ Q}|)).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A sparse feature vector: sorted (feature id, weight) pairs.
pub type SparseVec = Vec<(u32, f32)>;

/// Generate all n-grams of `tokens` for n in `1..=max_n`, rendered as
/// separator-joined strings.
pub fn ngrams(tokens: &[String], max_n: usize) -> Vec<String> {
    let mut out = Vec::new();
    for n in 1..=max_n {
        if tokens.len() < n {
            break;
        }
        for w in tokens.windows(n) {
            out.push(w.join("\u{1f}"));
        }
    }
    out
}

/// A fitted bag-of-ngrams TF-IDF vectorizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfidfVectorizer {
    pub max_n: usize,
    /// n-gram → feature id.
    vocab: HashMap<String, u32>,
    /// Per-feature inverse document frequency.
    idf: Vec<f32>,
}

/// Documents per accumulation chunk during [`TfidfVectorizer::fit`].
/// Boundaries depend only on this constant (never the worker count), so
/// the chunked document-frequency reduce merges in a fixed order.
const FIT_CHUNK_DOCS: usize = 64;

impl TfidfVectorizer {
    /// Fit on training token streams: select the `max_features` most
    /// frequent n-grams and compute their IDF.
    ///
    /// Document/collection-frequency accumulation fans out over the
    /// [`sqlan_par`] pool in fixed-size chunks; per-chunk maps merge in
    /// chunk order. Counts are integers and the ranking tiebreak is total
    /// (count desc, then n-gram asc), so the fitted vectorizer is
    /// identical to the sequential path at any thread count.
    pub fn fit(streams: &[Vec<String>], max_n: usize, max_features: usize) -> TfidfVectorizer {
        // Document frequency and collection frequency per n-gram.
        type Counts = (HashMap<String, usize>, HashMap<String, usize>);
        let per_chunk: Vec<Counts> = sqlan_par::par_chunks(streams, FIT_CHUNK_DOCS, |chunk| {
            let mut cf: HashMap<String, usize> = HashMap::new();
            let mut df: HashMap<String, usize> = HashMap::new();
            for stream in chunk {
                let grams = ngrams(stream, max_n);
                let mut seen: HashMap<&str, ()> = HashMap::new();
                for g in &grams {
                    *cf.entry(g.clone()).or_default() += 1;
                }
                for g in &grams {
                    if seen.insert(g.as_str(), ()).is_none() {
                        *df.entry(g.clone()).or_default() += 1;
                    }
                }
            }
            (cf, df)
        });
        let mut cf: HashMap<String, usize> = HashMap::new();
        let mut df: HashMap<String, usize> = HashMap::new();
        for (chunk_cf, chunk_df) in per_chunk {
            for (g, n) in chunk_cf {
                *cf.entry(g).or_default() += n;
            }
            for (g, n) in chunk_df {
                *df.entry(g).or_default() += n;
            }
        }
        let mut ranked: Vec<(String, usize)> = cf.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(max_features);

        let n_docs = streams.len().max(1) as f32;
        let mut vocab = HashMap::with_capacity(ranked.len());
        let mut idf = Vec::with_capacity(ranked.len());
        for (i, (gram, _)) in ranked.into_iter().enumerate() {
            let d = df.get(&gram).copied().unwrap_or(0) as f32;
            idf.push((n_docs / (1.0 + d)).ln().max(0.0));
            vocab.insert(gram, i as u32);
        }
        TfidfVectorizer { max_n, vocab, idf }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.idf.len()
    }

    /// Transform one token stream into a sparse TF-IDF vector.
    ///
    /// TF is the count of the n-gram divided by the total number of
    /// n-grams in the query ("the normalization prevents bias towards
    /// longer queries").
    pub fn transform(&self, tokens: &[String]) -> SparseVec {
        let grams = ngrams(tokens, self.max_n);
        if grams.is_empty() {
            return Vec::new();
        }
        let total = grams.len() as f32;
        let mut counts: HashMap<u32, f32> = HashMap::new();
        for g in &grams {
            if let Some(&id) = self.vocab.get(g) {
                *counts.entry(id).or_default() += 1.0;
            }
        }
        let mut out: SparseVec = counts
            .into_iter()
            .map(|(id, c)| (id, (c / total) * self.idf[id as usize]))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Transform many token streams at once, in parallel, preserving
    /// input order. Equivalent to mapping [`TfidfVectorizer::transform`]
    /// sequentially (each transform is a pure per-document function).
    pub fn transform_batch(&self, streams: &[Vec<String>]) -> Vec<SparseVec> {
        sqlan_par::par_map(streams, |s| self.transform(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn ngrams_up_to_three() {
        let t = toks(&["a", "b", "c"]);
        let g = ngrams(&t, 3);
        assert_eq!(g.len(), 3 + 2 + 1);
        assert!(g.contains(&"a\u{1f}b".to_string()));
        assert!(g.contains(&"a\u{1f}b\u{1f}c".to_string()));
    }

    #[test]
    fn ngrams_short_input() {
        let t = toks(&["a"]);
        assert_eq!(ngrams(&t, 5), vec!["a".to_string()]);
        assert!(ngrams(&[], 5).is_empty());
    }

    #[test]
    fn fit_transform_roundtrip() {
        let corpus = vec![
            toks(&["select", "x", "from", "t"]),
            toks(&["select", "y", "from", "u"]),
            toks(&["drop", "table", "t"]),
        ];
        let v = TfidfVectorizer::fit(&corpus, 2, 100);
        assert!(v.dim() > 0);
        let f = v.transform(&corpus[0]);
        assert!(!f.is_empty());
        // Sorted by feature id.
        for w in f.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn common_tokens_have_lower_idf_weight() {
        // "select" appears in every doc; "drop" in one.
        let corpus = vec![
            toks(&["select", "a"]),
            toks(&["select", "b"]),
            toks(&["select", "c"]),
            toks(&["drop", "d"]),
        ];
        let v = TfidfVectorizer::fit(&corpus, 1, 100);
        let common = v.transform(&toks(&["select"]));
        let rare = v.transform(&toks(&["drop"]));
        let wc = common.first().map(|x| x.1).unwrap_or(0.0);
        let wr = rare.first().map(|x| x.1).unwrap_or(0.0);
        assert!(
            wr > wc,
            "rare n-gram should out-weigh common one: rare={wr}, common={wc}"
        );
    }

    #[test]
    fn unknown_ngrams_are_dropped() {
        let corpus = vec![toks(&["a", "b"])];
        let v = TfidfVectorizer::fit(&corpus, 1, 10);
        let f = v.transform(&toks(&["zzz"]));
        assert!(f.is_empty());
    }

    #[test]
    fn max_features_caps_dimensionality() {
        let corpus: Vec<Vec<String>> = (0..50).map(|i| toks(&["t", &format!("x{i}")])).collect();
        let v = TfidfVectorizer::fit(&corpus, 1, 5);
        assert_eq!(v.dim(), 5);
    }

    #[test]
    fn fit_and_transform_batch_are_thread_count_invariant() {
        // More docs than FIT_CHUNK_DOCS so the chunked reduce really runs.
        let corpus: Vec<Vec<String>> = (0..150)
            .map(|i| {
                toks(&[
                    "select",
                    &format!("c{}", i % 17),
                    "from",
                    &format!("t{}", i % 5),
                ])
            })
            .collect();
        let fit_all = |threads: usize| {
            sqlan_par::with_threads(threads, || {
                let v = TfidfVectorizer::fit(&corpus, 3, 200);
                (v.dim(), v.idf.clone(), v.transform_batch(&corpus))
            })
        };
        let (dim1, idf1, mat1) = fit_all(1);
        for t in [3, 8] {
            let (dim, idf, mat) = fit_all(t);
            assert_eq!(dim, dim1, "threads={t}");
            assert_eq!(
                idf.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                idf1.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "threads={t}"
            );
            assert_eq!(mat, mat1, "threads={t}");
        }
    }

    #[test]
    fn tf_normalization_prevents_length_bias() {
        let corpus = vec![toks(&["a", "b"]), toks(&["c"])];
        let v = TfidfVectorizer::fit(&corpus, 1, 10);
        let short = v.transform(&toks(&["a"]));
        let long = v.transform(&toks(&["a", "a", "a", "a"]));
        // Same relative frequency (1.0) → same weight.
        assert!((short[0].1 - long[0].1).abs() < 1e-6);
    }
}
