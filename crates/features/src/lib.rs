//! # sqlan-features
//!
//! Text featurization for the `sqlan` reproduction of *"Facilitating SQL
//! Query Composition and Analysis"* (SIGMOD 2020): character- and
//! word-level tokenization (digits → `<DIGIT>`, Definition 1 / §4.4.1),
//! frequency-capped vocabularies for the neural models, and bag-of-ngrams
//! TF-IDF vectors (up to 5-grams) for the traditional models (§5.1).

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use tfidf::{ngrams, SparseVec, TfidfVectorizer};
pub use tokenize::{char_tokens, word_tokens};
pub use vocab::{Vocab, FIRST_TOKEN_ID, PAD, UNK};
