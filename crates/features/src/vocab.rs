//! Token vocabularies with frequency-based capping (§4.4.1's open-
//! vocabulary control) and sequence encoding for the neural models.

use fxhash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Reserved token ids.
pub const PAD: u32 = 0;
pub const UNK: u32 = 1;
/// First id available for real tokens.
pub const FIRST_TOKEN_ID: u32 = 2;

/// A frozen token → id mapping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    /// Token → id. Fx-hashed: the lookup runs once per token of every
    /// encoded statement (training *and* serving), and keys are internal
    /// vocabulary strings with no DoS surface.
    map: FxHashMap<String, u32>,
    items: Vec<String>,
}

impl Vocab {
    /// Build from an iterator of token streams: count frequencies, keep
    /// the `max_size` most frequent tokens with count ≥ `min_count`.
    /// Ties break lexicographically for determinism.
    pub fn build<'a>(
        streams: impl IntoIterator<Item = &'a [String]>,
        max_size: usize,
        min_count: usize,
    ) -> Vocab {
        let mut counts: FxHashMap<&'a str, usize> = FxHashMap::default();
        for stream in streams {
            for t in stream {
                *counts.entry(t.as_str()).or_default() += 1;
            }
        }
        let mut ranked: Vec<(&str, usize)> = counts
            .into_iter()
            .filter(|(_, c)| *c >= min_count)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        ranked.truncate(max_size);

        let mut items = vec!["<PAD>".to_string(), "<UNK>".to_string()];
        items.extend(ranked.into_iter().map(|(t, _)| t.to_string()));
        let map = items
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
        Vocab { map, items }
    }

    /// Number of entries including the reserved PAD/UNK.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.len() <= 2
    }

    pub fn id(&self, token: &str) -> u32 {
        self.map.get(token).copied().unwrap_or(UNK)
    }

    pub fn token(&self, id: u32) -> &str {
        self.items
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("<UNK>")
    }

    /// Encode a token stream, truncating to `max_len` and padding up to
    /// `min_len` with PAD (the CNN needs sequences at least as long as its
    /// widest kernel).
    pub fn encode(&self, tokens: &[String], max_len: usize, min_len: usize) -> Vec<u32> {
        let mut ids: Vec<u32> = tokens.iter().take(max_len).map(|t| self.id(t)).collect();
        while ids.len() < min_len {
            ids.push(PAD);
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streams(data: &[&[&str]]) -> Vec<Vec<String>> {
        data.iter()
            .map(|s| s.iter().map(|t| t.to_string()).collect())
            .collect()
    }

    #[test]
    fn build_orders_by_frequency() {
        let s = streams(&[&["a", "b", "a"], &["a", "c"]]);
        let v = Vocab::build(s.iter().map(Vec::as_slice), 10, 1);
        assert_eq!(v.id("a"), FIRST_TOKEN_ID);
        assert_eq!(v.token(FIRST_TOKEN_ID), "a");
        assert_eq!(v.len(), 5); // PAD, UNK, a, b, c
    }

    #[test]
    fn max_size_caps_vocab() {
        let s = streams(&[&["a", "a", "b", "b", "c"]]);
        let v = Vocab::build(s.iter().map(Vec::as_slice), 2, 1);
        assert_eq!(v.len(), 4); // PAD, UNK + 2
        assert_eq!(v.id("c"), UNK);
    }

    #[test]
    fn min_count_filters_rare() {
        let s = streams(&[&["a", "a", "rare"]]);
        let v = Vocab::build(s.iter().map(Vec::as_slice), 10, 2);
        assert_eq!(v.id("rare"), UNK);
        assert_ne!(v.id("a"), UNK);
    }

    #[test]
    fn encode_truncates_and_pads() {
        let s = streams(&[&["a", "b"]]);
        let v = Vocab::build(s.iter().map(Vec::as_slice), 10, 1);
        let toks: Vec<String> = ["a", "b", "a", "b"].iter().map(|t| t.to_string()).collect();
        let e = v.encode(&toks, 3, 0);
        assert_eq!(e.len(), 3);
        let short = v.encode(&toks[..1], 10, 5);
        assert_eq!(short.len(), 5);
        assert_eq!(short[1], PAD);
    }

    #[test]
    fn unknown_maps_to_unk() {
        let s = streams(&[&["a"]]);
        let v = Vocab::build(s.iter().map(Vec::as_slice), 10, 1);
        assert_eq!(v.id("zzz"), UNK);
    }

    #[test]
    fn deterministic_tie_break() {
        let s = streams(&[&["b", "a"]]);
        let v1 = Vocab::build(s.iter().map(Vec::as_slice), 10, 1);
        let v2 = Vocab::build(s.iter().map(Vec::as_slice), 10, 1);
        assert_eq!(v1.id("a"), v2.id("a"));
        assert_eq!(v1.id("a"), FIRST_TOKEN_ID); // lexicographic tie-break
    }
}
