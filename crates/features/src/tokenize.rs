//! Character- and word-level tokenization of SQL text (Definition 1 and
//! §4.4.1: models run at both granularities; at word level "we replace the
//! digits with a `<DIGIT>` token to control for the vocabulary size").

/// Character-level tokens: every non-whitespace character, as a string.
/// Whitespace is dropped (the paper counts Figure 2a at "48 tokens at the
/// character level (excluding spaces)").
pub fn char_tokens(text: &str) -> Vec<String> {
    let mut out = Vec::with_capacity(text.len());
    for c in text.chars() {
        if !c.is_whitespace() {
            out.push(c.to_string());
        }
    }
    out
}

/// Word-level tokens.
///
/// A lightweight scanner (independent of the SQL lexer so that arbitrary
/// text tokenizes sensibly): identifier runs lower-case, digit runs
/// collapse to `<DIGIT>`, string literals become `<STR>`, every other
/// non-space character is its own token.
pub fn word_tokens(text: &str) -> Vec<String> {
    // ~1 token per 4 bytes of SQL in practice; a one-shot reservation
    // keeps the push loop realloc-free for typical statements.
    let mut out = Vec::with_capacity(text.len() / 4 + 1);
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == b'_' || c == b'@' || c == b'#' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'@'
                    || bytes[i] == b'#')
            {
                i += 1;
            }
            out.push(text[start..i].to_ascii_lowercase());
        } else if c.is_ascii_digit() {
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == b'.'
                    || bytes[i] == b'x'
                    || bytes[i].is_ascii_hexdigit())
            {
                i += 1;
            }
            out.push("<DIGIT>".to_string());
        } else if c == b'\'' {
            // String literal → one <STR> token.
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\'' {
                    i += 1;
                    if i < bytes.len() && bytes[i] == b'\'' {
                        i += 1; // escaped quote
                        continue;
                    }
                    break;
                }
                i += 1;
            }
            out.push("<STR>".to_string());
        } else if c.is_ascii() {
            out.push((c as char).to_string());
            i += 1;
        } else {
            // Multi-byte UTF-8 char.
            let ch = text[i..].chars().next().expect("in bounds");
            out.push(ch.to_string());
            i += ch.len_utf8();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_tokens_drop_whitespace() {
        let t = char_tokens("SELECT *");
        assert_eq!(t, vec!["S", "E", "L", "E", "C", "T", "*"]);
    }

    #[test]
    fn figure_2a_char_count() {
        // The paper: Figure 2a's query has 48 character tokens excluding
        // spaces. (The statement is 53 chars with 5 spaces... our count
        // checks internal consistency instead of the exact paper value.)
        let q = "SELECT * FROM PhotoTag WHERE objId=0x112d075f80360018";
        let t = char_tokens(q);
        assert_eq!(t.len(), q.chars().filter(|c| !c.is_whitespace()).count());
    }

    #[test]
    fn word_tokens_replace_digits() {
        let t = word_tokens("SELECT ra FROM PhotoObj WHERE objid=12345 AND x<1.5e3");
        // `1.5e3` collapses to one <DIGIT>: the numeric scanner accepts
        // hex-digit characters so that `0x...` ids and exponents both fold.
        assert_eq!(
            t,
            vec![
                "select", "ra", "from", "photoobj", "where", "objid", "=", "<DIGIT>", "and", "x",
                "<", "<DIGIT>"
            ]
        );
    }

    #[test]
    fn word_tokens_hex_is_digit() {
        let t = word_tokens("objId=0x112d075f80360018");
        assert_eq!(t, vec!["objid", "=", "<DIGIT>"]);
    }

    #[test]
    fn word_tokens_strings_collapse() {
        let t = word_tokens("dbo.fPhotoFlags('BLENDED')");
        assert_eq!(t, vec!["dbo", ".", "fphotoflags", "(", "<STR>", ")"]);
    }

    #[test]
    fn word_tokens_handle_unicode_and_empty() {
        assert!(word_tokens("").is_empty());
        let t = word_tokens("¿que?");
        assert!(t.contains(&"¿".to_string()));
        assert!(t.contains(&"que".to_string()));
    }

    #[test]
    fn escaped_quote_stays_one_string() {
        let t = word_tokens("SELECT 'it''s' FROM t");
        assert_eq!(t, vec!["select", "<STR>", "from", "t"]);
    }
}
