//! # sqlan-par
//!
//! Deterministic data parallelism for the `sqlan` workspace: a small
//! `std::thread`-based fork-join pool exposing [`par_map`] /
//! [`par_chunks`] / [`scope`] with **input-order merge semantics**.
//!
//! ## The determinism contract
//!
//! Every combinator in this crate guarantees: *for a pure per-item
//! function, the output is a pure function of the input — independent of
//! the number of worker threads, of OS scheduling, and of which worker
//! processes which item.*  Concretely:
//!
//! * [`par_map`] returns results in input order; item `i`'s result lands
//!   at index `i` no matter which worker computed it.
//! * [`par_chunks`] splits the input at **fixed** chunk boundaries derived
//!   only from `chunk_size` (never from the thread count) and returns one
//!   result per chunk, in chunk order. A caller that folds those results
//!   left-to-right therefore performs a reduction whose association order
//!   is fixed — which is what keeps floating-point reductions bit-identical
//!   at 1, 3, or 8 threads.
//! * Panics inside a worker propagate to the caller (no deadlock, no
//!   swallowed results).
//!
//! ## Thread-count knob
//!
//! The effective worker count is resolved, in priority order, from
//! 1. a scoped override installed by [`with_threads`] (used by tests and
//!    benches to pin a count without touching process state),
//! 2. the `SQLAN_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.
//!
//! Workers spawned by this crate inherit a *share* of the caller's
//! resolved count (K workers each carry ⌈T/K⌉), so nested parallel calls
//! (e.g. per-minibatch gradient sums inside a per-model training
//! fan-out) stay within the same overall budget instead of multiplying
//! it — and a pinned count of 1 keeps nested stages sequential too.
//!
//! ## Why not rayon?
//!
//! This environment is offline — no external crates. Beyond that, the
//! paper pipeline's stages are coarse (milliseconds to seconds per item),
//! so a fork-join that spawns scoped threads per call loses nothing
//! measurable to a persistent pool, stays 100% safe (no `unsafe` lifetime
//! erasure, which a persistent pool taking non-`'static` borrows would
//! need), and keeps the determinism contract trivially auditable.
//!
//! ## Thread-locals and scoped workers
//!
//! Because workers are per-call scoped threads, worker `thread_local!`
//! state does **not** persist across parallel calls — it lives for one
//! `par_map`/`par_chunks` invocation. Callers that keep thread-local
//! caches for reuse (e.g. `sqlan-nn`'s tensor buffer arena) get full
//! cross-call reuse on the caller thread (which runs the whole input
//! when the resolved count is 1 — the single-core hot path) and
//! within-call reuse on workers (a worker processes many items per
//! invocation, warming its cache on the first). This is the deliberate
//! trade for the safety/determinism properties above.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub use std::thread::{scope, Scope};

/// Environment variable naming the default worker count.
pub const THREADS_ENV: &str = "SQLAN_THREADS";

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Resolve the effective worker count: scoped override → `SQLAN_THREADS`
/// → available parallelism. Always at least 1.
pub fn configured_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Some(n) = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n >= 1 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The scoped thread budget currently installed on this thread, if any —
/// `Some` inside [`with_threads`] and inside pool workers (which carry a
/// share of their parent's budget). Callers that pin their own count
/// should clamp it to this so nesting never multiplies threads.
pub fn thread_override() -> Option<usize> {
    THREAD_OVERRIDE.with(Cell::get)
}

/// Run `f` with the worker count pinned to `n` on this thread (and, via
/// inheritance, inside any parallel region it opens). Restores the
/// previous setting on exit, including on panic.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// A fork-join worker pool with a fixed thread budget.
///
/// `Pool` is a thread *budget*, not a set of live OS threads: each
/// parallel call spawns up to `threads` scoped workers and joins them
/// before returning, so borrows of caller-stack data need no `'static`
/// bound and a panicking worker can never leak past the call.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with an explicit thread budget (clamped to ≥ 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The pool configured by [`with_threads`] / `SQLAN_THREADS` /
    /// available parallelism.
    pub fn current() -> Pool {
        Pool::new(configured_threads())
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with this pool's budget installed as the ambient thread
    /// count, so free-function parallel calls (`par_map`/`par_chunks`)
    /// and nested [`Pool::current`] lookups inside `f` stay within it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_threads(self.threads, f)
    }

    /// Parallel map with input-order results. See [`par_map`].
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.run_indexed(items.len(), |i| f(&items[i]))
    }

    /// Parallel map over fixed-size chunks, one result per chunk in chunk
    /// order. See [`par_chunks`].
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let n_chunks = items.len().div_ceil(chunk_size);
        self.run_indexed(n_chunks, |c| {
            let start = c * chunk_size;
            let end = (start + chunk_size).min(items.len());
            f(&items[start..end])
        })
    }

    /// Dynamic (work-stealing) index dispatch with a deterministic merge:
    /// workers grab the next unclaimed index from a shared counter, stash
    /// `(index, result)` pairs locally, and the caller scatters them back
    /// into input order after the join.
    fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            // Still install this pool's budget so nested parallel calls
            // honor an explicitly pinned count (e.g. `TrainConfig`'s
            // `threads: 1` must keep inner stages sequential too).
            return with_threads(self.threads, || (0..n).map(f).collect());
        }
        let next = AtomicUsize::new(0);
        // Split the budget across siblings: K workers each carrying
        // ceil(T/K) keeps the total compute-thread count ≈ T under
        // nesting (model fan-out × minibatch fan-out) instead of K×T.
        let inherit = self.threads.div_ceil(workers);
        let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        // Workers inherit a share of the caller's thread
                        // budget so nested parallel regions stay inside
                        // the same overall knob.
                        with_threads(inherit, || {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                local.push((i, f(i)));
                            }
                            local
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(local) => local,
                    // Re-raise the worker's panic on the calling thread;
                    // remaining workers are joined by the scope on unwind.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in buckets.into_iter().flatten() {
            debug_assert!(out[i].is_none(), "index {i} produced twice");
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|slot| slot.expect("every index produced exactly once"))
            .collect()
    }
}

/// Map `f` over `items` in parallel on [`Pool::current`], returning
/// results in input order regardless of thread count or scheduling.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    Pool::current().par_map(items, f)
}

/// Map `f` over fixed-size chunks of `items` in parallel on
/// [`Pool::current`]. Chunk boundaries depend only on `chunk_size`, so a
/// left-to-right fold of the returned per-chunk results is a reduction
/// with a fixed association order — deterministic at any thread count.
pub fn par_chunks<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    Pool::current().par_chunks(items, chunk_size, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let got = Pool::new(threads).par_map(&items, |&x| x * 2);
            let want: Vec<usize> = items.iter().map(|&x| x * 2).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_boundaries_are_thread_independent() {
        let items: Vec<u32> = (0..103).collect();
        let sums =
            |threads: usize| Pool::new(threads).par_chunks(&items, 10, |c| c.iter().sum::<u32>());
        let a = sums(1);
        for t in [2, 5, 16] {
            assert_eq!(a, sums(t));
        }
        assert_eq!(a.len(), 11); // ceil(103 / 10)
        assert_eq!(a.iter().sum::<u32>(), items.iter().sum::<u32>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(Pool::new(4).par_map(&empty, |&x| x).is_empty());
        assert!(Pool::new(4).par_chunks(&empty, 3, |c| c.len()).is_empty());
        assert_eq!(Pool::new(4).par_map(&[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let before = configured_threads();
        let inside = with_threads(3, configured_threads);
        assert_eq!(inside, 3);
        assert_eq!(configured_threads(), before);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = configured_threads();
        let result = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(configured_threads(), before);
    }

    #[test]
    fn workers_split_the_thread_budget() {
        // 2 workers over a budget of 8 → each inherits 8/2 = 4 for
        // nested regions (total stays ≈ the budget under nesting).
        let observed = Pool::new(8).par_map(&[0, 1], |_| configured_threads());
        assert_eq!(observed, vec![4; 2]);
    }

    #[test]
    fn sequential_fallback_pins_nested_calls() {
        // A pinned 1-thread pool takes the inline path but must still
        // force nested (global-pool) stages down to 1 thread.
        let observed = with_threads(6, || Pool::new(1).par_map(&[()], |_| configured_threads()));
        assert_eq!(observed, vec![1]);
    }

    #[test]
    fn panic_propagates_not_deadlocks() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).par_map(&items, |&x| {
                if x == 13 {
                    panic!("unlucky");
                }
                x
            })
        });
        assert!(result.is_err());
    }
}
