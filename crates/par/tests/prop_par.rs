//! Property tests for the deterministic pool: `par_map` ≡ sequential
//! `map` for arbitrary input lengths (including 0 and 1) and arbitrary
//! thread counts, fixed chunk semantics for `par_chunks`, and panic
//! propagation (a panicking closure must abort the call, not deadlock).

use proptest::prelude::*;
use sqlan_par::Pool;

/// A cheap non-trivial pure function to map.
fn mix(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn par_map_equals_sequential_map(len in 0usize..200, threads in 1usize..12) {
        let items: Vec<u64> = (0..len as u64).collect();
        let got = Pool::new(threads).par_map(&items, |&x| mix(x));
        let want: Vec<u64> = items.iter().map(|&x| mix(x)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn par_chunks_boundaries_ignore_thread_count(
        len in 0usize..300,
        chunk in 1usize..50,
        threads in 1usize..12,
    ) {
        let wsum = |c: &[u64]| c.iter().fold(0u64, |acc, &x| acc.wrapping_add(x));
        let items: Vec<u64> = (0..len as u64).map(mix).collect();
        let got = Pool::new(threads).par_chunks(&items, chunk, |c| (c.len(), wsum(c)));
        let want: Vec<(usize, u64)> = items.chunks(chunk).map(|c| (c.len(), wsum(c))).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn free_functions_respect_with_threads(len in 0usize..120, threads in 1usize..9) {
        let items: Vec<u64> = (0..len as u64).collect();
        let got = sqlan_par::with_threads(threads, || sqlan_par::par_map(&items, |&x| mix(x)));
        let want: Vec<u64> = items.iter().map(|&x| mix(x)).collect();
        prop_assert_eq!(got, want);
    }
}

proptest! {
    // Fewer cases: each one unwinds worker threads.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn panicking_closure_propagates_not_deadlocks(
        len in 1usize..100,
        threads in 1usize..9,
        victim_seed in 0u64..1_000,
    ) {
        let items: Vec<usize> = (0..len).collect();
        let victim = (victim_seed as usize) % len;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Pool::new(threads).par_map(&items, |&x| {
                if x == victim {
                    panic!("deliberate test panic");
                }
                x
            })
        }));
        prop_assert!(result.is_err(), "panic must propagate to the caller");
    }
}
