//! Property-based tests for the lexer/parser/property-extractor.
//!
//! The central robustness invariant of the whole system: *any* byte string
//! is a legal workload entry (the SDSS portal accepts free text), so none
//! of the text-handling layers may panic, and their outputs must satisfy
//! basic structural invariants.

use proptest::prelude::*;
use sqlan_sql::{extract_props, lex, parse, parse_script};

proptest! {
    /// Lexing arbitrary strings never panics, spans are in-bounds,
    /// non-overlapping, and monotonically increasing.
    #[test]
    fn lex_total_and_spans_monotonic(input in ".{0,400}") {
        let (toks, _report) = lex(&input);
        let mut prev_end = 0u32;
        for t in &toks {
            prop_assert!(t.span.start >= prev_end, "overlapping spans");
            prop_assert!(t.span.end >= t.span.start);
            prop_assert!((t.span.end as usize) <= input.len());
            prev_end = t.span.end; // tokens are ordered
        }
    }

    /// Parsing arbitrary strings never panics.
    #[test]
    fn parse_total(input in ".{0,400}") {
        let _ = parse(&input);
    }

    /// Property extraction never panics, and text-level counts hold.
    #[test]
    fn props_total_and_consistent(input in ".{0,400}") {
        let p = extract_props(&input);
        prop_assert_eq!(p.num_chars as usize, input.chars().count());
        // Column references inside predicates cannot exceed total words.
        prop_assert!(p.num_predicate_columns <= p.num_words.max(1) * 2);
    }

    /// SQL-shaped fuzzing: random SQL-ish token soup never panics and,
    /// when it parses, the rendered form reparses to the same rendering
    /// (display is a fixed point after one round).
    #[test]
    fn render_reparse_fixed_point(
        raw_cols in prop::collection::vec("[a-z][a-z0-9_]{0,8}", 1..5),
        raw_tbl in "[A-Za-z][A-Za-z0-9_]{0,12}",
        n in 0u32..1000,
        use_where in any::<bool>(),
    ) {
        // Random identifiers can collide with reserved keywords ("by",
        // "on", ...); prefix them so the generated SQL is well-formed.
        let cols: Vec<String> = raw_cols.iter().map(|c| format!("c_{c}")).collect();
        let tbl = format!("t_{raw_tbl}");
        let select = cols.join(", ");
        let sql = if use_where {
            format!("SELECT {select} FROM {tbl} WHERE {} > {n}", cols[0])
        } else {
            format!("SELECT {select} FROM {tbl}")
        };
        let s1 = parse_script(&sql).expect("generated SQL must parse");
        let text1 = format!("{}", s1.statements[0]);
        let s2 = parse_script(&text1).expect("rendered SQL must reparse");
        let text2 = format!("{}", s2.statements[0]);
        prop_assert_eq!(text1, text2);
    }

    /// Parenthesizing a whole WHERE expression never changes predicate
    /// counts (parentheses are structural no-ops at the boolean level).
    #[test]
    fn parens_do_not_change_predicate_count(
        a in 0u32..100, b in 0u32..100,
    ) {
        let q1 = format!("SELECT x FROM t WHERE a = {a} AND b = {b}");
        let q2 = format!("SELECT x FROM t WHERE (a = {a} AND b = {b})");
        let p1 = extract_props(&q1);
        let p2 = extract_props(&q2);
        prop_assert_eq!(p1.num_predicates, p2.num_predicates);
        prop_assert_eq!(p1.num_predicate_columns, p2.num_predicate_columns);
    }

    /// Keyword case never affects the parse result.
    #[test]
    fn keyword_case_insensitive(upper in any::<bool>()) {
        let sql = if upper {
            "SELECT X FROM T WHERE Y = 1 ORDER BY X DESC"
        } else {
            "select X from T where Y = 1 order by X desc"
        };
        let s = parse_script(sql).expect("must parse");
        assert_eq!(s.statement_type(), "SELECT");
    }
}
