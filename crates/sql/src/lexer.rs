//! A tolerant SQL lexer.
//!
//! Real workloads contain arbitrary text — the SDSS portal accepts anything
//! from valid T-SQL to pasted natural language. The lexer therefore never
//! fails: unclassifiable bytes become [`Tok::Unknown`] and unterminated
//! strings are recorded via [`LexReport::unterminated_string`] while still
//! producing a token stream, so downstream consumers (feature extractors,
//! the error model) always have something to work with.

use crate::token::{Keyword, Op, Span, SpannedTok, Tok};

/// Diagnostics gathered while lexing; these feed the error model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LexReport {
    /// A string literal reached end-of-input without a closing quote.
    pub unterminated_string: bool,
    /// A block comment reached end-of-input without `*/`.
    pub unterminated_comment: bool,
    /// Number of bytes that could not be classified.
    pub unknown_bytes: usize,
}

impl LexReport {
    /// True when the input lexed without any irregularity.
    pub fn is_clean(&self) -> bool {
        !self.unterminated_string && !self.unterminated_comment && self.unknown_bytes == 0
    }
}

/// Lex `input` completely. Never fails; see [`LexReport`].
pub fn lex(input: &str) -> (Vec<SpannedTok>, LexReport) {
    let mut lx = Lexer {
        src: input.as_bytes(),
        pos: 0,
        report: LexReport::default(),
    };
    let mut out = Vec::with_capacity(input.len() / 4 + 4);
    while let Some(t) = lx.next_token(input) {
        out.push(t);
    }
    (out, lx.report)
}

/// Convenience: tokens only, dropping the report.
pub fn lex_tokens(input: &str) -> Vec<SpannedTok> {
    lex(input).0
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    report: LexReport,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // -- line comment
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // /* block comment */
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.pos += 2;
                    let mut closed = false;
                    while let Some(b) = self.bump() {
                        if b == b'*' && self.peek() == Some(b'/') {
                            self.pos += 1;
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        self.report.unterminated_comment = true;
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self, input: &str) -> Option<SpannedTok> {
        self.skip_trivia();
        let start = self.pos;
        let b = self.peek()?;

        let tok = match b {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b';' => {
                self.pos += 1;
                Tok::Semicolon
            }
            b'.' => {
                // `.5` is a number; `a.b` is a dot.
                if self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                    self.lex_number(input)
                } else {
                    self.pos += 1;
                    Tok::Dot
                }
            }
            b'\'' => self.lex_string(input),
            b'[' => self.lex_bracketed(input),
            b'"' => self.lex_quoted_ident(input),
            b'0' if self.peek2() == Some(b'x') || self.peek2() == Some(b'X') => self.lex_hex(input),
            b'0'..=b'9' => self.lex_number(input),
            b'=' => {
                self.pos += 1;
                Tok::Op(Op::Eq)
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        Tok::Op(Op::Lte)
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        Tok::Op(Op::Neq)
                    }
                    _ => Tok::Op(Op::Lt),
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Tok::Op(Op::Gte)
                } else {
                    Tok::Op(Op::Gt)
                }
            }
            b'!' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Tok::Op(Op::Neq)
                } else {
                    self.report.unknown_bytes += 1;
                    Tok::Unknown('!')
                }
            }
            b'+' => {
                self.pos += 1;
                Tok::Op(Op::Plus)
            }
            b'-' => {
                self.pos += 1;
                Tok::Op(Op::Minus)
            }
            b'*' => {
                self.pos += 1;
                Tok::Op(Op::Star)
            }
            b'/' => {
                self.pos += 1;
                Tok::Op(Op::Slash)
            }
            b'%' => {
                self.pos += 1;
                Tok::Op(Op::Percent)
            }
            b'&' => {
                self.pos += 1;
                Tok::Op(Op::BitAnd)
            }
            b'|' => {
                self.pos += 1;
                if self.peek() == Some(b'|') {
                    self.pos += 1;
                    Tok::Op(Op::Concat)
                } else {
                    Tok::Op(Op::BitOr)
                }
            }
            b'^' => {
                self.pos += 1;
                Tok::Op(Op::BitXor)
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'@' || c == b'#' => {
                self.lex_word(input)
            }
            _ => {
                // Multi-byte UTF-8 or stray punctuation: emit one char as
                // Unknown so arbitrary text survives.
                let s = &input[self.pos..];
                let ch = s.chars().next().expect("non-empty by peek");
                self.pos += ch.len_utf8();
                self.report.unknown_bytes += ch.len_utf8();
                Tok::Unknown(ch)
            }
        };

        Some(SpannedTok {
            tok,
            span: Span::new(start, self.pos),
        })
    }

    fn lex_word(&mut self, input: &str) -> Tok {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'@' || b == b'#' || b == b'$' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = &input[start..self.pos];
        match Keyword::parse(word) {
            Some(kw) => Tok::Keyword(kw),
            None => Tok::Ident(word.to_string()),
        }
    }

    fn lex_number(&mut self, input: &str) -> Tok {
        let start = self.pos;
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !seen_dot && !seen_exp => {
                    seen_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !seen_exp => {
                    // Only an exponent if followed by digit or sign+digit.
                    let next = self.peek2();
                    let next2 = self.src.get(self.pos + 2).copied();
                    let is_exp = match next {
                        Some(d) if d.is_ascii_digit() => true,
                        Some(b'+') | Some(b'-') => next2.is_some_and(|d| d.is_ascii_digit()),
                        _ => false,
                    };
                    if !is_exp {
                        break;
                    }
                    seen_exp = true;
                    self.pos += 2; // e and sign-or-digit
                    if next == Some(b'+') || next == Some(b'-') {
                        // consumed sign; digit comes via the loop
                    }
                }
                _ => break,
            }
        }
        Tok::Number(input[start..self.pos].to_string())
    }

    fn lex_hex(&mut self, input: &str) -> Tok {
        let start = self.pos;
        self.pos += 2; // 0x
        while let Some(b) = self.peek() {
            if b.is_ascii_hexdigit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        Tok::HexNumber(input[start..self.pos].to_string())
    }

    fn lex_string(&mut self, input: &str) -> Tok {
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                None => {
                    self.report.unterminated_string = true;
                    break;
                }
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        // '' escape
                        value.push('\'');
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Some(b) if b.is_ascii() => value.push(b as char),
                Some(_) => {
                    // Re-decode the full UTF-8 char.
                    let prev = self.pos - 1;
                    let s = &input[prev..];
                    let ch = s.chars().next().expect("non-empty");
                    value.push(ch);
                    self.pos = prev + ch.len_utf8();
                }
            }
        }
        Tok::String(value)
    }

    fn lex_bracketed(&mut self, input: &str) -> Tok {
        self.pos += 1; // [
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b']' {
                break;
            }
            self.pos += 1;
        }
        let name = input[start..self.pos].to_string();
        if self.peek() == Some(b']') {
            self.pos += 1;
        } else {
            self.report.unterminated_string = true;
        }
        Tok::Ident(name)
    }

    fn lex_quoted_ident(&mut self, input: &str) -> Tok {
        self.pos += 1; // "
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                break;
            }
            self.pos += 1;
        }
        let name = input[start..self.pos].to_string();
        if self.peek() == Some(b'"') {
            self.pos += 1;
        } else {
            self.report.unterminated_string = true;
        }
        Tok::Ident(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Keyword as K;

    fn toks(s: &str) -> Vec<Tok> {
        lex_tokens(s).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_simple_select() {
        let t = toks("SELECT * FROM PhotoTag WHERE objId=0x112d075f80360018");
        assert_eq!(
            t,
            vec![
                Tok::Keyword(K::Select),
                Tok::Op(Op::Star),
                Tok::Keyword(K::From),
                Tok::Ident("PhotoTag".into()),
                Tok::Keyword(K::Where),
                Tok::Ident("objId".into()),
                Tok::Op(Op::Eq),
                Tok::HexNumber("0x112d075f80360018".into()),
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("1 2.5 .5 1e3 1.5e-2 62.835405"),
            vec![
                Tok::Number("1".into()),
                Tok::Number("2.5".into()),
                Tok::Number(".5".into()),
                Tok::Number("1e3".into()),
                Tok::Number("1.5e-2".into()),
                Tok::Number("62.835405".into()),
            ]
        );
    }

    #[test]
    fn number_then_dot_then_ident_is_not_exponent() {
        // `1.e` would be ambiguous; ensure `12e` with no digits stays split.
        assert_eq!(
            toks("12easter"),
            vec![Tok::Number("12".into()), Tok::Ident("easter".into()),]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            toks("'BLENDED' 'it''s'"),
            vec![Tok::String("BLENDED".into()), Tok::String("it's".into()),]
        );
    }

    #[test]
    fn unterminated_string_is_reported_not_fatal() {
        let (t, rep) = lex("SELECT 'oops");
        assert!(rep.unterminated_string);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lexes_comments() {
        let t = toks("SELECT 1 -- trailing\n/* block */ FROM x");
        assert_eq!(t[0], Tok::Keyword(K::Select));
        assert!(t.iter().any(|x| x.is_kw(K::From)));
    }

    #[test]
    fn bracketed_and_quoted_identifiers() {
        assert_eq!(
            toks("[My Table] \"col name\""),
            vec![Tok::Ident("My Table".into()), Tok::Ident("col name".into()),]
        );
    }

    #[test]
    fn bitwise_and_comparison_operators() {
        assert_eq!(
            toks("a & b <> c <= d != e || f"),
            vec![
                Tok::Ident("a".into()),
                Tok::Op(Op::BitAnd),
                Tok::Ident("b".into()),
                Tok::Op(Op::Neq),
                Tok::Ident("c".into()),
                Tok::Op(Op::Lte),
                Tok::Ident("d".into()),
                Tok::Op(Op::Neq),
                Tok::Ident("e".into()),
                Tok::Op(Op::Concat),
                Tok::Ident("f".into()),
            ]
        );
    }

    #[test]
    fn arbitrary_text_survives() {
        let (t, rep) = lex("please show me the galaxies ¿que?");
        assert!(!t.is_empty());
        assert!(rep.unknown_bytes > 0); // the ¿ character
    }

    #[test]
    fn at_variables_lex_as_idents() {
        assert_eq!(
            toks("@x #tmp"),
            vec![Tok::Ident("@x".into()), Tok::Ident("#tmp".into()),]
        );
    }
}
