//! A tolerant SQL lexer.
//!
//! Real workloads contain arbitrary text — the SDSS portal accepts anything
//! from valid T-SQL to pasted natural language. The lexer therefore never
//! fails: unclassifiable bytes become [`Tok::Unknown`] and unterminated
//! strings are recorded via [`LexReport::unterminated_string`] while still
//! producing a token stream, so downstream consumers (feature extractors,
//! the error model) always have something to work with.
//!
//! Internally the lexer is split into a span-only scanner ([`RawLexer`],
//! crate-private) and a materializing wrapper ([`lex`]). The raw scanner
//! allocates nothing; it is shared with the template-fingerprint pass in
//! [`crate::fingerprint`], which guarantees that the fingerprint probe and
//! the full tokenization agree on every byte of every input by
//! construction — there is exactly one tokenizer.

use crate::token::{Keyword, Op, Span, SpannedTok, Tok};

/// Diagnostics gathered while lexing; these feed the error model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LexReport {
    /// A string literal reached end-of-input without a closing quote.
    pub unterminated_string: bool,
    /// A block comment reached end-of-input without `*/`.
    pub unterminated_comment: bool,
    /// Number of bytes that could not be classified.
    pub unknown_bytes: usize,
}

impl LexReport {
    /// True when the input lexed without any irregularity.
    pub fn is_clean(&self) -> bool {
        !self.unterminated_string && !self.unterminated_comment && self.unknown_bytes == 0
    }
}

/// Lex `input` completely. Never fails; see [`LexReport`].
pub fn lex(input: &str) -> (Vec<SpannedTok>, LexReport) {
    let mut lx = RawLexer::new(input);
    let mut out = Vec::with_capacity(input.len() / 4 + 4);
    while let Some(rt) = lx.next_raw() {
        out.push(SpannedTok {
            tok: materialize(input, &rt),
            span: Span::new(rt.lo, rt.hi),
        });
    }
    (out, lx.report)
}

/// Convenience: tokens only, dropping the report.
pub fn lex_tokens(input: &str) -> Vec<SpannedTok> {
    lex(input).0
}

/// Kind of a raw (span-only) token. No text is materialized; the span plus
/// the flags carried here are sufficient to reconstruct the [`Tok`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum RawKind {
    Keyword(Keyword),
    /// A bare identifier word that is not a keyword.
    Word,
    Number,
    HexNumber,
    /// Single-quoted string. The span includes the quotes; `escaped` is set
    /// when the body contains a doubled-quote escape.
    Str {
        terminated: bool,
        escaped: bool,
    },
    /// `[bracketed]` identifier; span includes the brackets.
    Bracketed {
        terminated: bool,
    },
    /// `"quoted"` identifier; span includes the quotes.
    Quoted {
        terminated: bool,
    },
    Op(Op),
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Unknown(char),
}

/// A raw token: kind plus the half-open byte range it covers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RawTok {
    pub(crate) kind: RawKind,
    pub(crate) lo: usize,
    pub(crate) hi: usize,
}

impl RawTok {
    /// The source text covered by this token.
    pub(crate) fn text<'a>(&self, input: &'a str) -> &'a str {
        &input[self.lo..self.hi]
    }

    /// For string/bracketed/quoted tokens: the text between the delimiters
    /// (still escaped for strings). For everything else, the full text.
    pub(crate) fn inner<'a>(&self, input: &'a str) -> &'a str {
        match self.kind {
            RawKind::Str { terminated, .. }
            | RawKind::Bracketed { terminated }
            | RawKind::Quoted { terminated } => {
                let hi = if terminated { self.hi - 1 } else { self.hi };
                &input[self.lo + 1..hi]
            }
            _ => self.text(input),
        }
    }
}

/// Unescape a raw string token's body. Allocation-free unless the body
/// contains a `''` escape.
pub(crate) fn str_value<'a>(input: &'a str, rt: &RawTok) -> std::borrow::Cow<'a, str> {
    let inner = rt.inner(input);
    match rt.kind {
        RawKind::Str { escaped: true, .. } => std::borrow::Cow::Owned(inner.replace("''", "'")),
        _ => std::borrow::Cow::Borrowed(inner),
    }
}

/// Turn a raw token into the owned [`Tok`] the parser consumes.
pub(crate) fn materialize(input: &str, rt: &RawTok) -> Tok {
    match rt.kind {
        RawKind::Keyword(kw) => Tok::Keyword(kw),
        RawKind::Word => Tok::Ident(rt.text(input).to_string()),
        RawKind::Number => Tok::Number(rt.text(input).to_string()),
        RawKind::HexNumber => Tok::HexNumber(rt.text(input).to_string()),
        RawKind::Str { .. } => Tok::String(str_value(input, rt).into_owned()),
        RawKind::Bracketed { .. } | RawKind::Quoted { .. } => {
            Tok::Ident(rt.inner(input).to_string())
        }
        RawKind::Op(op) => Tok::Op(op),
        RawKind::LParen => Tok::LParen,
        RawKind::RParen => Tok::RParen,
        RawKind::Comma => Tok::Comma,
        RawKind::Dot => Tok::Dot,
        RawKind::Semicolon => Tok::Semicolon,
        RawKind::Unknown(c) => Tok::Unknown(c),
    }
}

/// The span-only scanner. Crate-private; use [`lex`] or the fingerprint
/// entry points in [`crate::fingerprint`].
pub(crate) struct RawLexer<'a> {
    src: &'a [u8],
    input: &'a str,
    pos: usize,
    pub(crate) report: LexReport,
}

impl<'a> RawLexer<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        RawLexer {
            src: input.as_bytes(),
            input,
            pos: 0,
            report: LexReport::default(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // -- line comment
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // /* block comment */
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.pos += 2;
                    let mut closed = false;
                    while let Some(b) = self.bump() {
                        if b == b'*' && self.peek() == Some(b'/') {
                            self.pos += 1;
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        self.report.unterminated_comment = true;
                    }
                }
                _ => break,
            }
        }
    }

    pub(crate) fn next_raw(&mut self) -> Option<RawTok> {
        self.skip_trivia();
        let start = self.pos;
        let b = self.peek()?;

        let kind = match b {
            b'(' => {
                self.pos += 1;
                RawKind::LParen
            }
            b')' => {
                self.pos += 1;
                RawKind::RParen
            }
            b',' => {
                self.pos += 1;
                RawKind::Comma
            }
            b';' => {
                self.pos += 1;
                RawKind::Semicolon
            }
            b'.' => {
                // `.5` is a number; `a.b` is a dot.
                if self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                    self.lex_number()
                } else {
                    self.pos += 1;
                    RawKind::Dot
                }
            }
            b'\'' => self.lex_string(),
            b'[' => self.lex_delimited(b']'),
            b'"' => self.lex_delimited(b'"'),
            b'0' if self.peek2() == Some(b'x') || self.peek2() == Some(b'X') => self.lex_hex(),
            b'0'..=b'9' => self.lex_number(),
            b'=' => {
                self.pos += 1;
                RawKind::Op(Op::Eq)
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        RawKind::Op(Op::Lte)
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        RawKind::Op(Op::Neq)
                    }
                    _ => RawKind::Op(Op::Lt),
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    RawKind::Op(Op::Gte)
                } else {
                    RawKind::Op(Op::Gt)
                }
            }
            b'!' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    RawKind::Op(Op::Neq)
                } else {
                    self.report.unknown_bytes += 1;
                    RawKind::Unknown('!')
                }
            }
            b'+' => {
                self.pos += 1;
                RawKind::Op(Op::Plus)
            }
            b'-' => {
                self.pos += 1;
                RawKind::Op(Op::Minus)
            }
            b'*' => {
                self.pos += 1;
                RawKind::Op(Op::Star)
            }
            b'/' => {
                self.pos += 1;
                RawKind::Op(Op::Slash)
            }
            b'%' => {
                self.pos += 1;
                RawKind::Op(Op::Percent)
            }
            b'&' => {
                self.pos += 1;
                RawKind::Op(Op::BitAnd)
            }
            b'|' => {
                self.pos += 1;
                if self.peek() == Some(b'|') {
                    self.pos += 1;
                    RawKind::Op(Op::Concat)
                } else {
                    RawKind::Op(Op::BitOr)
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'@' || c == b'#' => self.lex_word(),
            _ => {
                // Multi-byte UTF-8 or stray punctuation: emit one char as
                // Unknown so arbitrary text survives.
                let s = &self.input[self.pos..];
                let ch = s.chars().next().expect("non-empty by peek");
                self.pos += ch.len_utf8();
                self.report.unknown_bytes += ch.len_utf8();
                RawKind::Unknown(ch)
            }
        };

        Some(RawTok {
            kind,
            lo: start,
            hi: self.pos,
        })
    }

    fn lex_word(&mut self) -> RawKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'@' || b == b'#' || b == b'$' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = &self.input[start..self.pos];
        match Keyword::parse(word) {
            Some(kw) => RawKind::Keyword(kw),
            None => RawKind::Word,
        }
    }

    fn lex_number(&mut self) -> RawKind {
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !seen_dot && !seen_exp => {
                    seen_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !seen_exp => {
                    // Only an exponent if followed by digit or sign+digit.
                    let next = self.peek2();
                    let next2 = self.src.get(self.pos + 2).copied();
                    let is_exp = match next {
                        Some(d) if d.is_ascii_digit() => true,
                        Some(b'+') | Some(b'-') => next2.is_some_and(|d| d.is_ascii_digit()),
                        _ => false,
                    };
                    if !is_exp {
                        break;
                    }
                    seen_exp = true;
                    self.pos += 2; // e and sign-or-digit
                }
                _ => break,
            }
        }
        RawKind::Number
    }

    fn lex_hex(&mut self) -> RawKind {
        self.pos += 2; // 0x
        while let Some(b) = self.peek() {
            if b.is_ascii_hexdigit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        RawKind::HexNumber
    }

    fn lex_string(&mut self) -> RawKind {
        self.pos += 1; // opening quote
        let mut terminated = false;
        let mut escaped = false;
        // Byte-wise scan is UTF-8 safe: `'` (0x27) never appears inside a
        // multi-byte sequence.
        loop {
            match self.bump() {
                None => {
                    self.report.unterminated_string = true;
                    break;
                }
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        // '' escape
                        escaped = true;
                        self.pos += 1;
                    } else {
                        terminated = true;
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        RawKind::Str {
            terminated,
            escaped,
        }
    }

    fn lex_delimited(&mut self, close: u8) -> RawKind {
        self.pos += 1; // [ or "
        while let Some(b) = self.peek() {
            if b == close {
                break;
            }
            self.pos += 1;
        }
        let terminated = self.peek() == Some(close);
        if terminated {
            self.pos += 1;
        } else {
            self.report.unterminated_string = true;
        }
        if close == b']' {
            RawKind::Bracketed { terminated }
        } else {
            RawKind::Quoted { terminated }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Keyword as K;

    fn toks(s: &str) -> Vec<Tok> {
        lex_tokens(s).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_simple_select() {
        let t = toks("SELECT * FROM PhotoTag WHERE objId=0x112d075f80360018");
        assert_eq!(
            t,
            vec![
                Tok::Keyword(K::Select),
                Tok::Op(Op::Star),
                Tok::Keyword(K::From),
                Tok::Ident("PhotoTag".into()),
                Tok::Keyword(K::Where),
                Tok::Ident("objId".into()),
                Tok::Op(Op::Eq),
                Tok::HexNumber("0x112d075f80360018".into()),
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("1 2.5 .5 1e3 1.5e-2 62.835405"),
            vec![
                Tok::Number("1".into()),
                Tok::Number("2.5".into()),
                Tok::Number(".5".into()),
                Tok::Number("1e3".into()),
                Tok::Number("1.5e-2".into()),
                Tok::Number("62.835405".into()),
            ]
        );
    }

    #[test]
    fn number_then_dot_then_ident_is_not_exponent() {
        // `1.e` would be ambiguous; ensure `12e` with no digits stays split.
        assert_eq!(
            toks("12easter"),
            vec![Tok::Number("12".into()), Tok::Ident("easter".into()),]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            toks("'BLENDED' 'it''s'"),
            vec![Tok::String("BLENDED".into()), Tok::String("it's".into()),]
        );
    }

    #[test]
    fn utf8_inside_string_survives() {
        assert_eq!(
            toks("'señor ''¿que?'''"),
            vec![Tok::String("señor '¿que?'".into())]
        );
    }

    #[test]
    fn unterminated_string_is_reported_not_fatal() {
        let (t, rep) = lex("SELECT 'oops");
        assert!(rep.unterminated_string);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unterminated_string_with_escape_keeps_escape() {
        assert_eq!(toks("'it''s"), vec![Tok::String("it's".into())]);
    }

    #[test]
    fn lexes_comments() {
        let t = toks("SELECT 1 -- trailing\n/* block */ FROM x");
        assert_eq!(t[0], Tok::Keyword(K::Select));
        assert!(t.iter().any(|x| x.is_kw(K::From)));
    }

    #[test]
    fn bracketed_and_quoted_identifiers() {
        assert_eq!(
            toks("[My Table] \"col name\""),
            vec![Tok::Ident("My Table".into()), Tok::Ident("col name".into()),]
        );
    }

    #[test]
    fn bitwise_and_comparison_operators() {
        assert_eq!(
            toks("a & b <> c <= d != e || f"),
            vec![
                Tok::Ident("a".into()),
                Tok::Op(Op::BitAnd),
                Tok::Ident("b".into()),
                Tok::Op(Op::Neq),
                Tok::Ident("c".into()),
                Tok::Op(Op::Lte),
                Tok::Ident("d".into()),
                Tok::Op(Op::Neq),
                Tok::Ident("e".into()),
                Tok::Op(Op::Concat),
                Tok::Ident("f".into()),
            ]
        );
    }

    #[test]
    fn arbitrary_text_survives() {
        let (t, rep) = lex("please show me the galaxies ¿que?");
        assert!(!t.is_empty());
        assert!(rep.unknown_bytes > 0); // the ¿ character
    }

    #[test]
    fn at_variables_lex_as_idents() {
        assert_eq!(
            toks("@x #tmp"),
            vec![Tok::Ident("@x".into()), Tok::Ident("#tmp".into()),]
        );
    }
}
