//! Abstract syntax tree for the supported SQL dialect.

use serde::{Deserialize, Serialize};

use crate::token::Op;

/// A possibly-qualified name such as `dbo.fPhotoFlags` or
/// `SDSSSQL010.MYDB_670681563.test.QSOQuery1_DR5`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QualifiedName {
    /// Name parts, outermost qualifier first.
    pub parts: Vec<String>,
}

impl QualifiedName {
    pub fn single(name: impl Into<String>) -> Self {
        QualifiedName {
            parts: vec![name.into()],
        }
    }

    pub fn new(parts: Vec<String>) -> Self {
        QualifiedName { parts }
    }

    /// The unqualified trailing name (`fPhotoFlags` of `dbo.fPhotoFlags`).
    pub fn base(&self) -> &str {
        self.parts.last().map(String::as_str).unwrap_or("")
    }

    /// Canonical lower-cased rendering used for identity comparisons.
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                s.push('.');
            }
            for ch in p.chars() {
                s.extend(ch.to_lowercase());
            }
        }
        s
    }
}

/// A literal value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// Integer or decimal literal; original text preserved alongside value.
    Number(f64, String),
    /// Hexadecimal literal, value reduced modulo u64.
    Hex(u64, String),
    /// String literal.
    String(String),
    /// NULL.
    Null,
}

impl Literal {
    /// Convert a numeric literal's source text to its value, exactly as the
    /// parser does. Shared with the fingerprint pass so a literal extracted
    /// into a plan-cache slot is bit-identical to the parsed one.
    pub fn number_from_text(text: String) -> Literal {
        let v = text.parse::<f64>().unwrap_or(f64::NAN);
        Literal::Number(v, text)
    }

    /// Convert a hex literal's source text (`0x…`), reducing modulo u64 by
    /// keeping the trailing 16 hex digits. Shared with the fingerprint pass.
    pub fn hex_from_text(text: String) -> Literal {
        let digits = &text[2..];
        let tail = &digits[digits.len().saturating_sub(16)..];
        let v = u64::from_str_radix(tail, 16).unwrap_or(0);
        Literal::Hex(v, text)
    }
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A column reference, possibly qualified with a table alias.
    Column(QualifiedName),
    /// `*` or `alias.*` in a select list or inside COUNT(*).
    Wildcard(Option<String>),
    /// A literal.
    Literal(Literal),
    /// A literal lifted into a plan-cache template parameter slot. Carries
    /// the value it was parsed from so a template behaves exactly like the
    /// statement it was built from; the cache rebinds every `Param` to the
    /// incoming statement's literal (by `slot`) before execution, so
    /// evaluation never sees this variant on a correct path.
    Param { slot: u32, value: Literal },
    /// Unary minus / NOT.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// A binary arithmetic/comparison/bitwise expression.
    Binary {
        left: Box<Expr>,
        op: Op,
        right: Box<Expr>,
    },
    /// AND / OR.
    Logical {
        left: Box<Expr>,
        and: bool,
        right: Box<Expr>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        negated: bool,
        low: Box<Expr>,
        high: Box<Expr>,
    },
    /// `expr [NOT] IN (list...)` or `expr [NOT] IN (subquery)`.
    InList {
        expr: Box<Expr>,
        negated: bool,
        list: Vec<Expr>,
    },
    InSubquery {
        expr: Box<Expr>,
        negated: bool,
        subquery: Box<Query>,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        expr: Box<Expr>,
        negated: bool,
        pattern: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `[NOT] EXISTS (subquery)`.
    Exists { negated: bool, subquery: Box<Query> },
    /// A scalar subquery `(SELECT ...)`.
    Subquery(Box<Query>),
    /// A function call; aggregates are represented here too.
    Function(FunctionCall),
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast { expr: Box<Expr>, ty: String },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    Neg,
    Not,
    Plus,
}

/// The five standard aggregates; everything else is a scalar function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Aggregate {
    Count,
    Min,
    Max,
    Avg,
    Sum,
}

impl Aggregate {
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::Count => "count",
            Aggregate::Min => "min",
            Aggregate::Max => "max",
            Aggregate::Avg => "avg",
            Aggregate::Sum => "sum",
        }
    }
}

/// A function call such as `dbo.fGetNearbyObjEq(185.0, -0.5, 1.0)` or
/// `COUNT(DISTINCT objid)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionCall {
    pub name: QualifiedName,
    /// Set when the function is one of the standard aggregates.
    pub aggregate: Option<Aggregate>,
    pub distinct: bool,
    pub args: Vec<Expr>,
}

/// One item of a select list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// Join operators (explicit `JOIN` syntax only; comma-separated FROM lists
/// are kept as multiple [`TableFactor`]s, matching how the paper counts
/// "join operators" — 5.91% of SDSS queries use one, even though many more
/// use comma joins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
}

/// A base table or derived table in FROM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableFactor {
    Table {
        name: QualifiedName,
        alias: Option<String>,
    },
    Derived {
        subquery: Box<Query>,
        alias: Option<String>,
    },
}

impl TableFactor {
    pub fn alias(&self) -> Option<&str> {
        match self {
            TableFactor::Table { alias, .. } | TableFactor::Derived { alias, .. } => {
                alias.as_deref()
            }
        }
    }
}

/// An explicit join clause attached to a table factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Join {
    pub kind: JoinKind,
    pub factor: TableFactor,
    /// `ON` condition; `None` for CROSS JOIN.
    pub on: Option<Expr>,
}

/// One element of the FROM list: a factor plus its chained joins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FromItem {
    pub factor: TableFactor,
    pub joins: Vec<Join>,
}

/// Ordering specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

/// A full SELECT query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    pub distinct: bool,
    /// `TOP n` row limit.
    pub top: Option<u64>,
    pub select: Vec<SelectItem>,
    /// `SELECT ... INTO target` (CasJobs MyDB exports use this heavily).
    pub into: Option<QualifiedName>,
    pub from: Vec<FromItem>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByItem>,
}

impl Query {
    /// An empty `SELECT` with nothing set, for incremental construction.
    pub fn empty() -> Self {
        Query {
            distinct: false,
            top: None,
            select: Vec::new(),
            into: None,
            from: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
        }
    }
}

/// Top-level statements. Non-SELECT statements are parsed shallowly: the
/// prediction task only needs their kind and token stream, and real
/// workloads contain vendor-specific syntax we must not choke on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    Select(Query),
    /// `EXEC`/`EXECUTE proc args...`
    Execute {
        name: QualifiedName,
        arg_count: usize,
    },
    /// CREATE/DROP/ALTER/TRUNCATE of an object.
    Ddl {
        verb: DdlVerb,
        object: Option<QualifiedName>,
    },
    /// INSERT/UPDATE/DELETE; the embedded query, if any, is parsed.
    Dml {
        verb: DmlVerb,
        table: Option<QualifiedName>,
        query: Option<Query>,
    },
    /// DECLARE/SET and other procedural statements.
    Procedural,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DdlVerb {
    Create,
    Drop,
    Alter,
    Truncate,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DmlVerb {
    Insert,
    Update,
    Delete,
}

/// A parsed script: one or more statements (semicolon- or juxtaposition-
/// separated, as in real logs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Script {
    pub statements: Vec<Statement>,
}

impl Script {
    /// The first SELECT query in the script, if any.
    pub fn first_query(&self) -> Option<&Query> {
        self.statements.iter().find_map(|s| match s {
            Statement::Select(q) => Some(q),
            Statement::Dml { query: Some(q), .. } => Some(q),
            _ => None,
        })
    }

    /// Coarse statement-type label used by the workload analysis
    /// (§4.3.1: "SELECT statements comprise approximately 96.5%...").
    pub fn statement_type(&self) -> &'static str {
        match self.statements.first() {
            Some(Statement::Select(_)) => "SELECT",
            Some(Statement::Execute { .. }) => "EXECUTE",
            Some(Statement::Ddl {
                verb: DdlVerb::Create,
                ..
            }) => "CREATE",
            Some(Statement::Ddl {
                verb: DdlVerb::Drop,
                ..
            }) => "DROP",
            Some(Statement::Ddl {
                verb: DdlVerb::Alter,
                ..
            }) => "ALTER",
            Some(Statement::Ddl {
                verb: DdlVerb::Truncate,
                ..
            }) => "TRUNCATE",
            Some(Statement::Dml {
                verb: DmlVerb::Insert,
                ..
            }) => "INSERT",
            Some(Statement::Dml {
                verb: DmlVerb::Update,
                ..
            }) => "UPDATE",
            Some(Statement::Dml {
                verb: DmlVerb::Delete,
                ..
            }) => "DELETE",
            Some(Statement::Procedural) => "PROCEDURAL",
            None => "EMPTY",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualified_name_base_and_canonical() {
        let n = QualifiedName::new(vec!["dbo".into(), "fPhotoFlags".into()]);
        assert_eq!(n.base(), "fPhotoFlags");
        assert_eq!(n.canonical(), "dbo.fphotoflags");
    }

    #[test]
    fn empty_query_is_empty() {
        let q = Query::empty();
        assert!(q.select.is_empty());
        assert!(q.from.is_empty());
        assert!(q.where_clause.is_none());
    }

    #[test]
    fn script_statement_type() {
        let s = Script {
            statements: vec![Statement::Select(Query::empty())],
        };
        assert_eq!(s.statement_type(), "SELECT");
        let e = Script { statements: vec![] };
        assert_eq!(e.statement_type(), "EMPTY");
    }
}
