//! Lexical tokens for the SQL dialect understood by `sqlan`.
//!
//! The dialect is modeled on the T-SQL flavour used by the SDSS CasJobs
//! service and SQLShare: bracketed identifiers, `TOP n`, hex literals
//! (object ids such as `0x112d075f80360018` are pervasive in SDSS logs),
//! and bitwise operators in predicates (`flags & dbo.fPhotoFlags('BLENDED')`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range into the original query text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start: start as u32,
            end: end as u32,
        }
    }

    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// SQL keywords that the parser gives structural meaning to.
///
/// Anything not in this list lexes as an [`Tok::Ident`]; function names in
/// particular are ordinary identifiers followed by `(`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Asc,
    Desc,
    Top,
    Distinct,
    All,
    As,
    Into,
    Inner,
    Left,
    Right,
    Full,
    Outer,
    Cross,
    Join,
    On,
    And,
    Or,
    Not,
    In,
    Between,
    Like,
    Is,
    Null,
    Exists,
    Any,
    Some,
    Case,
    When,
    Then,
    Else,
    End,
    Cast,
    Union,
    Except,
    Intersect,
    Insert,
    Update,
    Delete,
    Create,
    Drop,
    Alter,
    Truncate,
    Table,
    View,
    Index,
    Database,
    Procedure,
    Function,
    Execute,
    Exec,
    Declare,
    Set,
    Values,
    Default,
    Count,
    Min,
    Max,
    Avg,
    Sum,
}

impl Keyword {
    /// Case-insensitive keyword lookup.
    pub fn parse(word: &str) -> Option<Keyword> {
        // Keywords are short; an explicit match on the uppercased word keeps
        // this allocation-free for the common case of short tokens.
        let mut buf = [0u8; 10];
        if word.len() > buf.len() {
            return None;
        }
        for (i, b) in word.bytes().enumerate() {
            buf[i] = b.to_ascii_uppercase();
        }
        let up = &buf[..word.len()];
        use Keyword::*;
        // NB: `use Keyword::*` shadows `Option::Some` with `Keyword::Some`.
        Option::Some(match up {
            b"SELECT" => Select,
            b"FROM" => From,
            b"WHERE" => Where,
            b"GROUP" => Group,
            b"BY" => By,
            b"HAVING" => Having,
            b"ORDER" => Order,
            b"ASC" => Asc,
            b"DESC" => Desc,
            b"TOP" => Top,
            b"DISTINCT" => Distinct,
            b"ALL" => All,
            b"AS" => As,
            b"INTO" => Into,
            b"INNER" => Inner,
            b"LEFT" => Left,
            b"RIGHT" => Right,
            b"FULL" => Full,
            b"OUTER" => Outer,
            b"CROSS" => Cross,
            b"JOIN" => Join,
            b"ON" => On,
            b"AND" => And,
            b"OR" => Or,
            b"NOT" => Not,
            b"IN" => In,
            b"BETWEEN" => Between,
            b"LIKE" => Like,
            b"IS" => Is,
            b"NULL" => Null,
            b"EXISTS" => Exists,
            b"ANY" => Any,
            b"SOME" => Some,
            b"CASE" => Case,
            b"WHEN" => When,
            b"THEN" => Then,
            b"ELSE" => Else,
            b"END" => End,
            b"CAST" => Cast,
            b"UNION" => Union,
            b"EXCEPT" => Except,
            b"INTERSECT" => Intersect,
            b"INSERT" => Insert,
            b"UPDATE" => Update,
            b"DELETE" => Delete,
            b"CREATE" => Create,
            b"DROP" => Drop,
            b"ALTER" => Alter,
            b"TRUNCATE" => Truncate,
            b"TABLE" => Table,
            b"VIEW" => View,
            b"INDEX" => Index,
            b"DATABASE" => Database,
            b"PROCEDURE" => Procedure,
            b"FUNCTION" => Function,
            b"EXECUTE" => Execute,
            b"EXEC" => Exec,
            b"DECLARE" => Declare,
            b"SET" => Set,
            b"VALUES" => Values,
            b"DEFAULT" => Default,
            b"COUNT" => Count,
            b"MIN" => Min,
            b"MAX" => Max,
            b"AVG" => Avg,
            b"SUM" => Sum,
            _ => return None,
        })
    }

    /// True for the five standard aggregate functions.
    pub fn is_aggregate(self) -> bool {
        matches!(
            self,
            Keyword::Count | Keyword::Min | Keyword::Max | Keyword::Avg | Keyword::Sum
        )
    }
}

/// Binary and unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Op {
    Eq,      // =
    Neq,     // <> or !=
    Lt,      // <
    Lte,     // <=
    Gt,      // >
    Gte,     // >=
    Plus,    // +
    Minus,   // -
    Star,    // * (also the wildcard)
    Slash,   // /
    Percent, // %
    BitAnd,  // &
    BitOr,   // |
    BitXor,  // ^
    Concat,  // || (rare in workload but cheap to support)
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq => "=",
            Op::Neq => "<>",
            Op::Lt => "<",
            Op::Lte => "<=",
            Op::Gt => ">",
            Op::Gte => ">=",
            Op::Plus => "+",
            Op::Minus => "-",
            Op::Star => "*",
            Op::Slash => "/",
            Op::Percent => "%",
            Op::BitAnd => "&",
            Op::BitOr => "|",
            Op::BitXor => "^",
            Op::Concat => "||",
        };
        f.write_str(s)
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Tok {
    /// A recognized keyword.
    Keyword(Keyword),
    /// A bare, bracketed (`[x]`) or double-quoted (`"x"`) identifier,
    /// stored without the quoting.
    Ident(String),
    /// An integer or decimal literal, kept as text to preserve formatting.
    Number(String),
    /// A hexadecimal literal such as `0x112d075f80360018`.
    HexNumber(String),
    /// A single-quoted string literal, unescaped.
    String(String),
    /// An operator.
    Op(Op),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// A byte the lexer could not classify (kept so downstream counters see
    /// it; arbitrary user text must survive lexing).
    Unknown(char),
}

impl Tok {
    /// Is this token exactly the given keyword?
    pub fn is_kw(&self, kw: Keyword) -> bool {
        matches!(self, Tok::Keyword(k) if *k == kw)
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Keyword(k) => write!(f, "{:?}", k),
            Tok::Ident(s) => f.write_str(s),
            Tok::Number(s) => f.write_str(s),
            Tok::HexNumber(s) => f.write_str(s),
            Tok::String(s) => write!(f, "'{}'", s),
            Tok::Op(o) => write!(f, "{}", o),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::Comma => f.write_str(","),
            Tok::Dot => f.write_str("."),
            Tok::Semicolon => f.write_str(";"),
            Tok::Unknown(c) => write!(f, "{}", c),
        }
    }
}

/// A token plus its source location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpannedTok {
    pub tok: Tok,
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::parse("select"), Some(Keyword::Select));
        assert_eq!(Keyword::parse("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::parse("SELECT"), Some(Keyword::Select));
    }

    #[test]
    fn keyword_lookup_rejects_non_keywords() {
        assert_eq!(Keyword::parse("photoobj"), None);
        assert_eq!(Keyword::parse(""), None);
        assert_eq!(Keyword::parse("averylongidentifiername"), None);
    }

    #[test]
    fn aggregates_are_flagged() {
        assert!(Keyword::Count.is_aggregate());
        assert!(Keyword::Min.is_aggregate());
        assert!(!Keyword::Select.is_aggregate());
    }

    #[test]
    fn span_length() {
        let s = Span::new(3, 10);
        assert_eq!(s.len(), 7);
        assert!(!s.is_empty());
        assert!(Span::new(4, 4).is_empty());
    }
}
