//! Rendering of the AST back to SQL text.
//!
//! The workload generator builds queries as ASTs and renders them through
//! this module; round-tripping (`parse(render(q)) == q` modulo spans) is
//! property-tested in the crate tests.

use std::fmt::{self, Write};

use crate::ast::*;

impl fmt::Display for QualifiedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                f.write_char('.')?;
            }
            f.write_str(p)?;
        }
        Ok(())
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(_, text) => f.write_str(text),
            Literal::Hex(_, text) => f.write_str(text),
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => f.write_str("NULL"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => write!(f, "{}", name),
            Expr::Wildcard(None) => f.write_str("*"),
            Expr::Wildcard(Some(q)) => write!(f, "{}.*", q),
            Expr::Literal(l) => write!(f, "{}", l),
            // A template parameter renders as the literal it was built
            // from, so a template displays exactly like its seed statement.
            Expr::Param { value, .. } => write!(f, "{}", value),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => write!(f, "-{}", paren_unary(expr)),
                UnaryOp::Plus => write!(f, "+{}", paren_unary(expr)),
                UnaryOp::Not => write!(f, "NOT ({})", expr),
            },
            Expr::Binary { left, op, right } => {
                write!(f, "{} {} {}", paren_operand(left), op, paren_operand(right))
            }
            Expr::Logical { left, and, right } => {
                let kw = if *and { "AND" } else { "OR" };
                write!(
                    f,
                    "{} {} {}",
                    paren_logical(left, *and),
                    kw,
                    paren_logical(right, *and)
                )
            }
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => write!(
                f,
                "{}{} BETWEEN {} AND {}",
                paren_operand(expr),
                if *negated { " NOT" } else { "" },
                paren_operand(low),
                paren_operand(high)
            ),
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                write!(
                    f,
                    "{}{} IN (",
                    paren_operand(expr),
                    if *negated { " NOT" } else { "" }
                )?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}", e)?;
                }
                f.write_char(')')
            }
            Expr::InSubquery {
                expr,
                negated,
                subquery,
            } => write!(
                f,
                "{}{} IN ({})",
                paren_operand(expr),
                if *negated { " NOT" } else { "" },
                subquery
            ),
            Expr::Like {
                expr,
                negated,
                pattern,
            } => write!(
                f,
                "{}{} LIKE {}",
                paren_operand(expr),
                if *negated { " NOT" } else { "" },
                pattern
            ),
            Expr::IsNull { expr, negated } => write!(
                f,
                "{} IS{} NULL",
                paren_operand(expr),
                if *negated { " NOT" } else { "" }
            ),
            Expr::Exists { negated, subquery } => {
                if *negated {
                    f.write_str("NOT ")?;
                }
                write!(f, "EXISTS ({})", subquery)
            }
            Expr::Subquery(q) => write!(f, "({})", q),
            Expr::Function(call) => {
                write!(f, "{}(", call.name)?;
                if call.distinct {
                    f.write_str("DISTINCT ")?;
                }
                for (i, a) in call.args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}", a)?;
                }
                f.write_char(')')
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                f.write_str("CASE")?;
                if let Some(op) = operand {
                    write!(f, " {}", op)?;
                }
                for (c, v) in branches {
                    write!(f, " WHEN {} THEN {}", c, v)?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {}", e)?;
                }
                f.write_str(" END")
            }
            Expr::Cast { expr, ty } => write!(f, "CAST({} AS {})", expr, ty),
        }
    }
}

/// Parenthesize operands that would reparse at a different precedence.
fn paren_operand(e: &Expr) -> String {
    match e {
        Expr::Binary { .. } | Expr::Logical { .. } | Expr::Between { .. } | Expr::Case { .. } => {
            format!("({})", e)
        }
        _ => format!("{}", e),
    }
}

fn paren_unary(e: &Expr) -> String {
    match e {
        Expr::Column(_) | Expr::Literal(_) | Expr::Param { .. } | Expr::Function(_) => {
            format!("{}", e)
        }
        _ => format!("({})", e),
    }
}

/// AND binds tighter than OR; parenthesize an OR under an AND.
fn paren_logical(e: &Expr, parent_is_and: bool) -> String {
    match e {
        Expr::Logical { and: false, .. } if parent_is_and => format!("({})", e),
        Expr::Unary {
            op: UnaryOp::Not, ..
        } => format!("({})", e),
        _ => format!("{}", e),
    }
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinKind::Inner => "INNER JOIN",
            JoinKind::Left => "LEFT JOIN",
            JoinKind::Right => "RIGHT JOIN",
            JoinKind::Full => "FULL JOIN",
            JoinKind::Cross => "CROSS JOIN",
        })
    }
}

impl fmt::Display for TableFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableFactor::Table { name, alias } => {
                write!(f, "{}", name)?;
                if let Some(a) = alias {
                    write!(f, " AS {}", a)?;
                }
                Ok(())
            }
            TableFactor::Derived { subquery, alias } => {
                write!(f, "({})", subquery)?;
                if let Some(a) = alias {
                    write!(f, " AS {}", a)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        if let Some(n) = self.top {
            write!(f, "TOP {} ", n)?;
        }
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}", item.expr)?;
            if let Some(a) = &item.alias {
                write!(f, " AS {}", a)?;
            }
        }
        if let Some(into) = &self.into {
            write!(f, " INTO {}", into)?;
        }
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            for (i, fi) in self.from.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", fi.factor)?;
                for j in &fi.joins {
                    write!(f, " {} {}", j.kind, j.factor)?;
                    if let Some(on) = &j.on {
                        write!(f, " ON {}", on)?;
                    }
                }
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {}", w)?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", g)?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {}", h)?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.desc {
                    f.write_str(" DESC")?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(q) => write!(f, "{}", q),
            Statement::Execute { name, arg_count } => {
                write!(f, "EXEC {}", name)?;
                for i in 0..*arg_count {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, " {}", i)?;
                }
                Ok(())
            }
            Statement::Ddl { verb, object } => {
                let v = match verb {
                    DdlVerb::Create => "CREATE TABLE",
                    DdlVerb::Drop => "DROP TABLE",
                    DdlVerb::Alter => "ALTER TABLE",
                    DdlVerb::Truncate => "TRUNCATE TABLE",
                };
                write!(f, "{}", v)?;
                if let Some(o) = object {
                    write!(f, " {}", o)?;
                }
                Ok(())
            }
            Statement::Dml { verb, table, query } => {
                match verb {
                    DmlVerb::Insert => {
                        f.write_str("INSERT INTO")?;
                        if let Some(t) = table {
                            write!(f, " {}", t)?;
                        }
                        if let Some(q) = query {
                            write!(f, " {}", q)?;
                        }
                    }
                    DmlVerb::Update => {
                        f.write_str("UPDATE")?;
                        if let Some(t) = table {
                            write!(f, " {}", t)?;
                        }
                        f.write_str(" SET x = 0")?;
                        if let Some(q) = query {
                            if let Some(w) = &q.where_clause {
                                write!(f, " WHERE {}", w)?;
                            }
                        }
                    }
                    DmlVerb::Delete => {
                        f.write_str("DELETE FROM")?;
                        if let Some(t) = table {
                            write!(f, " {}", t)?;
                        }
                        if let Some(q) = query {
                            if let Some(w) = &q.where_clause {
                                write!(f, " WHERE {}", w)?;
                            }
                        }
                    }
                }
                Ok(())
            }
            Statement::Procedural => f.write_str("DECLARE @x int"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_script;

    /// Render → parse → render must be a fixed point.
    fn roundtrip(sql: &str) {
        let s1 = parse_script(sql).unwrap();
        let text1 = format!("{}", s1.statements[0]);
        let s2 = parse_script(&text1)
            .unwrap_or_else(|e| panic!("rendered SQL failed to reparse: {text1}: {e}"));
        let text2 = format!("{}", s2.statements[0]);
        assert_eq!(text1, text2, "display not idempotent for {sql}");
    }

    #[test]
    fn roundtrips_simple() {
        roundtrip("SELECT * FROM PhotoTag WHERE objId = 0x112d075f80360018");
        roundtrip("SELECT a, b AS c FROM t WHERE x > 1 AND y < 2 OR z = 3");
        roundtrip("SELECT DISTINCT TOP 5 x FROM t ORDER BY x DESC");
    }

    #[test]
    fn roundtrips_joins_and_subqueries() {
        roundtrip("SELECT a.x FROM t a INNER JOIN u b ON a.i = b.i WHERE a.y BETWEEN 1 AND 2");
        roundtrip("SELECT x FROM t WHERE y = (SELECT min(y) FROM u)");
        roundtrip("SELECT x FROM (SELECT x FROM t) d WHERE x IN (1, 2, 3)");
        roundtrip("SELECT x FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.i = t.i)");
    }

    #[test]
    fn roundtrips_functions_case_cast() {
        roundtrip("SELECT dbo.fPhotoFlags('BLENDED'), count(DISTINCT x) FROM t GROUP BY g");
        roundtrip("SELECT CASE WHEN x > 0 THEN 1 ELSE 0 END FROM t");
        roundtrip("SELECT CAST(x AS varchar(32)) FROM t");
        roundtrip("SELECT x FROM t WHERE flags & dbo.fPhotoFlags('SATURATED') > 0");
    }

    #[test]
    fn roundtrips_or_under_and() {
        roundtrip("SELECT x FROM t WHERE (a = 1 OR b = 2) AND c = 3");
        roundtrip("SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3");
    }
}
