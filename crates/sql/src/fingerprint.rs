//! Template fingerprinting: map a statement to a literal-stripped template
//! identity plus an ordered literal vector.
//!
//! SDSS/SQLShare sessions are dominated by template-driven statements that
//! differ only in literal values (`WHERE objId = 0x…` with a different id
//! each time). The engine's cross-statement plan cache keys on the
//! **fingerprint** computed here: a 128-bit FxHash over the token stream
//! with every *parameterizable* literal replaced by a kind marker. Two
//! statements share a fingerprint iff they lex to the same template —
//! whitespace, comments, and literal spelling (`1e3` vs `1000.0`,
//! `'it''s'` vs the same value spelled differently) do not matter;
//! identifiers, keywords, operators, and punctuation all do. Quoted and
//! bracketed identifiers hash by their inner text, so `[name]` and `name`
//! share a template exactly as they parse to the same AST.
//!
//! **Structural literals are never parameterized.** A literal whose *value*
//! feeds the parser or planner rather than expression evaluation must stay
//! concrete (hashed into the fingerprint), otherwise two statements with
//! different plans would collide. Three grammar positions qualify:
//!
//! - `TOP n` / `TOP (n)` — the row limit becomes [`Query::top`];
//! - a string right after `AS` — an alias (`expr AS 'name'`);
//! - numbers inside a CAST type's argument list (`CAST(x AS dec(10, 2))`).
//!
//! The tracker over-approximates: misclassifying a parameterizable literal
//! as concrete only splits a template into several (less sharing, never
//! wrong results). The reverse direction cannot happen because the three
//! contexts above are recognized by the same token shapes the parser uses.
//!
//! Probe vs. full lex: [`fingerprint`] computes the identity without
//! materializing tokens (the cache-hit path); [`lex_fingerprint`]
//! additionally yields the token stream and a parallel per-token slot map
//! for parameterized parsing (the miss path). Both run the exact same
//! scanner and feed the exact same hasher — one loop, one `materialize`
//! flag — so a probe hash always equals the full-lex hash by construction.
//!
//! This module is also the home of [`normalize_statement`], the
//! whitespace-collapsing key function used by `sqlan-serve`'s prediction
//! cache, so both caches' notions of "same statement text" live in one
//! place. Normalization is coarser than raw text but finer than the
//! fingerprint (it keeps literal spelling); `fingerprint` is invariant
//! under it.

use std::hash::Hasher;

use fxhash::FxHasher;

use crate::ast::Literal;
use crate::lexer::{materialize, str_value, LexReport, RawKind, RawLexer};
use crate::token::{Span, SpannedTok};

/// The result of fingerprinting (and optionally fully lexing) a statement.
#[derive(Debug, Clone)]
pub struct FingerprintedLex {
    /// 128-bit template identity (two independently seeded 64-bit FxHashes).
    pub fingerprint: u128,
    /// The parameterizable literals, in source order. `literals[slot]`
    /// is the value for parameter slot `slot`.
    pub literals: Vec<Literal>,
    /// Lexer diagnostics — identical to what [`crate::lexer::lex`] reports.
    pub report: LexReport,
    /// The materialized token stream. Empty for [`fingerprint`] probes.
    pub toks: Vec<SpannedTok>,
    /// Parallel to `toks`: `params[i] = Some(slot)` when `toks[i]` is the
    /// literal occupying parameter slot `slot`. Empty for probes.
    pub params: Vec<Option<u32>>,
}

/// Compute the template fingerprint and literal vector without
/// materializing tokens. This is the cache-hit fast path: no `String`
/// allocations except for the extracted literal values themselves.
pub fn fingerprint(input: &str) -> FingerprintedLex {
    scan(input, false)
}

/// Fingerprint *and* fully lex: the cache-miss path. The token stream is
/// byte-identical to [`crate::lexer::lex`] (same scanner), and `params`
/// marks which tokens were lifted into parameter slots so the parser can
/// emit [`crate::ast::Expr::Param`] nodes in their place.
pub fn lex_fingerprint(input: &str) -> FingerprintedLex {
    scan(input, true)
}

/// Structural-context tracker; see the module docs for the three contexts.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ctx {
    Normal,
    /// Right after `TOP` — a following number is the row limit.
    AfterTop,
    /// After `TOP (` — the parenthesized row limit.
    AfterTopLParen,
    /// Right after `AS` — a following string is an alias; a following
    /// identifier may begin a CAST target type.
    AfterAs,
    /// After `AS ident` — a following `(` opens a type argument list.
    AfterAsIdent,
    /// Inside `AS ident ( … )` — numbers are type arguments.
    TypeArgs,
}

impl Ctx {
    fn number_is_structural(self) -> bool {
        matches!(self, Ctx::AfterTop | Ctx::AfterTopLParen | Ctx::TypeArgs)
    }

    fn string_is_structural(self) -> bool {
        self == Ctx::AfterAs
    }

    fn next(self, kind: &RawKind) -> Ctx {
        use crate::token::Keyword as K;
        match (self, kind) {
            (_, RawKind::Keyword(K::Top)) => Ctx::AfterTop,
            (_, RawKind::Keyword(K::As)) => Ctx::AfterAs,
            (Ctx::AfterTop, RawKind::LParen) => Ctx::AfterTopLParen,
            (Ctx::AfterAs, RawKind::Word)
            | (Ctx::AfterAs, RawKind::Bracketed { .. })
            | (Ctx::AfterAs, RawKind::Quoted { .. }) => Ctx::AfterAsIdent,
            (Ctx::AfterAsIdent, RawKind::LParen) => Ctx::TypeArgs,
            (Ctx::TypeArgs, RawKind::Number) | (Ctx::TypeArgs, RawKind::Comma) => Ctx::TypeArgs,
            _ => Ctx::Normal,
        }
    }
}

/// Two independently seeded FxHashers, combined into a u128. A single
/// 64-bit Fx hash is too weak to bet result correctness on (the cache
/// trusts the fingerprint as the template identity); two differently
/// seeded lanes make accidental collisions astronomically unlikely.
struct Fp {
    a: FxHasher,
    b: FxHasher,
}

// Per-token-kind hash tags. Distinct tags keep adjacent tokens from
// gluing together (`a b` vs `ab` must differ even though both hash the
// same bytes).
const TAG_KEYWORD: u64 = 0xE0;
const TAG_IDENT: u64 = 0xE1;
const TAG_NUM_SLOT: u64 = 0xF1;
const TAG_NUM_CONCRETE: u64 = 0xF2;
const TAG_STR_SLOT: u64 = 0xF3;
const TAG_STR_CONCRETE: u64 = 0xF4;
const TAG_HEX_SLOT: u64 = 0xF5;
const TAG_OP: u64 = 0xD0;
const TAG_LPAREN: u64 = 0xC0;
const TAG_RPAREN: u64 = 0xC1;
const TAG_COMMA: u64 = 0xC2;
const TAG_DOT: u64 = 0xC3;
const TAG_SEMI: u64 = 0xC4;
const TAG_UNKNOWN: u64 = 0xB0;

impl Fp {
    fn new() -> Fp {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0x5153_4C41_4E5F_4650); // "QSLAN_FP" lane 1
        b.write_u64(0x6662_7073_6C61_6E32); // lane 2
        Fp { a, b }
    }

    fn tag(&mut self, t: u64) {
        self.a.write_u64(t);
        self.b.write_u64(t);
    }

    fn text(&mut self, s: &str) {
        self.a.write(s.as_bytes());
        self.b.write(s.as_bytes());
    }

    fn finish(self) -> u128 {
        ((self.a.finish() as u128) << 64) | self.b.finish() as u128
    }
}

/// The single scan loop behind both entry points. `materialize_toks`
/// gates only the token materialization — the hash feed, context tracking,
/// and literal extraction are shared unconditionally, which is what makes
/// probe and full-lex fingerprints equal by construction.
fn scan(input: &str, materialize_toks: bool) -> FingerprintedLex {
    let mut lx = RawLexer::new(input);
    let mut fp = Fp::new();
    let mut ctx = Ctx::Normal;
    let mut literals: Vec<Literal> = Vec::new();
    let mut toks: Vec<SpannedTok> = Vec::new();
    let mut params: Vec<Option<u32>> = Vec::new();

    while let Some(rt) = lx.next_raw() {
        let mut slot: Option<u32> = None;
        match rt.kind {
            RawKind::Keyword(k) => {
                fp.tag(TAG_KEYWORD);
                fp.tag(k as u64);
            }
            RawKind::Word => {
                fp.tag(TAG_IDENT);
                fp.text(rt.text(input));
            }
            // Bracketed/quoted identifiers hash by inner text, matching
            // how they materialize: `[name]` and `name` share a template.
            RawKind::Bracketed { .. } | RawKind::Quoted { .. } => {
                fp.tag(TAG_IDENT);
                fp.text(rt.inner(input));
            }
            RawKind::Number => {
                if ctx.number_is_structural() {
                    fp.tag(TAG_NUM_CONCRETE);
                    fp.text(rt.text(input));
                } else {
                    fp.tag(TAG_NUM_SLOT);
                    slot = Some(literals.len() as u32);
                    literals.push(Literal::number_from_text(rt.text(input).to_string()));
                }
            }
            RawKind::HexNumber => {
                // Hex literals never appear in a structural position.
                fp.tag(TAG_HEX_SLOT);
                slot = Some(literals.len() as u32);
                literals.push(Literal::hex_from_text(rt.text(input).to_string()));
            }
            RawKind::Str { .. } => {
                if ctx.string_is_structural() {
                    fp.tag(TAG_STR_CONCRETE);
                    // Hash the unescaped value so two spellings of the
                    // same alias share a template.
                    fp.text(&str_value(input, &rt));
                } else {
                    fp.tag(TAG_STR_SLOT);
                    slot = Some(literals.len() as u32);
                    literals.push(Literal::String(str_value(input, &rt).into_owned()));
                }
            }
            RawKind::Op(o) => {
                fp.tag(TAG_OP);
                fp.tag(o as u64);
            }
            RawKind::LParen => fp.tag(TAG_LPAREN),
            RawKind::RParen => fp.tag(TAG_RPAREN),
            RawKind::Comma => fp.tag(TAG_COMMA),
            RawKind::Dot => fp.tag(TAG_DOT),
            RawKind::Semicolon => fp.tag(TAG_SEMI),
            RawKind::Unknown(c) => {
                fp.tag(TAG_UNKNOWN);
                fp.tag(c as u64);
            }
        }
        ctx = ctx.next(&rt.kind);
        if materialize_toks {
            toks.push(SpannedTok {
                tok: materialize(input, &rt),
                span: Span::new(rt.lo, rt.hi),
            });
            params.push(slot);
        }
    }

    FingerprintedLex {
        fingerprint: fp.finish(),
        literals,
        report: lx.report,
        toks,
        params,
    }
}

/// Collapse whitespace runs to single spaces *outside* string/identifier
/// literals and trim the ends, so logically identical statements share a
/// cache entry without ever merging distinct literals.
///
/// This is `sqlan-serve`'s prediction-cache key function; it lives here so
/// the serving cache and the engine's plan cache derive "same statement"
/// from one module. It deliberately keeps literal spelling (serve keys are
/// pinned by byte-identity e2e tests); the [`fingerprint`] is strictly
/// coarser and invariant under this transform.
pub fn normalize_statement(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut quote: Option<char> = None;
    let mut pending_space = false;
    for c in text.chars() {
        if let Some(q) = quote {
            out.push(c);
            if c == q {
                // A doubled quote re-enters the region at the next quote
                // char; treating it as leave-then-enter preserves bytes
                // either way.
                quote = None;
            }
            continue;
        }
        if c.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space && !out.is_empty() {
            out.push(' ');
        }
        pending_space = false;
        out.push(c);
        if c == '\'' || c == '"' {
            quote = Some(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(s: &str) -> u128 {
        fingerprint(s).fingerprint
    }

    #[test]
    fn whitespace_and_comments_do_not_matter() {
        let a = fp("SELECT id FROM Obj WHERE x > 10");
        assert_eq!(a, fp("select   id\nFROM Obj /* c */ WHERE x > 10"));
        assert_eq!(a, fp("SELECT id FROM Obj -- t\n WHERE x > 10"));
    }

    #[test]
    fn literal_values_do_not_matter() {
        let a = fp("SELECT id FROM Obj WHERE x > 10 AND tag = 'a'");
        assert_eq!(a, fp("SELECT id FROM Obj WHERE x > 999.5 AND tag = 'zz'"));
        assert_eq!(a, fp("SELECT id FROM Obj WHERE x > 1e3 AND tag = 'it''s'"));
    }

    #[test]
    fn structure_does_matter() {
        let a = fp("SELECT id FROM Obj WHERE x > 10");
        assert_ne!(a, fp("SELECT id FROM Obj WHERE x < 10"));
        assert_ne!(a, fp("SELECT id FROM Obj WHERE y > 10"));
        assert_ne!(a, fp("SELECT id FROM Spec WHERE x > 10"));
        assert_ne!(a, fp("SELECT id FROM Obj WHERE x > 'a'"));
        assert_ne!(a, fp("SELECT id FROM Obj WHERE x > 0x10"));
    }

    #[test]
    fn bracketed_identifiers_share_the_bare_template() {
        assert_eq!(fp("SELECT [id] FROM Obj"), fp("SELECT id FROM Obj"));
        assert_eq!(fp("SELECT \"id\" FROM Obj"), fp("SELECT id FROM Obj"));
    }

    #[test]
    fn keyword_case_is_insensitive_but_ident_case_is_not() {
        assert_eq!(fp("SELECT x FROM t"), fp("select x from t"));
        // Identifier case resolves equal downstream, but separate
        // templates are safe — just less sharing.
        assert_ne!(fp("SELECT X FROM t"), fp("SELECT x FROM t"));
    }

    #[test]
    fn top_limit_is_structural() {
        assert_ne!(
            fp("SELECT TOP 5 id FROM Obj"),
            fp("SELECT TOP 6 id FROM Obj")
        );
        assert_ne!(
            fp("SELECT TOP (5) id FROM Obj"),
            fp("SELECT TOP (6) id FROM Obj")
        );
        // ...but a predicate literal right after is still a slot.
        assert_eq!(
            fp("SELECT TOP 5 id FROM Obj WHERE x > 1"),
            fp("SELECT TOP 5 id FROM Obj WHERE x > 2")
        );
    }

    #[test]
    fn string_alias_is_structural() {
        assert_ne!(fp("SELECT x AS 'a' FROM t"), fp("SELECT x AS 'b' FROM t"));
    }

    #[test]
    fn cast_type_args_are_structural() {
        assert_ne!(
            fp("SELECT CAST(x AS dec(10, 2)) FROM t"),
            fp("SELECT CAST(x AS dec(12, 3)) FROM t")
        );
        // The cast operand stays parameterizable.
        assert_eq!(
            fp("SELECT CAST(1 AS dec(10, 2)) FROM t"),
            fp("SELECT CAST(2 AS dec(10, 2)) FROM t")
        );
    }

    #[test]
    fn literal_vector_is_ordered_and_converted() {
        let f = fingerprint("SELECT id FROM Obj WHERE x > 10 AND tag = 'a' AND h = 0x1f");
        assert_eq!(
            f.literals,
            vec![
                Literal::Number(10.0, "10".into()),
                Literal::String("a".into()),
                Literal::Hex(0x1f, "0x1f".into()),
            ]
        );
    }

    #[test]
    fn probe_equals_full_lex() {
        for s in [
            "SELECT TOP 5 id FROM Obj WHERE x > 10 AND tag = 'it''s'",
            "SELECT CAST(x AS dec(10, 2)) AS 'a' FROM t; EXEC dbo.sp 1, 'x'",
            "not sql at all ¿que? 'unterminated",
            "",
        ] {
            let probe = fingerprint(s);
            let full = lex_fingerprint(s);
            assert_eq!(probe.fingerprint, full.fingerprint, "{s:?}");
            assert_eq!(probe.literals, full.literals, "{s:?}");
            assert_eq!(probe.report, full.report, "{s:?}");
            assert!(probe.toks.is_empty());
            assert_eq!(full.toks.len(), full.params.len());
        }
    }

    #[test]
    fn full_lex_matches_plain_lex() {
        for s in [
            "SELECT TOP 5 [id] FROM Obj WHERE x > 10 AND tag = 'it''s' -- c",
            "please show me the galaxies ¿que?",
            "SELECT 'oops",
        ] {
            let full = lex_fingerprint(s);
            let (toks, report) = crate::lexer::lex(s);
            assert_eq!(full.toks, toks, "{s:?}");
            assert_eq!(full.report, report, "{s:?}");
        }
    }

    #[test]
    fn params_point_at_literal_tokens() {
        let full = lex_fingerprint("SELECT id FROM Obj WHERE x > 10 AND tag = 'a'");
        let slots: Vec<(usize, u32)> = full
            .params
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (i, s)))
            .collect();
        assert_eq!(slots.len(), full.literals.len());
        for (i, slot) in slots {
            use crate::token::Tok;
            match (&full.toks[i].tok, &full.literals[slot as usize]) {
                (Tok::Number(t), Literal::Number(_, lt)) => assert_eq!(t, lt),
                (Tok::String(t), Literal::String(lt)) => assert_eq!(t, lt),
                (Tok::HexNumber(t), Literal::Hex(_, lt)) => assert_eq!(t, lt),
                (tok, lit) => panic!("slot {slot} mismatch: {tok:?} vs {lit:?}"),
            }
        }
    }

    #[test]
    fn fingerprint_is_invariant_under_normalization() {
        for s in [
            "  SELECT   id\tFROM Obj\n WHERE tag = 'a  b'  ",
            "SELECT 'it''s'  ,  x FROM t",
        ] {
            assert_eq!(fp(s), fp(&normalize_statement(s)), "{s:?}");
        }
    }

    #[test]
    fn normalization_collapses_outside_literals_only() {
        assert_eq!(
            normalize_statement("SELECT  *\n FROM   x WHERE a = 'two  spaces'"),
            "SELECT * FROM x WHERE a = 'two  spaces'"
        );
        assert_eq!(
            normalize_statement("  SELECT \"my  col\" FROM t  "),
            "SELECT \"my  col\" FROM t"
        );
    }
}
