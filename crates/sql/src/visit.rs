//! Lightweight AST walkers.
//!
//! The property extractor and the engine both need to traverse expressions
//! and queries; centralizing the recursion here keeps the traversal order
//! consistent and avoids four separate hand-rolled walkers drifting apart.

use crate::ast::*;

/// Walk every sub-expression of `expr` (including `expr` itself), calling
/// `f` on each. Subqueries are **not** entered; use [`walk_expr_queries`]
/// to find them.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(expr);
    match expr {
        Expr::Column(_) | Expr::Wildcard(_) | Expr::Literal(_) | Expr::Param { .. } => {}
        Expr::Unary { expr, .. } => walk_expr(expr, f),
        Expr::Binary { left, right, .. } => {
            walk_expr(left, f);
            walk_expr(right, f);
        }
        Expr::Logical { left, right, .. } => {
            walk_expr(left, f);
            walk_expr(right, f);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            walk_expr(expr, f);
            walk_expr(low, f);
            walk_expr(high, f);
        }
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, f);
            for e in list {
                walk_expr(e, f);
            }
        }
        Expr::InSubquery { expr, .. } => walk_expr(expr, f),
        Expr::Like { expr, pattern, .. } => {
            walk_expr(expr, f);
            walk_expr(pattern, f);
        }
        Expr::IsNull { expr, .. } => walk_expr(expr, f),
        Expr::Exists { .. } => {}
        Expr::Subquery(_) => {}
        Expr::Function(call) => {
            for a in &call.args {
                walk_expr(a, f);
            }
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(op) = operand {
                walk_expr(op, f);
            }
            for (c, v) in branches {
                walk_expr(c, f);
                walk_expr(v, f);
            }
            if let Some(e) = else_expr {
                walk_expr(e, f);
            }
        }
        Expr::Cast { expr, .. } => walk_expr(expr, f),
    }
}

/// Call `f` on each immediate subquery contained in `expr` (not recursing
/// into the subqueries themselves).
pub fn walk_expr_queries<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Query)) {
    walk_expr(expr, &mut |e| match e {
        Expr::InSubquery { subquery, .. }
        | Expr::Exists { subquery, .. }
        | Expr::Subquery(subquery) => f(subquery),
        _ => {}
    });
}

/// Call `f` on every expression appearing directly in `query` (select list,
/// join conditions, where, group by, having, order by) without entering
/// subqueries.
pub fn walk_query_exprs<'a>(query: &'a Query, f: &mut impl FnMut(&'a Expr)) {
    for item in &query.select {
        walk_expr(&item.expr, f);
    }
    for fi in &query.from {
        for j in &fi.joins {
            if let Some(on) = &j.on {
                walk_expr(on, f);
            }
        }
    }
    if let Some(w) = &query.where_clause {
        walk_expr(w, f);
    }
    for g in &query.group_by {
        walk_expr(g, f);
    }
    if let Some(h) = &query.having {
        walk_expr(h, f);
    }
    for o in &query.order_by {
        walk_expr(&o.expr, f);
    }
}

/// Call `f` on each immediate child query of `query`: derived tables in
/// FROM plus subqueries in any expression position.
pub fn walk_child_queries<'a>(query: &'a Query, f: &mut impl FnMut(&'a Query)) {
    for fi in &query.from {
        if let TableFactor::Derived { subquery, .. } = &fi.factor {
            f(subquery);
        }
        for j in &fi.joins {
            if let TableFactor::Derived { subquery, .. } = &j.factor {
                f(subquery);
            }
        }
    }
    walk_query_exprs(query, &mut |e| {
        walk_expr_queries_shallow(e, f);
    });
}

// walk_query_exprs already recurses through each expression tree, so here we
// only need to look at the node itself to avoid double-visiting subqueries.
fn walk_expr_queries_shallow<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Query)) {
    match e {
        Expr::InSubquery { subquery, .. }
        | Expr::Exists { subquery, .. }
        | Expr::Subquery(subquery) => f(subquery),
        _ => {}
    }
}

/// Mutably walk every sub-expression of `expr` (including `expr` itself),
/// calling `f` on each node *before* recursing into its children, and
/// entering subqueries (via [`walk_query_exprs_mut`]). Used by the plan
/// cache to rebind [`Expr::Param`] slots to fresh literal values; unlike
/// [`walk_expr`], this traversal is exhaustive over nested queries so no
/// parameter can hide from a rebind.
pub fn walk_expr_mut(expr: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(expr);
    match expr {
        Expr::Column(_) | Expr::Wildcard(_) | Expr::Literal(_) | Expr::Param { .. } => {}
        Expr::Unary { expr, .. } => walk_expr_mut(expr, f),
        Expr::Binary { left, right, .. } | Expr::Logical { left, right, .. } => {
            walk_expr_mut(left, f);
            walk_expr_mut(right, f);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            walk_expr_mut(expr, f);
            walk_expr_mut(low, f);
            walk_expr_mut(high, f);
        }
        Expr::InList { expr, list, .. } => {
            walk_expr_mut(expr, f);
            for e in list {
                walk_expr_mut(e, f);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            walk_expr_mut(expr, f);
            walk_query_exprs_mut(subquery, f);
        }
        Expr::Like { expr, pattern, .. } => {
            walk_expr_mut(expr, f);
            walk_expr_mut(pattern, f);
        }
        Expr::IsNull { expr, .. } => walk_expr_mut(expr, f),
        Expr::Exists { subquery, .. } => walk_query_exprs_mut(subquery, f),
        Expr::Subquery(subquery) => walk_query_exprs_mut(subquery, f),
        Expr::Function(call) => {
            for a in &mut call.args {
                walk_expr_mut(a, f);
            }
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(op) = operand {
                walk_expr_mut(op, f);
            }
            for (c, v) in branches {
                walk_expr_mut(c, f);
                walk_expr_mut(v, f);
            }
            if let Some(e) = else_expr {
                walk_expr_mut(e, f);
            }
        }
        Expr::Cast { expr, .. } => walk_expr_mut(expr, f),
    }
}

/// Mutably visit every expression reachable from `query`, including those
/// inside derived tables, join conditions, and subqueries at any depth.
pub fn walk_query_exprs_mut(query: &mut Query, f: &mut impl FnMut(&mut Expr)) {
    for item in &mut query.select {
        walk_expr_mut(&mut item.expr, f);
    }
    for fi in &mut query.from {
        if let TableFactor::Derived { subquery, .. } = &mut fi.factor {
            walk_query_exprs_mut(subquery, f);
        }
        for j in &mut fi.joins {
            if let TableFactor::Derived { subquery, .. } = &mut j.factor {
                walk_query_exprs_mut(subquery, f);
            }
            if let Some(on) = &mut j.on {
                walk_expr_mut(on, f);
            }
        }
    }
    if let Some(w) = &mut query.where_clause {
        walk_expr_mut(w, f);
    }
    for g in &mut query.group_by {
        walk_expr_mut(g, f);
    }
    if let Some(h) = &mut query.having {
        walk_expr_mut(h, f);
    }
    for o in &mut query.order_by {
        walk_expr_mut(&mut o.expr, f);
    }
}

/// Mutably visit every expression in a statement (see
/// [`walk_query_exprs_mut`]); statements without expressions are no-ops.
pub fn walk_statement_exprs_mut(stmt: &mut Statement, f: &mut impl FnMut(&mut Expr)) {
    match stmt {
        Statement::Select(q) => walk_query_exprs_mut(q, f),
        Statement::Dml { query: Some(q), .. } => walk_query_exprs_mut(q, f),
        _ => {}
    }
}

/// All queries in a statement, paired with their nesting depth (the
/// outermost query has depth 0). Traversal is breadth-first.
pub fn queries_with_depth(stmt: &Statement) -> Vec<(&Query, u32)> {
    let mut out = Vec::new();
    let mut frontier: Vec<(&Query, u32)> = Vec::new();
    match stmt {
        Statement::Select(q) => frontier.push((q, 0)),
        Statement::Dml { query: Some(q), .. } => frontier.push((q, 0)),
        _ => {}
    }
    while let Some((q, d)) = frontier.pop() {
        out.push((q, d));
        walk_child_queries(q, &mut |c| frontier.push((c, d + 1)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;

    fn first(stmt: &str) -> Statement {
        parse_script(stmt)
            .unwrap()
            .statements
            .into_iter()
            .next()
            .unwrap()
    }

    #[test]
    fn depth_of_flat_query_is_zero() {
        let s = first("SELECT x FROM t WHERE y = 1");
        let qs = queries_with_depth(&s);
        assert_eq!(qs.len(), 1);
        assert_eq!(qs[0].1, 0);
    }

    #[test]
    fn depth_counts_nested_subqueries() {
        let s =
            first("SELECT x FROM t WHERE y = (SELECT max(y) FROM u WHERE z IN (SELECT z FROM v))");
        let qs = queries_with_depth(&s);
        let max = qs.iter().map(|(_, d)| *d).max().unwrap();
        assert_eq!(qs.len(), 3);
        assert_eq!(max, 2);
    }

    #[test]
    fn derived_tables_count_as_depth() {
        let s = first("SELECT a FROM (SELECT a FROM t) d");
        let qs = queries_with_depth(&s);
        assert_eq!(qs.len(), 2);
        assert_eq!(qs.iter().map(|(_, d)| *d).max().unwrap(), 1);
    }

    #[test]
    fn walk_query_exprs_visits_all_clauses() {
        let s = first(
            "SELECT a + 1 FROM t JOIN u ON t.i = u.i WHERE b > 2 \
             GROUP BY c HAVING count(*) > 3 ORDER BY d DESC",
        );
        let q = match &s {
            Statement::Select(q) => q,
            _ => unreachable!(),
        };
        let mut cols = Vec::new();
        walk_query_exprs(q, &mut |e| {
            if let Expr::Column(c) = e {
                cols.push(c.canonical());
            }
        });
        for want in ["a", "t.i", "u.i", "b", "c", "d"] {
            assert!(cols.iter().any(|c| c == want), "missing {want} in {cols:?}");
        }
    }
}
