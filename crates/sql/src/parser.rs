//! Recursive-descent parser for the supported SQL dialect.
//!
//! Design goals, in order:
//! 1. Parse the SELECT dialect used by SDSS/SQLShare-style workloads fully
//!    (joins, subqueries, aggregates, CASE, CAST, TOP, INTO, bitwise ops).
//! 2. Never crash on arbitrary input — parsing returns `Result` and a
//!    depth guard bounds recursion.
//! 3. Classify non-SELECT statements (EXECUTE/DDL/DML) shallowly; the
//!    prediction tasks only need their kind.

use crate::ast::*;
use crate::lexer::{lex, LexReport};
use crate::token::{Keyword as K, Op, Span, SpannedTok, Tok};

/// Maximum expression/query nesting before the parser bails out. Protects
/// against stack overflow on pathological input (e.g. thousands of `(`).
/// Each level costs ~11 stack frames through the precedence chain, and
/// debug-build test threads get a 2 MiB stack, so this must stay small;
/// real workload queries nest below 10 (the paper's max nestedness is 8).
const MAX_DEPTH: u32 = 48;

/// A parse failure with location information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub span: Span,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at byte {}: {}",
            self.span.start, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Result of parsing, bundling lexer diagnostics with the outcome.
#[derive(Debug, Clone)]
pub struct ParseOutcome {
    pub result: Result<Script, ParseError>,
    pub lex_report: LexReport,
}

/// Parse a complete script. Never panics.
pub fn parse(input: &str) -> ParseOutcome {
    let (toks, lex_report) = lex(input);
    parse_tokens(&toks, lex_report, &[])
}

/// Parse a pre-lexed token stream. `params` is parallel to `toks` (or
/// empty): where `params[i] = Some(slot)`, the literal at token `i` parses
/// as [`Expr::Param`] with that slot instead of [`Expr::Literal`]. This is
/// the plan-cache miss path — the tokens and slot map come from
/// [`crate::fingerprint::lex_fingerprint`], and the resulting script is a
/// reusable template. With empty `params` the result is identical to
/// [`parse`]: the slot map is only consulted when a literal token is
/// successfully consumed, so error behavior cannot differ.
pub fn parse_tokens(
    toks: &[SpannedTok],
    lex_report: LexReport,
    params: &[Option<u32>],
) -> ParseOutcome {
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
        params,
    };
    let result = p.parse_script();
    ParseOutcome { result, lex_report }
}

/// Parse and return just the script, for tests and internal callers.
pub fn parse_script(input: &str) -> Result<Script, ParseError> {
    parse(input).result
}

struct Parser<'a> {
    toks: &'a [SpannedTok],
    pos: usize,
    depth: u32,
    /// Parallel to `toks`; `Some(slot)` marks a literal to parse as a
    /// template parameter. Empty for plain parsing.
    params: &'a [Option<u32>],
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    // ---- token utilities -------------------------------------------------

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, n: usize) -> Option<&Tok> {
        self.toks.get(self.pos + n).map(|t| &t.tok)
    }

    fn span(&self) -> Span {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.span)
            .unwrap_or(Span::new(0, 0))
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos).map(|t| &t.tok);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: K) -> bool {
        if matches!(self.peek(), Some(Tok::Keyword(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_tok(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: K) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", kw)))
        }
    }

    fn expect_tok(&mut self, tok: &Tok) -> PResult<()> {
        if self.eat_tok(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected {}", tok)))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            span: self.span(),
        }
    }

    fn enter(&mut self) -> PResult<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err("nesting too deep".into()))
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    // ---- script / statements --------------------------------------------

    fn parse_script(&mut self) -> PResult<Script> {
        let mut statements = Vec::new();
        // Skip leading semicolons.
        while self.eat_tok(&Tok::Semicolon) {}
        if self.peek().is_none() {
            return Err(ParseError {
                message: "empty statement".into(),
                span: Span::new(0, 0),
            });
        }
        while self.peek().is_some() {
            statements.push(self.parse_statement()?);
            while self.eat_tok(&Tok::Semicolon) {}
        }
        Ok(Script { statements })
    }

    fn parse_statement(&mut self) -> PResult<Statement> {
        match self.peek() {
            Some(Tok::Keyword(K::Select)) => Ok(Statement::Select(self.parse_query()?)),
            Some(Tok::LParen) if self.starts_subquery() => {
                // A parenthesized SELECT at statement level.
                self.expect_tok(&Tok::LParen)?;
                let q = self.parse_query()?;
                self.expect_tok(&Tok::RParen)?;
                Ok(Statement::Select(q))
            }
            Some(Tok::Keyword(K::Execute)) | Some(Tok::Keyword(K::Exec)) => {
                self.bump();
                let name = self.parse_qualified_name()?;
                // Arguments: comma-separated scalars until end/semicolon.
                let mut arg_count = 0;
                if !matches!(self.peek(), None | Some(Tok::Semicolon)) {
                    loop {
                        self.parse_expr()?;
                        arg_count += 1;
                        if !self.eat_tok(&Tok::Comma) {
                            break;
                        }
                    }
                }
                Ok(Statement::Execute { name, arg_count })
            }
            Some(Tok::Keyword(K::Create)) => self.parse_ddl(DdlVerb::Create),
            Some(Tok::Keyword(K::Drop)) => self.parse_ddl(DdlVerb::Drop),
            Some(Tok::Keyword(K::Alter)) => self.parse_ddl(DdlVerb::Alter),
            Some(Tok::Keyword(K::Truncate)) => self.parse_ddl(DdlVerb::Truncate),
            Some(Tok::Keyword(K::Insert)) => self.parse_insert(),
            Some(Tok::Keyword(K::Update)) => self.parse_update(),
            Some(Tok::Keyword(K::Delete)) => self.parse_delete(),
            Some(Tok::Keyword(K::Declare)) | Some(Tok::Keyword(K::Set)) => {
                // Procedural noise: swallow until semicolon or next statement
                // keyword at depth zero.
                self.bump();
                self.skip_until_statement_boundary();
                Ok(Statement::Procedural)
            }
            Some(t) => Err(self.err(format!("unexpected token {}", t))),
            None => Err(self.err("unexpected end of input".into())),
        }
    }

    fn skip_until_statement_boundary(&mut self) {
        let mut paren = 0i32;
        while let Some(t) = self.peek() {
            match t {
                Tok::Semicolon if paren == 0 => break,
                Tok::Keyword(
                    K::Select
                    | K::Insert
                    | K::Update
                    | K::Delete
                    | K::Create
                    | K::Drop
                    | K::Alter
                    | K::Declare,
                ) if paren == 0 => break,
                Tok::LParen => {
                    paren += 1;
                    self.pos += 1;
                }
                Tok::RParen => {
                    paren -= 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    fn parse_ddl(&mut self, verb: DdlVerb) -> PResult<Statement> {
        self.bump(); // the verb
                     // Optional object class keyword.
        let _ = self.eat_kw(K::Table)
            || self.eat_kw(K::View)
            || self.eat_kw(K::Index)
            || self.eat_kw(K::Database)
            || self.eat_kw(K::Procedure)
            || self.eat_kw(K::Function);
        let object = self.parse_qualified_name().ok();
        self.skip_until_statement_boundary();
        Ok(Statement::Ddl { verb, object })
    }

    fn parse_insert(&mut self) -> PResult<Statement> {
        self.expect_kw(K::Insert)?;
        let _ = self.eat_kw(K::Into);
        let table = self.parse_qualified_name().ok();
        // Optional column list.
        if self.peek() == Some(&Tok::LParen) && !self.starts_subquery() {
            self.expect_tok(&Tok::LParen)?;
            loop {
                self.parse_qualified_name()?;
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
            self.expect_tok(&Tok::RParen)?;
        }
        let query = if matches!(self.peek(), Some(Tok::Keyword(K::Select))) {
            Some(self.parse_query()?)
        } else {
            if self.eat_kw(K::Values) {
                self.expect_tok(&Tok::LParen)?;
                loop {
                    self.parse_expr()?;
                    if !self.eat_tok(&Tok::Comma) {
                        break;
                    }
                }
                self.expect_tok(&Tok::RParen)?;
            }
            None
        };
        Ok(Statement::Dml {
            verb: DmlVerb::Insert,
            table,
            query,
        })
    }

    fn parse_update(&mut self) -> PResult<Statement> {
        self.expect_kw(K::Update)?;
        let table = self.parse_qualified_name().ok();
        self.expect_kw(K::Set)?;
        loop {
            self.parse_qualified_name()?;
            self.expect_tok(&Tok::Op(Op::Eq))?;
            self.parse_expr()?;
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }
        let mut query = Query::empty();
        if self.eat_kw(K::Where) {
            query.where_clause = Some(self.parse_expr()?);
        }
        Ok(Statement::Dml {
            verb: DmlVerb::Update,
            table,
            query: Some(query),
        })
    }

    fn parse_delete(&mut self) -> PResult<Statement> {
        self.expect_kw(K::Delete)?;
        let _ = self.eat_kw(K::From);
        let table = self.parse_qualified_name().ok();
        let mut query = Query::empty();
        if self.eat_kw(K::Where) {
            query.where_clause = Some(self.parse_expr()?);
        }
        Ok(Statement::Dml {
            verb: DmlVerb::Delete,
            table,
            query: Some(query),
        })
    }

    // ---- SELECT ----------------------------------------------------------

    fn parse_query(&mut self) -> PResult<Query> {
        self.enter()?;
        let r = self.parse_query_inner();
        self.leave();
        r
    }

    fn parse_query_inner(&mut self) -> PResult<Query> {
        self.expect_kw(K::Select)?;
        let mut q = Query::empty();

        if self.eat_kw(K::Distinct) {
            q.distinct = true;
        } else {
            let _ = self.eat_kw(K::All);
        }
        if self.eat_kw(K::Top) {
            // TOP n or TOP (n)
            let parened = self.eat_tok(&Tok::LParen);
            match self.bump() {
                Some(Tok::Number(n)) => {
                    q.top = Some(n.parse::<f64>().unwrap_or(0.0).max(0.0) as u64);
                }
                _ => return Err(self.err("expected number after TOP".into())),
            }
            if parened {
                self.expect_tok(&Tok::RParen)?;
            }
        }

        // Select list.
        loop {
            let expr = self.parse_expr()?;
            let alias = self.parse_alias()?;
            q.select.push(SelectItem { expr, alias });
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }

        if self.eat_kw(K::Into) {
            q.into = Some(self.parse_qualified_name()?);
        }

        if self.eat_kw(K::From) {
            loop {
                q.from.push(self.parse_from_item()?);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
        }

        if self.eat_kw(K::Where) {
            q.where_clause = Some(self.parse_expr()?);
        }

        if self.eat_kw(K::Group) {
            self.expect_kw(K::By)?;
            loop {
                q.group_by.push(self.parse_expr()?);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
        }

        if self.eat_kw(K::Having) {
            q.having = Some(self.parse_expr()?);
        }

        if self.eat_kw(K::Order) {
            self.expect_kw(K::By)?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw(K::Desc) {
                    true
                } else {
                    let _ = self.eat_kw(K::Asc);
                    false
                };
                q.order_by.push(OrderByItem { expr, desc });
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
        }

        Ok(q)
    }

    fn parse_alias(&mut self) -> PResult<Option<String>> {
        if self.eat_kw(K::As) {
            match self.bump() {
                Some(Tok::Ident(name)) => Ok(Some(name.clone())),
                Some(Tok::String(name)) => Ok(Some(name.clone())),
                _ => Err(self.err("expected alias after AS".into())),
            }
        } else if let Some(Tok::Ident(name)) = self.peek() {
            let name = name.clone();
            self.pos += 1;
            Ok(Some(name))
        } else {
            Ok(None)
        }
    }

    fn parse_from_item(&mut self) -> PResult<FromItem> {
        let factor = self.parse_table_factor()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_kw(K::Inner) {
                self.expect_kw(K::Join)?;
                JoinKind::Inner
            } else if self.eat_kw(K::Left) {
                let _ = self.eat_kw(K::Outer);
                self.expect_kw(K::Join)?;
                JoinKind::Left
            } else if self.eat_kw(K::Right) {
                let _ = self.eat_kw(K::Outer);
                self.expect_kw(K::Join)?;
                JoinKind::Right
            } else if self.eat_kw(K::Full) {
                let _ = self.eat_kw(K::Outer);
                self.expect_kw(K::Join)?;
                JoinKind::Full
            } else if self.eat_kw(K::Cross) {
                self.expect_kw(K::Join)?;
                JoinKind::Cross
            } else if self.eat_kw(K::Join) {
                JoinKind::Inner
            } else {
                break;
            };
            let factor = self.parse_table_factor()?;
            let on = if kind != JoinKind::Cross {
                self.expect_kw(K::On)?;
                Some(self.parse_expr()?)
            } else {
                None
            };
            joins.push(Join { kind, factor, on });
        }
        Ok(FromItem { factor, joins })
    }

    fn parse_table_factor(&mut self) -> PResult<TableFactor> {
        if self.peek() == Some(&Tok::LParen) {
            if self.starts_subquery() {
                self.expect_tok(&Tok::LParen)?;
                let subquery = Box::new(self.parse_query()?);
                self.expect_tok(&Tok::RParen)?;
                let alias = self.parse_alias()?;
                return Ok(TableFactor::Derived { subquery, alias });
            }
            // Parenthesized table factor `(t)`.
            self.expect_tok(&Tok::LParen)?;
            let inner = self.parse_table_factor()?;
            self.expect_tok(&Tok::RParen)?;
            return Ok(inner);
        }
        let name = self.parse_qualified_name()?;
        let alias = self.parse_alias()?;
        Ok(TableFactor::Table { name, alias })
    }

    /// Does the token stream at the current position start `( SELECT`?
    /// Allows extra `(` nesting: `((SELECT ...))`.
    fn starts_subquery(&self) -> bool {
        let mut i = 0;
        while self.peek_at(i) == Some(&Tok::LParen) {
            i += 1;
        }
        i > 0 && matches!(self.peek_at(i), Some(Tok::Keyword(K::Select)))
    }

    fn parse_qualified_name(&mut self) -> PResult<QualifiedName> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Ident(name)) => {
                    parts.push(name.clone());
                    self.pos += 1;
                }
                // Aggregate keywords can appear as identifiers in names like
                // `a.min`; accept them as name parts when qualified.
                Some(Tok::Keyword(k)) if k.is_aggregate() && !parts.is_empty() => {
                    parts.push(format!("{:?}", k).to_lowercase());
                    self.pos += 1;
                }
                _ => {
                    if parts.is_empty() {
                        return Err(self.err("expected identifier".into()));
                    }
                    break;
                }
            }
            if !self.eat_tok(&Tok::Dot) {
                break;
            }
            // `alias.*` — leave the dot consumed and let the caller see Star.
            if matches!(self.peek(), Some(Tok::Op(Op::Star))) {
                parts.push("*".into());
                self.pos += 1;
                break;
            }
        }
        Ok(QualifiedName::new(parts))
    }

    // ---- expressions -----------------------------------------------------

    fn parse_expr(&mut self) -> PResult<Expr> {
        self.enter()?;
        let r = self.parse_or();
        self.leave();
        r
    }

    fn parse_or(&mut self) -> PResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw(K::Or) {
            let right = self.parse_and()?;
            left = Expr::Logical {
                left: Box::new(left),
                and: false,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> PResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw(K::And) {
            let right = self.parse_not()?;
            left = Expr::Logical {
                left: Box::new(left),
                and: true,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> PResult<Expr> {
        if self.eat_kw(K::Not) {
            self.enter()?;
            let inner = self.parse_not();
            self.leave();
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner?),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> PResult<Expr> {
        let left = self.parse_bit_or()?;

        // Postfix predicate forms.
        let negated = self.eat_kw(K::Not);

        if self.eat_kw(K::Between) {
            let low = self.parse_bit_or()?;
            self.expect_kw(K::And)?;
            let high = self.parse_bit_or()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                negated,
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if self.eat_kw(K::In) {
            self.expect_tok(&Tok::LParen)?;
            if matches!(self.peek(), Some(Tok::Keyword(K::Select))) {
                let q = self.parse_query()?;
                self.expect_tok(&Tok::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    negated,
                    subquery: Box::new(q),
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
            self.expect_tok(&Tok::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                negated,
                list,
            });
        }
        if self.eat_kw(K::Like) {
            let pattern = self.parse_bit_or()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                negated,
                pattern: Box::new(pattern),
            });
        }
        if negated {
            return Err(self.err("expected BETWEEN, IN or LIKE after NOT".into()));
        }
        if self.eat_kw(K::Is) {
            let negated = self.eat_kw(K::Not);
            self.expect_kw(K::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // Binary comparison operators (non-associative chain, applied
        // left-to-right as in T-SQL).
        if let Some(Tok::Op(op)) = self.peek() {
            let op = *op;
            if matches!(op, Op::Eq | Op::Neq | Op::Lt | Op::Lte | Op::Gt | Op::Gte) {
                self.pos += 1;
                let right = self.parse_bit_or()?;
                return Ok(Expr::Binary {
                    left: Box::new(left),
                    op,
                    right: Box::new(right),
                });
            }
        }
        Ok(left)
    }

    fn parse_bit_or(&mut self) -> PResult<Expr> {
        let mut left = self.parse_bit_and()?;
        while let Some(Tok::Op(op @ (Op::BitOr | Op::BitXor))) = self.peek() {
            let op = *op;
            self.pos += 1;
            let right = self.parse_bit_and()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_bit_and(&mut self) -> PResult<Expr> {
        let mut left = self.parse_additive()?;
        while let Some(Tok::Op(Op::BitAnd)) = self.peek() {
            self.pos += 1;
            let right = self.parse_additive()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: Op::BitAnd,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> PResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        while let Some(Tok::Op(op @ (Op::Plus | Op::Minus | Op::Concat))) = self.peek() {
            let op = *op;
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> PResult<Expr> {
        let mut left = self.parse_unary()?;
        while let Some(Tok::Op(op @ (Op::Star | Op::Slash | Op::Percent))) = self.peek() {
            let op = *op;
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        match self.peek() {
            Some(Tok::Op(Op::Minus)) => {
                self.pos += 1;
                self.enter()?;
                let inner = self.parse_unary();
                self.leave();
                Ok(Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(inner?),
                })
            }
            Some(Tok::Op(Op::Plus)) => {
                self.pos += 1;
                self.enter()?;
                let inner = self.parse_unary();
                self.leave();
                Ok(Expr::Unary {
                    op: UnaryOp::Plus,
                    expr: Box::new(inner?),
                })
            }
            _ => self.parse_primary(),
        }
    }

    /// The parameter slot assigned to the token at the cursor, if any.
    fn param_slot(&self) -> Option<u32> {
        self.params.get(self.pos).copied().flatten()
    }

    /// Wrap a just-consumed literal: plain `Literal`, or `Param` when the
    /// token carried a plan-cache slot.
    fn lift_literal(slot: Option<u32>, value: Literal) -> Expr {
        match slot {
            Some(slot) => Expr::Param { slot, value },
            None => Expr::Literal(value),
        }
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        match self.peek() {
            Some(Tok::Number(n)) => {
                let text = n.clone();
                let slot = self.param_slot();
                self.pos += 1;
                Ok(Self::lift_literal(slot, Literal::number_from_text(text)))
            }
            Some(Tok::HexNumber(h)) => {
                let text = h.clone();
                let slot = self.param_slot();
                self.pos += 1;
                Ok(Self::lift_literal(slot, Literal::hex_from_text(text)))
            }
            Some(Tok::String(s)) => {
                let s = s.clone();
                let slot = self.param_slot();
                self.pos += 1;
                Ok(Self::lift_literal(slot, Literal::String(s)))
            }
            Some(Tok::Keyword(K::Null)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Null))
            }
            Some(Tok::Op(Op::Star)) => {
                self.pos += 1;
                Ok(Expr::Wildcard(None))
            }
            Some(Tok::Keyword(K::Exists)) => {
                self.pos += 1;
                self.expect_tok(&Tok::LParen)?;
                let q = self.parse_query()?;
                self.expect_tok(&Tok::RParen)?;
                Ok(Expr::Exists {
                    negated: false,
                    subquery: Box::new(q),
                })
            }
            Some(Tok::Keyword(K::Case)) => self.parse_case(),
            Some(Tok::Keyword(K::Cast)) => self.parse_cast(),
            Some(Tok::Keyword(k)) if k.is_aggregate() => {
                let k = *k;
                self.pos += 1;
                if self.peek() == Some(&Tok::LParen) {
                    self.parse_call_args(QualifiedName::single(format!("{:?}", k).to_lowercase()))
                } else {
                    // Bare aggregate keyword used as a column name.
                    Ok(Expr::Column(QualifiedName::single(
                        format!("{:?}", k).to_lowercase(),
                    )))
                }
            }
            Some(Tok::LParen) => {
                if self.starts_subquery() {
                    self.expect_tok(&Tok::LParen)?;
                    // Peel extra parens: ((SELECT ...)).
                    if self.starts_subquery() {
                        let inner = self.parse_primary()?;
                        self.expect_tok(&Tok::RParen)?;
                        return Ok(inner);
                    }
                    let q = self.parse_query()?;
                    self.expect_tok(&Tok::RParen)?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                self.expect_tok(&Tok::LParen)?;
                let inner = self.parse_expr()?;
                self.expect_tok(&Tok::RParen)?;
                Ok(inner)
            }
            Some(Tok::Ident(_)) => {
                let name = self.parse_qualified_name()?;
                if name.base() == "*" {
                    let mut parts = name.parts;
                    parts.pop();
                    let qual = if parts.is_empty() {
                        None
                    } else {
                        Some(parts.join("."))
                    };
                    return Ok(Expr::Wildcard(qual));
                }
                if self.peek() == Some(&Tok::LParen) {
                    self.parse_call_args(name)
                } else {
                    Ok(Expr::Column(name))
                }
            }
            Some(t) => Err(self.err(format!("unexpected token {} in expression", t))),
            None => Err(self.err("unexpected end of expression".into())),
        }
    }

    fn parse_call_args(&mut self, name: QualifiedName) -> PResult<Expr> {
        self.expect_tok(&Tok::LParen)?;
        let aggregate = match name.base().to_ascii_lowercase().as_str() {
            "count" => Some(Aggregate::Count),
            "min" => Some(Aggregate::Min),
            "max" => Some(Aggregate::Max),
            "avg" => Some(Aggregate::Avg),
            "sum" => Some(Aggregate::Sum),
            _ => None,
        };
        let distinct = self.eat_kw(K::Distinct);
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect_tok(&Tok::RParen)?;
        Ok(Expr::Function(FunctionCall {
            name,
            aggregate,
            distinct,
            args,
        }))
    }

    fn parse_case(&mut self) -> PResult<Expr> {
        self.expect_kw(K::Case)?;
        let operand = if !matches!(self.peek(), Some(Tok::Keyword(K::When))) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.eat_kw(K::When) {
            let cond = self.parse_expr()?;
            self.expect_kw(K::Then)?;
            let value = self.parse_expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN".into()));
        }
        let else_expr = if self.eat_kw(K::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw(K::End)?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }

    fn parse_cast(&mut self) -> PResult<Expr> {
        self.expect_kw(K::Cast)?;
        self.expect_tok(&Tok::LParen)?;
        let expr = self.parse_expr()?;
        self.expect_kw(K::As)?;
        // Type: ident possibly with (n) or (p, s).
        let ty_name = match self.bump() {
            Some(Tok::Ident(t)) => t.clone(),
            _ => return Err(self.err("expected type name in CAST".into())),
        };
        let mut ty = ty_name;
        if self.eat_tok(&Tok::LParen) {
            ty.push('(');
            loop {
                match self.bump() {
                    Some(Tok::Number(n)) => ty.push_str(n),
                    Some(t) => return Err(self.err(format!("unexpected {} in type", t))),
                    None => return Err(self.err("unterminated type".into())),
                }
                if self.eat_tok(&Tok::Comma) {
                    ty.push(',');
                } else {
                    break;
                }
            }
            self.expect_tok(&Tok::RParen)?;
            ty.push(')');
        }
        self.expect_tok(&Tok::RParen)?;
        Ok(Expr::Cast {
            expr: Box::new(expr),
            ty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sql: &str) -> Query {
        match parse_script(sql).unwrap().statements.remove(0) {
            Statement::Select(q) => q,
            other => panic!("expected SELECT, got {:?}", other),
        }
    }

    trait Remove0 {
        fn remove(self, i: usize) -> Statement;
    }
    impl Remove0 for Vec<Statement> {
        fn remove(mut self, i: usize) -> Statement {
            Vec::remove(&mut self, i)
        }
    }

    #[test]
    fn parses_figure_2a_query() {
        let query = q("SELECT * FROM PhotoTag WHERE objId=0x112d075f80360018");
        assert_eq!(query.select.len(), 1);
        assert!(matches!(query.select[0].expr, Expr::Wildcard(None)));
        assert_eq!(query.from.len(), 1);
        assert!(query.where_clause.is_some());
    }

    #[test]
    fn parses_figure_2b_query() {
        let sql = "SELECT p.objid,p.ra,p.dec,p.u,p.g,p.r,p.i,p.z \
                   FROM PhotoObj AS p \
                   WHERE type=6 \
                   AND p.ra BETWEEN (156.519031-0.200000) AND (156.519031+0.200000) \
                   AND p.dec BETWEEN (62.835405-0.200000) AND (62.835405+0.200000) \
                   ORDER BY p.objid";
        let query = q(sql);
        assert_eq!(query.select.len(), 8);
        assert_eq!(query.order_by.len(), 1);
        assert!(!query.order_by[0].desc);
    }

    #[test]
    fn parses_figure_1b_bitwise_function_predicate() {
        let sql = "SELECT objid FROM PhotoObj WHERE flags & dbo.fPhotoFlags('BLENDED') > 0";
        let query = q(sql);
        // (flags & f(...)) > 0
        match query.where_clause.unwrap() {
            Expr::Binary {
                op: Op::Gt, left, ..
            } => match *left {
                Expr::Binary {
                    op: Op::BitAnd,
                    right,
                    ..
                } => {
                    assert!(matches!(*right, Expr::Function(_)));
                }
                other => panic!("expected bitand, got {:?}", other),
            },
            other => panic!("expected >, got {:?}", other),
        }
    }

    #[test]
    fn parses_figure_5_nested_aggregate() {
        let sql = "SELECT dbo.fGetURLExpid(objid) FROM SpecPhoto \
                   WHERE modelmag_u-modelmag_g = \
                   (SELECT min(modelmag_u-modelmag_g) \
                    FROM SpecPhoto AS s INNER JOIN PhotoObj AS p ON s.objid=p.objid \
                    WHERE (s.flags_g=0 OR p.psfmagerr_g<=0.2 AND p.psfmagerr_u<=0.2))";
        let query = q(sql);
        assert!(matches!(query.select[0].expr, Expr::Function(_)));
        match query.where_clause.unwrap() {
            Expr::Binary { right, .. } => assert!(matches!(*right, Expr::Subquery(_))),
            other => panic!("expected binary with subquery, got {:?}", other),
        }
    }

    #[test]
    fn parses_joins() {
        let query = q("SELECT a.x FROM t1 a LEFT OUTER JOIN t2 b ON a.id = b.id \
                       CROSS JOIN t3 WHERE a.x > 1");
        assert_eq!(query.from.len(), 1);
        assert_eq!(query.from[0].joins.len(), 2);
        assert_eq!(query.from[0].joins[0].kind, JoinKind::Left);
        assert_eq!(query.from[0].joins[1].kind, JoinKind::Cross);
        assert!(query.from[0].joins[1].on.is_none());
    }

    #[test]
    fn parses_comma_join_with_derived_table() {
        let sql = "SELECT j.target FROM Jobs j, Users u, \
                   (SELECT DISTINCT target FROM Servers s1) b WHERE j.x LIKE '%QUERY%'";
        let query = q(sql);
        assert_eq!(query.from.len(), 3);
        assert!(matches!(query.from[2].factor, TableFactor::Derived { .. }));
    }

    #[test]
    fn parses_group_by_having_top_distinct_into() {
        let sql = "SELECT DISTINCT TOP 10 type, count(*) cnt INTO mydb.results \
                   FROM PhotoObj GROUP BY type HAVING count(*) > 100 ORDER BY cnt DESC";
        let query = q(sql);
        assert!(query.distinct);
        assert_eq!(query.top, Some(10));
        assert!(query.into.is_some());
        assert_eq!(query.group_by.len(), 1);
        assert!(query.having.is_some());
        assert!(query.order_by[0].desc);
    }

    #[test]
    fn parses_case_and_cast() {
        let sql = "SELECT CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END, \
                   cast(j.estimate AS varchar) AS queue FROM Jobs j";
        let query = q(sql);
        assert!(matches!(query.select[0].expr, Expr::Case { .. }));
        assert!(matches!(query.select[1].expr, Expr::Cast { .. }));
    }

    #[test]
    fn parses_in_exists_isnull() {
        let sql = "SELECT x FROM t WHERE a IN (1,2,3) AND b NOT IN (SELECT b FROM u) \
                   AND EXISTS (SELECT 1 FROM v) AND c IS NOT NULL";
        let query = q(sql);
        assert!(query.where_clause.is_some());
    }

    #[test]
    fn parses_execute() {
        let s = parse_script("EXEC dbo.spGetNeighbors 185.0, -0.5").unwrap();
        match &s.statements[0] {
            Statement::Execute { name, arg_count } => {
                assert_eq!(name.canonical(), "dbo.spgetneighbors");
                assert_eq!(*arg_count, 2);
            }
            other => panic!("expected EXECUTE, got {:?}", other),
        }
    }

    #[test]
    fn parses_ddl_and_dml() {
        assert!(matches!(
            parse_script("CREATE TABLE mydb.t (x int)")
                .unwrap()
                .statements[0],
            Statement::Ddl {
                verb: DdlVerb::Create,
                ..
            }
        ));
        assert!(matches!(
            parse_script("DROP TABLE mydb.t").unwrap().statements[0],
            Statement::Ddl {
                verb: DdlVerb::Drop,
                ..
            }
        ));
        assert!(matches!(
            parse_script("INSERT INTO t (a, b) VALUES (1, 'x')")
                .unwrap()
                .statements[0],
            Statement::Dml {
                verb: DmlVerb::Insert,
                ..
            }
        ));
        assert!(matches!(
            parse_script("UPDATE t SET a = 1 WHERE b = 2")
                .unwrap()
                .statements[0],
            Statement::Dml {
                verb: DmlVerb::Update,
                ..
            }
        ));
        assert!(matches!(
            parse_script("DELETE FROM t WHERE a = 1")
                .unwrap()
                .statements[0],
            Statement::Dml {
                verb: DmlVerb::Delete,
                ..
            }
        ));
    }

    #[test]
    fn rejects_natural_language() {
        assert!(parse_script("please show me all the galaxies").is_err());
        assert!(parse_script("").is_err());
    }

    #[test]
    fn rejects_truncated_sql() {
        assert!(parse_script("SELECT * FROM").is_err());
        assert!(parse_script("SELECT * FROM t WHERE").is_err());
        assert!(parse_script("SELECT FROM t").is_err());
    }

    #[test]
    fn depth_guard_prevents_stack_overflow() {
        let mut sql = String::from("SELECT ");
        for _ in 0..10_000 {
            sql.push('(');
        }
        sql.push('1');
        // Must return an error rather than overflow the stack.
        assert!(parse_script(&sql).is_err());
    }

    #[test]
    fn multi_statement_script() {
        let s = parse_script("SELECT 1; SELECT 2;").unwrap();
        assert_eq!(s.statements.len(), 2);
    }

    #[test]
    fn aggregate_keyword_as_function() {
        let query = q("SELECT min(queue) FROM Servers GROUP BY target");
        match &query.select[0].expr {
            Expr::Function(f) => assert_eq!(f.aggregate, Some(Aggregate::Min)),
            other => panic!("expected function, got {:?}", other),
        }
    }

    #[test]
    fn qualified_wildcard() {
        let query = q("SELECT p.* FROM PhotoObj p");
        assert!(matches!(&query.select[0].expr, Expr::Wildcard(Some(a)) if a == "p"));
    }

    #[test]
    fn top_with_parens() {
        let query = q("SELECT TOP (5) x FROM t");
        assert_eq!(query.top, Some(5));
    }
}
