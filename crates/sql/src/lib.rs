//! # sqlan-sql
//!
//! SQL lexing, parsing, and syntactic analysis for the `sqlan` project —
//! a reproduction of *"Facilitating SQL Query Composition and Analysis"*
//! (Zolaktaf, Milani, Pottinger; SIGMOD 2020).
//!
//! The dialect targets what appears in the SDSS CasJobs and SQLShare query
//! workloads: T-SQL-flavoured SELECT with joins, subqueries, aggregation,
//! `TOP`, `INTO`, bitwise predicates, bracketed identifiers and hex
//! literals, plus shallow recognition of EXECUTE/DDL/DML statements.
//!
//! Everything is tolerant: arbitrary byte strings lex without panicking
//! and parse failures are ordinary `Result` values — in the paper's
//! workloads, "the end user can submit any query to the system, including
//! a random natural language sentence" (§3).
//!
//! ```
//! use sqlan_sql::{parse, extract_props};
//!
//! let outcome = parse("SELECT TOP 10 objid FROM PhotoObj WHERE ra BETWEEN 150 AND 151");
//! assert!(outcome.result.is_ok());
//!
//! let props = extract_props("SELECT * FROM PhotoTag WHERE objId = 0x112d075f80360018");
//! assert_eq!(props.num_tables, 1);
//! assert_eq!(props.num_predicates, 1);
//! ```

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod display;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod props;
pub mod token;
pub mod visit;

pub use ast::{
    Aggregate, DdlVerb, DmlVerb, Expr, FromItem, FunctionCall, Join, JoinKind, Literal,
    OrderByItem, QualifiedName, Query, Script, SelectItem, Statement, TableFactor, UnaryOp,
};
pub use fingerprint::{fingerprint, lex_fingerprint, normalize_statement, FingerprintedLex};
pub use lexer::{lex, lex_tokens, LexReport};
pub use parser::{parse, parse_script, parse_tokens, ParseError, ParseOutcome};
pub use props::{extract_props, extract_statement_props, word_count, StructuralProps};
pub use token::{Keyword, Op, Span, SpannedTok, Tok};
