//! Extraction of the ten syntactic properties of §4.3.1 of the paper.
//!
//! The paper used ANTLR ASTs; we extract the same properties from our own
//! AST. For statements that fail to parse (arbitrary text is legal input),
//! the text-level properties (characters, words) are still computed from
//! the raw token stream and the structural properties are zero.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use crate::ast::*;
use crate::lexer::lex_tokens;
use crate::parser::parse;
use crate::visit::{queries_with_depth, walk_expr, walk_query_exprs};

/// The ten structural properties of a query statement (§4.3.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StructuralProps {
    /// (1) number of characters in the statement text.
    pub num_chars: u32,
    /// (2) number of word tokens (digits collapse to one `<DIGIT>` token).
    pub num_words: u32,
    /// (3) number of function calls (scalar functions and aggregates).
    pub num_functions: u32,
    /// (4) number of explicit join operators.
    pub num_joins: u32,
    /// (5) number of unique table names referenced anywhere.
    pub num_tables: u32,
    /// (6) number of column references in select lists (a bare `*` adds 0).
    pub num_select_columns: u32,
    /// (7) number of predicates (logical conditions) in WHERE/ON/HAVING.
    pub num_predicates: u32,
    /// (8) number of column references appearing inside predicates.
    pub num_predicate_columns: u32,
    /// (9) maximum subquery nesting depth (flat query = 0).
    pub nestedness_level: u32,
    /// (10) true when a nested query involves aggregation.
    pub nested_aggregation: bool,
}

impl StructuralProps {
    /// The property vector in the order the paper's figures use.
    pub fn as_vector(&self) -> [f64; 10] {
        [
            self.num_chars as f64,
            self.num_words as f64,
            self.num_functions as f64,
            self.num_joins as f64,
            self.num_tables as f64,
            self.num_select_columns as f64,
            self.num_predicates as f64,
            self.num_predicate_columns as f64,
            self.nestedness_level as f64,
            if self.nested_aggregation { 1.0 } else { 0.0 },
        ]
    }

    /// Human-readable names matching [`StructuralProps::as_vector`] order.
    pub const NAMES: [&'static str; 10] = [
        "Number of characters",
        "Number of words",
        "Number of functions",
        "Number of joins",
        "Number of tables",
        "Number of select columns",
        "Number of predicates",
        "Number of predicate columns",
        "Nestedness level",
        "Nested aggregation",
    ];
}

/// Extract structural properties from raw statement text.
///
/// This is the main entry point used by workload analysis: it lexes and
/// parses internally, degrading gracefully on unparseable input.
pub fn extract_props(text: &str) -> StructuralProps {
    let mut props = StructuralProps {
        num_chars: text.chars().count() as u32,
        num_words: count_words(text),
        ..StructuralProps::default()
    };
    if let Ok(script) = parse(text).result {
        for stmt in &script.statements {
            accumulate_statement(stmt, &mut props);
        }
    }
    props
}

/// Word count at the lexical level: each token is a word; digit-runs in
/// numeric literals collapse to a single `<DIGIT>` word, matching the
/// paper's preprocessing.
fn count_words(text: &str) -> u32 {
    lex_tokens(text).len() as u32
}

/// Extract properties from an already-parsed statement (text-level counts
/// must be supplied by the caller).
pub fn extract_statement_props(stmt: &Statement) -> StructuralProps {
    let mut props = StructuralProps::default();
    accumulate_statement(stmt, &mut props);
    props
}

fn accumulate_statement(stmt: &Statement, props: &mut StructuralProps) {
    let queries = queries_with_depth(stmt);
    let mut tables: BTreeSet<String> = BTreeSet::new();

    for &(query, depth) in &queries {
        props.nestedness_level = props.nestedness_level.max(depth);

        // Tables from FROM clauses.
        for fi in &query.from {
            collect_table(&fi.factor, &mut tables);
            for j in &fi.joins {
                collect_table(&j.factor, &mut tables);
                props.num_joins += 1;
            }
        }

        // Select-list column references.
        for item in &query.select {
            walk_expr(&item.expr, &mut |e| {
                if matches!(e, Expr::Column(_)) {
                    props.num_select_columns += 1;
                }
            });
        }

        // Functions anywhere in this query's own expressions; aggregates in
        // nested queries set the nested_aggregation flag.
        walk_query_exprs(query, &mut |e| {
            if let Expr::Function(f) = e {
                props.num_functions += 1;
                if depth > 0 && f.aggregate.is_some() {
                    props.nested_aggregation = true;
                }
            }
        });

        // Predicates: leaves of the boolean structure of WHERE/ON/HAVING.
        let mut count_predicates = |root: &Expr| {
            count_predicate_leaves(root, props);
        };
        if let Some(w) = &query.where_clause {
            count_predicates(w);
        }
        if let Some(h) = &query.having {
            count_predicates(h);
        }
        for fi in &query.from {
            for j in &fi.joins {
                if let Some(on) = &j.on {
                    count_predicates(on);
                }
            }
        }
    }

    // DML statements reference their target table too.
    match stmt {
        Statement::Dml { table: Some(t), .. }
        | Statement::Ddl {
            object: Some(t), ..
        } => {
            tables.insert(t.canonical());
        }
        _ => {}
    }

    props.num_tables += tables.len() as u32;
}

fn collect_table(factor: &TableFactor, tables: &mut BTreeSet<String>) {
    if let TableFactor::Table { name, .. } = factor {
        tables.insert(name.canonical());
    }
}

/// A "predicate" is a leaf logical condition: a comparison, BETWEEN, IN,
/// LIKE, IS NULL or EXISTS. AND/OR/NOT combine predicates and are not
/// themselves counted.
fn count_predicate_leaves(expr: &Expr, props: &mut StructuralProps) {
    match expr {
        Expr::Logical { left, right, .. } => {
            count_predicate_leaves(left, props);
            count_predicate_leaves(right, props);
        }
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => count_predicate_leaves(expr, props),
        Expr::Binary { op, left, right } if op.is_comparison() => {
            props.num_predicates += 1;
            count_columns(left, props);
            count_columns(right, props);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            props.num_predicates += 1;
            count_columns(expr, props);
            count_columns(low, props);
            count_columns(high, props);
        }
        Expr::InList { expr, list, .. } => {
            props.num_predicates += 1;
            count_columns(expr, props);
            for e in list {
                count_columns(e, props);
            }
        }
        Expr::InSubquery { expr, .. } => {
            props.num_predicates += 1;
            count_columns(expr, props);
        }
        Expr::Like { expr, pattern, .. } => {
            props.num_predicates += 1;
            count_columns(expr, props);
            count_columns(pattern, props);
        }
        Expr::IsNull { expr, .. } => {
            props.num_predicates += 1;
            count_columns(expr, props);
        }
        Expr::Exists { .. } => {
            props.num_predicates += 1;
        }
        // A bare boolean-ish expression (e.g. `WHERE flag`) still counts as
        // one condition.
        _ => {
            props.num_predicates += 1;
            count_columns(expr, props);
        }
    }
}

fn count_columns(expr: &Expr, props: &mut StructuralProps) {
    walk_expr(expr, &mut |e| {
        if matches!(e, Expr::Column(_)) {
            props.num_predicate_columns += 1;
        }
    });
}

impl crate::token::Op {
    /// Is this operator a comparison (as opposed to arithmetic/bitwise)?
    pub fn is_comparison(self) -> bool {
        use crate::token::Op::*;
        matches!(self, Eq | Neq | Lt | Lte | Gt | Gte)
    }
}

/// Count raw word tokens of arbitrary text (exposed for the analysis layer).
pub fn word_count(text: &str) -> u32 {
    count_words(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select_star() {
        let p = extract_props("SELECT * FROM PhotoTag WHERE objId=0x112d075f80360018");
        assert_eq!(p.num_functions, 0);
        assert_eq!(p.num_joins, 0);
        assert_eq!(p.num_tables, 1);
        assert_eq!(p.num_select_columns, 0); // bare star selects no named column
        assert_eq!(p.num_predicates, 1);
        assert_eq!(p.num_predicate_columns, 1);
        assert_eq!(p.nestedness_level, 0);
        assert!(!p.nested_aggregation);
    }

    #[test]
    fn figure5_style_query() {
        // Mirrors the paper's Figure 5 / Example 3 query.
        let sql = "SELECT dbo.fGetURLExpid(objid) FROM SpecPhoto \
                   WHERE modelmag_u-modelmag_g = \
                   (SELECT min(modelmag_u-modelmag_g) \
                    FROM SpecPhoto AS s INNER JOIN PhotoObj AS p ON s.objid=p.objid \
                    WHERE s.flags_g=0 OR p.psfmagerr_g<=0.2 AND p.psfmagerr_u<=0.2)";
        let p = extract_props(sql);
        // Example 3: number of functions = 2 (dbo.fGetURLExpid and min).
        assert_eq!(p.num_functions, 2);
        // Example 3: number of unique table names = 2 (SpecPhoto, PhotoObj).
        assert_eq!(p.num_tables, 2);
        // Example 3: nestedness level = 1, nested aggregation = true.
        assert_eq!(p.nestedness_level, 1);
        assert!(p.nested_aggregation);
        // Example 3: 5 predicates: 1 in the main query, the ON-condition of
        // the inner join, and 3 in the subquery WHERE.
        assert_eq!(p.num_predicates, 5);
        assert_eq!(p.num_joins, 1);
    }

    #[test]
    fn figure2b_counts() {
        let sql = "SELECT p.objid,p.ra,p.dec,p.u,p.g,p.r,p.i,p.z FROM PhotoObj AS p \
                   WHERE type=6 AND p.ra BETWEEN 156.3 AND 156.7 \
                   AND p.dec BETWEEN 62.6 AND 63.0 ORDER BY p.objid";
        let p = extract_props(sql);
        assert_eq!(p.num_select_columns, 8);
        assert_eq!(p.num_predicates, 3);
        assert_eq!(p.num_tables, 1);
    }

    #[test]
    fn unparseable_text_has_text_props_only() {
        let p = extract_props("show me the galaxies near m31");
        assert!(p.num_chars > 0);
        assert!(p.num_words > 0);
        assert_eq!(p.num_tables, 0);
        assert_eq!(p.num_predicates, 0);
    }

    #[test]
    fn nested_without_aggregation() {
        let p = extract_props("SELECT x FROM t WHERE y IN (SELECT y FROM u WHERE z = 1)");
        assert_eq!(p.nestedness_level, 1);
        assert!(!p.nested_aggregation);
    }

    #[test]
    fn top_level_aggregation_is_not_nested_aggregation() {
        let p = extract_props("SELECT count(*) FROM t GROUP BY g");
        assert_eq!(p.num_functions, 1);
        assert!(!p.nested_aggregation);
    }

    #[test]
    fn unique_tables_deduplicate_across_subqueries() {
        let p = extract_props(
            "SELECT a FROM t WHERE a > (SELECT avg(a) FROM t) AND b IN (SELECT b FROM u)",
        );
        assert_eq!(p.num_tables, 2);
    }

    #[test]
    fn char_count_is_unicode_aware() {
        let p = extract_props("SELECT 'é'");
        assert_eq!(p.num_chars, 10);
    }

    #[test]
    fn vector_matches_names_len() {
        let p = extract_props("SELECT 1");
        assert_eq!(p.as_vector().len(), StructuralProps::NAMES.len());
    }

    #[test]
    fn comma_join_counts_tables_not_joins() {
        let p = extract_props("SELECT a.x FROM t1 a, t2 b, t3 c WHERE a.i=b.i AND b.j=c.j");
        assert_eq!(p.num_tables, 3);
        assert_eq!(p.num_joins, 0); // explicit JOIN operators only
        assert_eq!(p.num_predicates, 2);
        assert_eq!(p.num_predicate_columns, 4);
    }
}
