//! Optimizer-equivalence suite: every pass configuration must return the
//! same rows.
//!
//! For a corpus of generated queries, each optimizer pass is toggled on
//! and off — individually, in combination, and at every [`OptLevel`] —
//! and the results are compared order-insensitively against the default
//! configuration. Passes may change *how much work* execution does (that
//! is their job), but never *what* a query returns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sqlan_engine::{
    Catalog, ColumnSpec, ConstantFolding, CostCounter, Database, EquiJoinDetection, ExecLimits,
    OptLevel, Optimizer, PredicatePushdown, ProjectionPruning, TableSpec,
};
use sqlan_sql::Statement;

/// Small catalog so even cross-product plans stay under the row budget.
fn catalog() -> Catalog {
    let specs = vec![
        TableSpec::new("Obj", 240)
            .column("id", ColumnSpec::SeqId)
            .column("x", ColumnSpec::IntUniform(0, 40))
            .column("y", ColumnSpec::Uniform(0.0, 100.0))
            .column("kind", ColumnSpec::Categorical(5))
            .column("tag", ColumnSpec::StrChoice(&["a", "b", "c"])),
        TableSpec::new("Spec", 90)
            .column("sid", ColumnSpec::SeqId)
            .column("obj_id", ColumnSpec::IntUniform(0, 239))
            .column("z", ColumnSpec::Uniform(0.0, 4.0)),
        TableSpec::new("Tiny", 25)
            .column("tid", ColumnSpec::SeqId)
            .column("grp", ColumnSpec::Categorical(3)),
    ];
    Catalog::generate(&specs, 99)
}

/// A corpus exercising every operator: comma joins, explicit joins of all
/// kinds, pushable and residual predicates, aggregates, HAVING, DISTINCT,
/// ORDER BY (on unique keys, so ties cannot make TOP ambiguous), TOP,
/// derived tables, and correlated + uncorrelated subqueries.
fn corpus() -> Vec<String> {
    let mut qs: Vec<String> = vec![
        "SELECT * FROM Obj".into(),
        "SELECT id, x + 1 AS x1 FROM Obj WHERE x > 10 AND kind = 2".into(),
        "SELECT o.id, s.z FROM Obj o, Spec s WHERE o.id = s.obj_id AND o.x < 30".into(),
        "SELECT o.id FROM Obj o, Spec s, Tiny t \
         WHERE o.id = s.obj_id AND t.grp = o.kind AND s.z > 1.0"
            .into(),
        "SELECT o.id, s.sid FROM Obj o INNER JOIN Spec s ON o.id = s.obj_id".into(),
        "SELECT o.id, s.sid FROM Obj o LEFT JOIN Spec s ON o.id = s.obj_id".into(),
        "SELECT o.id, s.sid FROM Obj o RIGHT JOIN Spec s ON o.id = s.obj_id".into(),
        "SELECT o.id, s.sid FROM Obj o FULL JOIN Spec s ON o.id = s.obj_id".into(),
        "SELECT t.tid, o.id FROM Tiny t CROSS JOIN Obj o WHERE o.x = t.tid".into(),
        "SELECT o.id FROM Obj o INNER JOIN Spec s ON o.id = s.obj_id AND s.z > 2.0".into(),
        "SELECT kind, count(*) AS n, avg(y) FROM Obj GROUP BY kind \
         HAVING count(*) > 10 ORDER BY n DESC, kind"
            .into(),
        "SELECT count(*) FROM Obj WHERE 2 + 3 * 4 < x".into(),
        "SELECT DISTINCT kind FROM Obj ORDER BY kind".into(),
        "SELECT TOP 9 id FROM Obj ORDER BY id DESC".into(),
        "SELECT d.kind FROM (SELECT kind, count(*) AS n FROM Obj GROUP BY kind) d \
         WHERE d.n > 20 ORDER BY d.kind"
            .into(),
        "SELECT id FROM Obj WHERE y > (SELECT avg(y) FROM Obj) ORDER BY id".into(),
        "SELECT sid FROM Spec WHERE obj_id IN (SELECT id FROM Obj WHERE kind = 1)".into(),
        "SELECT o.id FROM Obj o WHERE EXISTS \
         (SELECT 1 FROM Spec s WHERE s.obj_id = o.id AND s.z > o.x / 20)"
            .into(),
        "SELECT tag, x * 2 - 1 FROM Obj WHERE x BETWEEN 5 AND 25 AND tag LIKE '%a%'".into(),
        "SELECT CASE WHEN x > 20 THEN 'hi' ELSE 'lo' END AS band, count(*) \
         FROM Obj GROUP BY CASE WHEN x > 20 THEN 'hi' ELSE 'lo' END ORDER BY band"
            .into(),
        "SELECT 1 + 1".into(),
        "SELECT o.kind FROM Obj o, Tiny t WHERE o.kind = t.grp AND t.tid < 10".into(),
    ];
    // Seeded parameterized variants: predicates at varying selectivities
    // over all join shapes.
    let mut rng = StdRng::seed_from_u64(0xE0);
    for _ in 0..30 {
        let a = rng.gen_range(0..40);
        let b = rng.gen_range(0..5);
        let z = rng.gen_range(0.0..4.0);
        qs.push(format!(
            "SELECT o.id, s.z FROM Obj o, Spec s \
             WHERE s.obj_id = o.id AND o.x >= {a} AND s.z < {z:.3}"
        ));
        qs.push(format!(
            "SELECT kind, count(*) FROM Obj WHERE x < {a} AND kind <> {b} \
             GROUP BY kind ORDER BY kind"
        ));
        qs.push(format!(
            "SELECT o.id FROM Obj o LEFT JOIN Spec s ON o.id = s.obj_id \
             WHERE o.kind = {b} ORDER BY o.id"
        ));
    }
    qs
}

/// Run one query under one optimizer configuration; canonicalize the
/// result as an order-insensitive multiset of row renderings.
fn run(db: &Database, sql: &str) -> Result<Vec<String>, String> {
    let script = sqlan_sql::parse_script(sql).expect("corpus must parse");
    let q = match &script.statements[0] {
        Statement::Select(q) => q,
        other => panic!("corpus must be SELECTs, got {other:?}"),
    };
    let mut counter = CostCounter::default();
    let rel = db.run_query(q, &mut counter).map_err(|e| e.to_string())?;
    let mut rows: Vec<String> = rel
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| format!("{v:?}"))
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    Ok(rows)
}

fn configs() -> Vec<(String, Optimizer)> {
    let mut out: Vec<(String, Optimizer)> = vec![
        ("none".into(), Optimizer::none()),
        ("default".into(), Optimizer::with_level(OptLevel::Default)),
        (
            "aggressive".into(),
            Optimizer::with_level(OptLevel::Aggressive),
        ),
        (
            "only_pushdown".into(),
            Optimizer::none().with_pass(PredicatePushdown),
        ),
        (
            "only_equijoin".into(),
            Optimizer::none().with_pass(EquiJoinDetection),
        ),
        (
            "only_folding".into(),
            Optimizer::none().with_pass(ConstantFolding),
        ),
        (
            "only_pruning".into(),
            Optimizer::none().with_pass(ProjectionPruning),
        ),
    ];
    // Default minus each of its passes, via the name-based toggle.
    for name in ["predicate_pushdown", "equi_join_detection"] {
        out.push((
            format!("default_without_{name}"),
            Optimizer::with_level(OptLevel::Default).without_pass(name),
        ));
    }
    // Aggressive minus each extra pass.
    for name in ["constant_folding", "projection_pruning"] {
        out.push((
            format!("aggressive_without_{name}"),
            Optimizer::with_level(OptLevel::Aggressive).without_pass(name),
        ));
    }
    out
}

#[test]
fn every_pass_configuration_returns_identical_rows() {
    let cat = catalog();
    // Cross-product folds materialize up to |Obj| × |Spec| × |Tiny| rows;
    // raise the budget so `none` can finish and be compared.
    let limits = ExecLimits {
        max_rows: 2_000_000,
        max_units: u64::MAX,
    };
    let reference_db = Database::new(cat.clone()).with_limits(limits);

    let corpus = corpus();
    let reference: Vec<Result<Vec<String>, String>> =
        corpus.iter().map(|sql| run(&reference_db, sql)).collect();
    for (i, r) in reference.iter().enumerate() {
        assert!(
            r.is_ok(),
            "corpus query must succeed at default level: {:?} — {}",
            r,
            corpus[i]
        );
    }

    for (name, optimizer) in configs() {
        let db = Database::new(cat.clone())
            .with_limits(limits)
            .with_optimizer(optimizer);
        for (sql, want) in corpus.iter().zip(&reference) {
            let got = run(&db, sql);
            assert_eq!(
                &got, want,
                "results diverged under optimizer config `{name}`\nquery: {sql}"
            );
        }
    }
}

#[test]
fn default_level_runs_exactly_the_seed_pass_set() {
    let names = Optimizer::with_level(OptLevel::Default).pass_names();
    assert_eq!(names, vec!["predicate_pushdown", "equi_join_detection"]);
}

#[test]
fn pass_toggle_by_name_removes_the_pass() {
    let opt = Optimizer::with_level(OptLevel::Aggressive).without_pass("constant_folding");
    assert!(!opt.pass_names().contains(&"constant_folding"));
    assert!(opt.pass_names().contains(&"projection_pruning"));
}

/// The optimizer's whole point: the default pass set must make the classic
/// SDSS comma-join linear. Compare cost counters, not wall time.
#[test]
fn pushdown_and_hash_join_reduce_measured_cost() {
    let cat = catalog();
    let limits = ExecLimits {
        max_rows: 2_000_000,
        max_units: u64::MAX,
    };
    let sql = "SELECT o.id, s.z FROM Obj o, Spec s WHERE o.id = s.obj_id AND o.x > 5";
    let script = sqlan_sql::parse_script(sql).unwrap();
    let q = match &script.statements[0] {
        Statement::Select(q) => q.clone(),
        _ => unreachable!(),
    };

    let mut naive = CostCounter::default();
    Database::new(cat.clone())
        .with_limits(limits)
        .with_opt_level(OptLevel::None)
        .run_query(&q, &mut naive)
        .unwrap();

    let mut opt = CostCounter::default();
    Database::new(cat)
        .with_limits(limits)
        .with_opt_level(OptLevel::Default)
        .run_query(&q, &mut opt)
        .unwrap();

    assert!(
        opt.units() * 10 < naive.units(),
        "default passes should cut cost by >10x: naive {} vs optimized {}",
        naive.units(),
        opt.units()
    );
}
