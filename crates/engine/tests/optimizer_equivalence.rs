//! Optimizer-equivalence suite: every pass configuration must return the
//! same rows.
//!
//! For a corpus of generated queries, each optimizer pass is toggled on
//! and off — individually, in combination, and at every [`OptLevel`] —
//! and the results are compared order-insensitively against the default
//! configuration. Passes may change *how much work* execution does (that
//! is their job), but never *what* a query returns.

mod common;

use common::{catalog, corpus, run};

use sqlan_engine::{
    ConstantFolding, CostCounter, Database, EquiJoinDetection, ExecLimits, OptLevel, Optimizer,
    PredicatePushdown, ProjectionPruning,
};
use sqlan_sql::Statement;

fn configs() -> Vec<(String, Optimizer)> {
    let mut out: Vec<(String, Optimizer)> = vec![
        ("none".into(), Optimizer::none()),
        ("default".into(), Optimizer::with_level(OptLevel::Default)),
        (
            "aggressive".into(),
            Optimizer::with_level(OptLevel::Aggressive),
        ),
        (
            "only_pushdown".into(),
            Optimizer::none().with_pass(PredicatePushdown),
        ),
        (
            "only_equijoin".into(),
            Optimizer::none().with_pass(EquiJoinDetection),
        ),
        (
            "only_folding".into(),
            Optimizer::none().with_pass(ConstantFolding),
        ),
        (
            "only_pruning".into(),
            Optimizer::none().with_pass(ProjectionPruning),
        ),
    ];
    // Default minus each of its passes, via the name-based toggle.
    for name in ["predicate_pushdown", "equi_join_detection"] {
        out.push((
            format!("default_without_{name}"),
            Optimizer::with_level(OptLevel::Default).without_pass(name),
        ));
    }
    // Aggressive minus each extra pass.
    for name in ["constant_folding", "projection_pruning"] {
        out.push((
            format!("aggressive_without_{name}"),
            Optimizer::with_level(OptLevel::Aggressive).without_pass(name),
        ));
    }
    out
}

#[test]
fn every_pass_configuration_returns_identical_rows() {
    let cat = catalog();
    // Cross-product folds materialize up to |Obj| × |Spec| × |Tiny| rows;
    // raise the budget so `none` can finish and be compared.
    let limits = ExecLimits {
        max_rows: 2_000_000,
        max_units: u64::MAX,
    };
    let reference_db = Database::new(cat.clone()).with_limits(limits);

    let corpus = corpus();
    let reference: Vec<Result<Vec<String>, String>> =
        corpus.iter().map(|sql| run(&reference_db, sql)).collect();
    for (i, r) in reference.iter().enumerate() {
        assert!(
            r.is_ok(),
            "corpus query must succeed at default level: {:?} — {}",
            r,
            corpus[i]
        );
    }

    for (name, optimizer) in configs() {
        let db = Database::new(cat.clone())
            .with_limits(limits)
            .with_optimizer(optimizer);
        for (sql, want) in corpus.iter().zip(&reference) {
            let got = run(&db, sql);
            assert_eq!(
                &got, want,
                "results diverged under optimizer config `{name}`\nquery: {sql}"
            );
        }
    }
}

#[test]
fn default_level_runs_exactly_the_seed_pass_set() {
    let names = Optimizer::with_level(OptLevel::Default).pass_names();
    assert_eq!(names, vec!["predicate_pushdown", "equi_join_detection"]);
}

#[test]
fn pass_toggle_by_name_removes_the_pass() {
    let opt = Optimizer::with_level(OptLevel::Aggressive).without_pass("constant_folding");
    assert!(!opt.pass_names().contains(&"constant_folding"));
    assert!(opt.pass_names().contains(&"projection_pruning"));
}

/// The optimizer's whole point: the default pass set must make the classic
/// SDSS comma-join linear. Compare cost counters, not wall time.
#[test]
fn pushdown_and_hash_join_reduce_measured_cost() {
    let cat = catalog();
    let limits = ExecLimits {
        max_rows: 2_000_000,
        max_units: u64::MAX,
    };
    let sql = "SELECT o.id, s.z FROM Obj o, Spec s WHERE o.id = s.obj_id AND o.x > 5";
    let script = sqlan_sql::parse_script(sql).unwrap();
    let q = match &script.statements[0] {
        Statement::Select(q) => q.clone(),
        _ => unreachable!(),
    };

    let mut naive = CostCounter::default();
    Database::new(cat.clone())
        .with_limits(limits)
        .with_opt_level(OptLevel::None)
        .run_query(&q, &mut naive)
        .unwrap();

    let mut opt = CostCounter::default();
    Database::new(cat)
        .with_limits(limits)
        .with_opt_level(OptLevel::Default)
        .run_query(&q, &mut opt)
        .unwrap();

    assert!(
        opt.units() * 10 < naive.units(),
        "default passes should cut cost by >10x: naive {} vs optimized {}",
        naive.units(),
        opt.units()
    );
}
