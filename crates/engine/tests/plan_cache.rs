//! Fresh-vs-cached differential suite for the template plan cache.
//!
//! The cache's correctness contract: `submit` with the cache on is
//! observationally identical to `submit` with the cache off — same error
//! class, same answer size, same deterministic CPU seconds, same error
//! message — for every statement, under any interleaving of hits and
//! misses, at any capacity, from any number of threads.

mod common;

use common::{catalog, corpus};
use proptest::prelude::*;
use sqlan_engine::{Database, ErrorClass, ExecLimits, OptLevel, Optimizer, QueryOutcome};

/// Budget generous enough that every corpus query completes (same as the
/// optimizer-equivalence suite).
fn limits() -> ExecLimits {
    ExecLimits {
        max_rows: 2_000_000,
        max_units: u64::MAX,
    }
}

/// A database with the template cache at the given capacity (0 = off),
/// independent of the `SQLAN_PLAN_CACHE` environment — tests in this
/// binary run in parallel, so they never touch process-global env.
fn db_cached(capacity: usize) -> Database {
    Database::new(catalog())
        .with_limits(limits())
        .with_plan_cache(capacity)
}

#[track_caller]
fn assert_same(cached: &QueryOutcome, fresh: &QueryOutcome, sql: &str) {
    assert_eq!(cached, fresh, "cached submit diverged on: {sql}");
}

#[test]
fn corpus_outcomes_identical_cached_vs_fresh() {
    let cached = db_cached(1024);
    let fresh = db_cached(0);
    // Two passes: the first populates (misses), the second hits.
    for pass in 0..2 {
        for sql in corpus() {
            let c = cached.submit(&sql);
            let f = fresh.submit(&sql);
            assert_same(&c, &f, &format!("[pass {pass}] {sql}"));
        }
    }
    let stats = cached.plan_cache_stats().expect("cache is on");
    assert!(stats.hits > 0, "second pass must hit: {stats:?}");
    assert!(fresh.plan_cache_stats().is_none(), "capacity 0 disables");
}

#[test]
fn literal_perturbations_share_one_template() {
    let cached = db_cached(64);
    let fresh = db_cached(0);
    let instances = [
        "SELECT x, y FROM Obj WHERE kind = 1 AND x < 0.25",
        "SELECT x, y FROM Obj WHERE kind = 4 AND x < 0.75",
        // Whitespace, comments, and *keyword* case are template-invariant
        // (identifier spelling is part of the template, like the lexer's
        // ident tokens).
        "select  x ,  y /* c */  from Obj WHERE kind = 2 and x < 0.5",
        "SELECT x, y FROM Obj WHERE kind = 0x2 AND x < 99",
    ];
    for sql in instances {
        assert_same(&cached.submit(sql), &fresh.submit(sql), sql);
    }
    let stats = cached.plan_cache_stats().unwrap();
    // Hex literals fingerprint into a distinct slot kind (they carry an
    // exactness caveat), so the first three share one template and the
    // fourth gets its own: 2 misses, 2 hits.
    assert_eq!(stats.misses, 2, "{stats:?}");
    assert_eq!(stats.hits, 2, "{stats:?}");
}

#[test]
fn irregular_statements_fall_back_identically() {
    let cached = db_cached(64);
    let fresh = db_cached(0);
    let weird = [
        // Parse error (severe) — error message embeds literal text.
        "SELEC * FROMM Obj",
        "show me everything brighter than 20",
        // Unterminated literal (severe, portal-level).
        "SELECT * FROM Obj WHERE tag = 'unterminated",
        // Runtime errors (non-severe).
        "SELECT nosuchcol FROM Obj",
        "SELECT * FROM NoSuchTable WHERE id = 3",
        "SELECT 1/0 FROM Obj",
        // Non-SELECT statements.
        "EXEC dbo.spFindNeighbors 1, 2",
        "EXEC dbo.mystery 9",
        "DROP TABLE mydb.results",
        "DROP TABLE Obj",
        "UPDATE mydb.t SET a = 1 WHERE b > 2",
        "INSERT INTO mydb.t SELECT id FROM Obj WHERE id < 10",
        // Multi-statement script: last answer wins, shared counter.
        "SELECT id FROM Obj WHERE id < 5; SELECT x FROM Obj WHERE id < 100",
        // Multi-statement with a mid-script error.
        "SELECT id FROM Obj WHERE id < 5; SELECT nope FROM Obj; SELECT 1",
        "",
    ];
    for pass in 0..2 {
        for sql in weird {
            let c = cached.submit(sql);
            let f = fresh.submit(sql);
            assert_same(&c, &f, &format!("[pass {pass}] {sql}"));
        }
    }
}

#[test]
fn pollution_interleavings_stay_correct() {
    // Adversarial interleaving: templates alternate, literal values
    // recur across templates, and the same text repeats mid-stream.
    let cached = db_cached(64);
    let fresh = db_cached(0);
    let stream = [
        "SELECT id FROM Obj WHERE x < 0.5",
        "SELECT id FROM Obj WHERE y < 0.5",
        "SELECT id FROM Obj WHERE x < 0.1",
        "SELECT id FROM Obj WHERE x < 0.5",
        "SELECT count(*) FROM Spec WHERE z > 1.5",
        "SELECT id FROM Obj WHERE y < 0.1",
        "SELECT count(*) FROM Spec WHERE z > 0.5",
        "SELECT id FROM Obj WHERE x < 0.9",
        "SELECT id, tag FROM Obj WHERE tag = 'obj1'",
        "SELECT id, tag FROM Obj WHERE tag = 'obj2'",
        "SELECT id FROM Obj WHERE x < 0.5",
    ];
    for sql in stream {
        assert_same(&cached.submit(sql), &fresh.submit(sql), sql);
    }
}

#[test]
fn tiny_capacity_evicts_but_never_corrupts() {
    let cached = db_cached(2);
    let fresh = db_cached(0);
    // Far more templates than capacity: constant eviction churn.
    for round in 0..3 {
        for sql in corpus() {
            let c = cached.submit(&sql);
            let f = fresh.submit(&sql);
            assert_same(&c, &f, &format!("[round {round}] {sql}"));
        }
    }
    let stats = cached.plan_cache_stats().unwrap();
    assert!(
        stats.entries <= 8,
        "capacity 2 rounds up to one entry per shard at most: {stats:?}"
    );
}

#[test]
fn value_dependent_optimizer_disables_cache() {
    let aggressive = Database::new(catalog())
        .with_limits(limits())
        .with_opt_level(OptLevel::Aggressive);
    assert!(
        aggressive.plan_cache_stats().is_none(),
        "constant folding bakes literal values into plans; caching must be off"
    );
    // And asking for a cache explicitly still refuses.
    let forced = aggressive.clone().with_plan_cache(64);
    assert!(forced.plan_cache_stats().is_none());

    // The default pass set is cache-safe.
    assert!(Optimizer::default().cache_safe());
    let default = Database::new(catalog()).with_plan_cache(64);
    assert!(default.plan_cache_stats().is_some());

    // Aggressive results still match the cached default where both
    // succeed deterministically (sanity that the gate itself is sound).
    let out = aggressive.submit("SELECT count(*) FROM Obj WHERE kind = 1 + 2");
    assert_eq!(out.error_class, ErrorClass::Success);
}

#[test]
fn shared_database_hits_from_many_threads() {
    let reference: Vec<QueryOutcome> = {
        let fresh = db_cached(0);
        corpus().iter().map(|sql| fresh.submit(sql)).collect()
    };
    for threads in [1usize, 3, 8] {
        let cached = db_cached(1024);
        let queries = corpus();
        for round in 0..2 {
            let pool = sqlan_par::Pool::new(threads);
            let outcomes: Vec<QueryOutcome> = pool.par_map(&queries, |sql| cached.submit(sql));
            for (i, (got, want)) in outcomes.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got, want,
                    "threads={threads} round={round} diverged on: {}",
                    queries[i]
                );
            }
        }
        let stats = cached.plan_cache_stats().unwrap();
        assert!(stats.hits > 0, "threads={threads}: {stats:?}");
    }
}

#[test]
fn explain_reports_provenance() {
    let cached = db_cached(64);
    let sql = "SELECT id FROM Obj WHERE x < 0.5";
    let before = cached.explain(sql).unwrap();
    assert!(
        before.contains("plan cache: status=miss"),
        "unseen template:\n{before}"
    );
    cached.submit(sql);
    // Same template, different literal: still a hit.
    let after = cached.explain("SELECT id FROM Obj WHERE x < 0.9").unwrap();
    assert!(
        after.contains("plan cache: status=hit"),
        "cached template:\n{after}"
    );
    assert!(after.contains("fp=0x"), "fingerprint shown:\n{after}");

    let off = db_cached(0).explain(sql).unwrap();
    assert!(off.contains("plan cache: status=off"), "{off}");

    let analyzed = cached.explain_analyze(sql).unwrap();
    assert!(analyzed.contains("plan cache: status=hit"), "{analyzed}");
    assert!(
        analyzed.contains("-- wall: parse=") && analyzed.contains("execute="),
        "wall split shown:\n{analyzed}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any literal substitution into a fixed template family produces
    /// the same outcome cached and fresh — including the order the
    /// instances arrive in.
    #[test]
    fn prop_literal_substitution_equivalent(
        xs in prop::collection::vec(0.0f64..1.0, 1..12),
        kinds in prop::collection::vec(0i64..8, 1..12),
        cap_sel in 0usize..3,
    ) {
        let cached = db_cached([2usize, 8, 1024][cap_sel]);
        let fresh = db_cached(0);
        for (i, x) in xs.iter().enumerate() {
            let kind = kinds[i % kinds.len()];
            let sql = format!(
                "SELECT id, x FROM Obj WHERE x < {x} AND kind = {kind} ORDER BY id"
            );
            let c = cached.submit(&sql);
            let f = fresh.submit(&sql);
            prop_assert_eq!(&c, &f, "diverged on: {}", sql);
            let joined = format!(
                "SELECT o.id FROM Obj o INNER JOIN Spec s ON o.id = s.obj_id WHERE s.z > {x}"
            );
            let c = cached.submit(&joined);
            let f = fresh.submit(&joined);
            prop_assert_eq!(&c, &f, "diverged on: {}", joined);
        }
    }
}
