//! Differential suite: the row and columnar engines must be
//! observationally identical — same rows **in the same order**, same
//! per-component [`CostCounter`] charges, same outcome labels — on every
//! statement, including failing and budget-aborted ones.
//!
//! This is the contract that lets `SQLAN_ENGINE=columnar` be the default
//! without touching the golden label pin: the columnar success path is
//! charge-sum-identical, and columnar error paths replay through the row
//! engine.

mod common;

use common::{catalog, corpus};
use sqlan_engine::{Catalog, ColumnSpec, CostCounter, Database, Engine, ExecLimits, TableSpec};
use sqlan_sql::Statement;

fn dbs() -> (Database, Database) {
    let row = Database::new(catalog()).with_engine(Engine::Row);
    let col = Database::new(catalog()).with_engine(Engine::Columnar);
    (row, col)
}

/// Exact (ordered) result comparison: rendered rows + column names + the
/// full cost counter. Floats are compared through `{:?}` so bit-level
/// differences (and NaN) are visible.
fn run_exact(db: &Database, sql: &str) -> Result<(Vec<String>, String, CostCounter), String> {
    let script = sqlan_sql::parse_script(sql).expect("corpus must parse");
    let q = match &script.statements[0] {
        Statement::Select(q) => q,
        other => panic!("corpus must be SELECTs, got {other:?}"),
    };
    let mut counter = CostCounter::default();
    let rel = db.run_query(q, &mut counter).map_err(|e| e.to_string())?;
    let rows = rel
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| format!("{v:?}"))
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    let cols = format!("{:?}", rel.cols);
    Ok((rows, cols, counter))
}

#[test]
fn corpus_rows_and_costs_identical_across_engines() {
    let (row, col) = dbs();
    for sql in corpus() {
        let a = run_exact(&row, &sql);
        let b = run_exact(&col, &sql);
        match (a, b) {
            (Ok((ra, ca, na)), Ok((rb, cb, nb))) => {
                assert_eq!(ra, rb, "row order/content diverged on: {sql}");
                assert_eq!(ca, cb, "output schema diverged on: {sql}");
                assert_eq!(na, nb, "cost counter diverged on: {sql}");
            }
            (a, b) => panic!("outcome diverged on: {sql}\n row: {a:?}\n col: {b:?}"),
        }
    }
}

#[test]
fn submit_outcomes_identical_across_engines_on_corpus() {
    let (row, col) = dbs();
    for sql in corpus() {
        let a = row.submit(&sql);
        let b = col.submit(&sql);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "submit outcome diverged on: {sql}"
        );
    }
}

/// Failing statements: the columnar engine replays them through the row
/// engine, so the abort-point cost counter (a label!) must match exactly.
#[test]
fn error_outcomes_identical_across_engines() {
    let (row, col) = dbs();
    let failing = [
        "SELECT * FROM NoSuchTable",
        "SELECT nocolumn FROM Obj",
        "SELECT 1/0 FROM Obj",
        "SELECT id FROM Obj WHERE x / (x - x) > 1",
        "SELECT x FROM Obj, Spec", // ambiguous? no — x unique; use tag vs tag
        "SELECT id FROM Obj WHERE nosuch(x) > 0",
        "SELECT count(x) FROM Obj WHERE count(x) > 1", // aggregate in WHERE
        "SELECT id FROM Obj WHERE y > (SELECT y FROM Obj)", // scalar cardinality
        "SELECT o.id FROM Obj o WHERE o.x > 2 AND nocolumn = 1",
        "SELEC syntax error",
        "UPDATE Obj SET x = 1",
        "DROP TABLE Obj",
        "EXEC dbo.blah 1",
    ];
    for sql in failing {
        let a = row.submit(sql);
        let b = col.submit(sql);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "error outcome diverged on: {sql}"
        );
    }
}

/// Resource-budget aborts carry the counter at the abort point; the
/// columnar fallback must reproduce the row engine's abort labels.
#[test]
fn budget_abort_outcomes_identical_across_engines() {
    let tight = ExecLimits {
        max_rows: 500,
        max_units: 20_000,
    };
    let row = Database::new(catalog())
        .with_engine(Engine::Row)
        .with_limits(tight);
    let col = Database::new(catalog())
        .with_engine(Engine::Columnar)
        .with_limits(tight);
    let heavy = [
        "SELECT * FROM Obj",                     // over max_rows? 240 rows, units
        "SELECT o.id, t.tid FROM Obj o, Tiny t", // cross join blowup
        "SELECT o.id FROM Obj o, Spec s WHERE o.id = s.obj_id", // hash join
        "SELECT count(*) FROM Obj WHERE sqrt(x) < 100",
        "SELECT o.id FROM Obj o WHERE EXISTS \
         (SELECT 1 FROM Spec s WHERE s.obj_id = o.id)",
    ];
    let mut aborted = 0;
    for sql in heavy {
        let a = row.submit(sql);
        let b = col.submit(sql);
        if a.error_message.is_some() {
            aborted += 1;
        }
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "budget outcome diverged on: {sql}"
        );
    }
    assert!(aborted >= 1, "expected at least one budget abort");
}

/// A catalog with NULL-bearing intermediates (outer joins) and strings:
/// exercises the degraded `Values` column paths.
#[test]
fn outer_join_null_padding_identical() {
    let specs = vec![
        TableSpec::new("L", 40)
            .column("id", ColumnSpec::SeqId)
            .column("s", ColumnSpec::StrChoice(&["p", "q"])),
        TableSpec::new("R", 10)
            .column("lid", ColumnSpec::IntUniform(0, 80))
            .column("w", ColumnSpec::Uniform(0.0, 1.0)),
    ];
    let row = Database::new(Catalog::generate(&specs, 5)).with_engine(Engine::Row);
    let col = Database::new(Catalog::generate(&specs, 5)).with_engine(Engine::Columnar);
    let queries = [
        "SELECT l.id, r.w FROM L l LEFT JOIN R r ON l.id = r.lid ORDER BY l.id",
        "SELECT l.s, r.w FROM L l RIGHT JOIN R r ON l.id = r.lid",
        "SELECT l.id, r.lid FROM L l FULL JOIN R r ON l.id = r.lid",
        // NULL-padded columns flowing into aggregation and DISTINCT.
        "SELECT count(r.lid) FROM L l LEFT JOIN R r ON l.id = r.lid",
        "SELECT DISTINCT r.lid FROM L l LEFT JOIN R r ON l.id = r.lid",
        "SELECT l.id FROM L l LEFT JOIN R r ON l.id = r.lid WHERE r.w IS NULL ORDER BY l.id",
    ];
    for sql in queries {
        let a = run_exact(&row, sql);
        let b = run_exact(&col, sql);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "outer join diverged on: {sql}"
        );
    }
}

/// ORDER BY keys that fail projected-scope resolution *after charging*
/// (correlated subqueries over non-projected source columns): the row
/// engine repeats the failed projected attempt per row, which a
/// vectorized fallback cannot reproduce — so the columnar engine must
/// escalate to a full row replay instead of silently falling back.
/// Cheap resolution-only fallbacks (bare source columns) stay columnar.
#[test]
fn order_by_source_fallback_costs_identical() {
    let (row, col) = dbs();
    let queries = [
        // Resolution-only fallback: no charges during the failed attempt.
        "SELECT id FROM Obj ORDER BY y",
        "SELECT o.id FROM Obj o WHERE o.x > 5 ORDER BY o.y DESC",
        // Charging fallback: the projected-scope attempt executes a
        // correlated subquery (subquery_execs, scans) before hitting the
        // unknown column.
        "SELECT id FROM Obj ORDER BY (SELECT max(s.z) FROM Spec s WHERE s.obj_id = x)",
        "SELECT tid FROM Tiny ORDER BY (SELECT count(*) FROM Spec s WHERE s.obj_id = grp), tid",
    ];
    for sql in queries {
        let a = run_exact(&row, sql);
        let b = run_exact(&col, sql);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "order-by fallback diverged on: {sql}"
        );
    }
}

/// The engine env knob: `Database::new` resolves `SQLAN_ENGINE`, and both
/// settings label one fixed statement identically.
#[test]
fn engine_knob_is_label_invisible() {
    let sql = "SELECT kind, count(*) FROM Obj WHERE x BETWEEN 3 AND 33 GROUP BY kind ORDER BY kind";
    let (row, col) = dbs();
    assert_eq!(
        format!("{:?}", row.submit(sql)),
        format!("{:?}", col.submit(sql))
    );
}
