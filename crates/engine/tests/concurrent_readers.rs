//! Concurrency smoke test: one read-only [`Database`] shared by many
//! reader threads.
//!
//! `Database` is `Send + Sync` by construction (asserted at compile time
//! in `db.rs`): all execution state lives in a per-query `ExecCtx`, so
//! concurrent readers cannot observe each other. Here N threads each run
//! the full 112-query equivalence corpus against the *same* instance and
//! must reproduce the single-threaded reference exactly — identical rows
//! *and* identical per-component cost counters, since cost is part of the
//! label contract the workload generator depends on.

mod common;

use common::{catalog, corpus, run_with_cost, CostBreakdown};

use sqlan_engine::{Database, ExecLimits};

type QueryResult = Result<(Vec<String>, CostBreakdown), String>;

const N_READERS: usize = 8;

fn reference_db() -> Database {
    // Same budget the equivalence suite uses, so every corpus query runs.
    Database::new(catalog()).with_limits(ExecLimits {
        max_rows: 2_000_000,
        max_units: u64::MAX,
    })
}

#[test]
fn corpus_has_the_advertised_size() {
    assert_eq!(corpus().len(), 112);
}

#[test]
fn concurrent_readers_see_identical_rows_and_costs() {
    let db = reference_db();
    let corpus = corpus();
    let reference: Vec<QueryResult> = corpus.iter().map(|sql| run_with_cost(&db, sql)).collect();
    assert!(
        reference.iter().any(|r| r.is_ok()),
        "corpus should mostly succeed"
    );

    let per_thread: Vec<Vec<QueryResult>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N_READERS)
            .map(|k| {
                let db = &db;
                let corpus = &corpus;
                s.spawn(move || {
                    // Stagger starting points so threads hit different
                    // queries at the same instant.
                    let n = corpus.len();
                    let mut out: Vec<Option<QueryResult>> = (0..n).map(|_| None).collect();
                    for j in 0..n {
                        let i = (j + k * 17) % n;
                        out[i] = Some(run_with_cost(db, &corpus[i]));
                    }
                    out.into_iter().map(Option::unwrap).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (k, results) in per_thread.iter().enumerate() {
        for (i, (got, want)) in results.iter().zip(&reference).enumerate() {
            assert_eq!(
                got, want,
                "reader {k} diverged from the single-threaded reference \
                 on query {i}: {}",
                corpus[i]
            );
        }
    }
}

#[test]
fn concurrent_readers_through_the_par_pool_agree() {
    // The same property via the production code path: sqlan-par sharing
    // one database reference across its workers.
    let db = reference_db();
    let corpus = corpus();
    let reference: Vec<QueryResult> = corpus.iter().map(|sql| run_with_cost(&db, sql)).collect();
    for threads in [2, 8] {
        let got = sqlan_par::Pool::new(threads).par_map(&corpus, |sql| run_with_cost(&db, sql));
        assert_eq!(got, reference, "pool with {threads} threads diverged");
    }
}
