//! Shared fixtures for the engine integration suites: the equivalence
//! catalog and the 112-query corpus exercising every operator. Used by
//! `optimizer_equivalence.rs` (pass toggling) and `concurrent_readers.rs`
//! (shared-`Database` thread safety).

#![allow(dead_code)] // each test binary uses a subset

use sqlan_engine::{Catalog, CostCounter, Database};
use sqlan_sql::Statement;

/// Small catalog so even cross-product plans stay under the row budget.
/// (Shared with `sqlan-bench`'s `bench_engine` via `sqlan_engine::testkit`.)
pub fn catalog() -> Catalog {
    sqlan_engine::testkit::equivalence_catalog()
}

/// The 112-query corpus exercising every operator — see
/// [`sqlan_engine::testkit::equivalence_corpus`].
pub fn corpus() -> Vec<String> {
    sqlan_engine::testkit::equivalence_corpus()
}

/// Run one query; canonicalize the result as an order-insensitive
/// multiset of row renderings.
pub fn run(db: &Database, sql: &str) -> Result<Vec<String>, String> {
    run_with_cost(db, sql).map(|(rows, _)| rows)
}

/// Every per-component cost counter value, for exact comparison.
pub type CostBreakdown = (u64, u64, u64, u64, u64, u64, u64);

/// Run one query, returning canonicalized rows plus the full cost-counter
/// breakdown (identical inputs must charge identical costs, even across
/// threads).
pub fn run_with_cost(db: &Database, sql: &str) -> Result<(Vec<String>, CostBreakdown), String> {
    let script = sqlan_sql::parse_script(sql).expect("corpus must parse");
    let q = match &script.statements[0] {
        Statement::Select(q) => q,
        other => panic!("corpus must be SELECTs, got {other:?}"),
    };
    let mut counter = CostCounter::default();
    let rel = db.run_query(q, &mut counter).map_err(|e| e.to_string())?;
    let mut rows: Vec<String> = rel
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| format!("{v:?}"))
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    Ok((
        rows,
        (
            counter.rows_scanned,
            counter.fn_units,
            counter.sort_cmps,
            counter.hash_ops,
            counter.rows_materialized,
            counter.eval_units,
            counter.subquery_execs,
        ),
    ))
}
