//! Focused execution-semantics tests: corner cases of joins, grouping,
//! ordering, subqueries and the error taxonomy that the property tests
//! don't pin down exactly.

use sqlan_engine::{Catalog, ColumnVec, CostCounter, Database, ErrorClass, Table, Value};
use sqlan_sql::Statement;

/// A tiny hand-built catalog with exactly known contents.
fn db() -> Database {
    let mut cat = Catalog::new();
    cat.insert(Table {
        name: "emp".into(),
        columns: vec![
            sqlan_engine::ColumnDef {
                name: "id".into(),
                ty: sqlan_engine::ColType::Int,
            },
            sqlan_engine::ColumnDef {
                name: "dept".into(),
                ty: sqlan_engine::ColType::Int,
            },
            sqlan_engine::ColumnDef {
                name: "salary".into(),
                ty: sqlan_engine::ColType::Float,
            },
            sqlan_engine::ColumnDef {
                name: "name".into(),
                ty: sqlan_engine::ColType::Str,
            },
        ],
        data: vec![
            ColumnVec::Int(vec![1, 2, 3, 4, 5]).into(),
            ColumnVec::Int(vec![10, 10, 20, 20, 30]).into(),
            ColumnVec::Float(vec![100.0, 200.0, 300.0, 400.0, 500.0]).into(),
            ColumnVec::Str(vec![
                "ann".into(),
                "bob".into(),
                "cal".into(),
                "dee".into(),
                "eve".into(),
            ])
            .into(),
        ],
    });
    cat.insert(Table {
        name: "dept".into(),
        columns: vec![
            sqlan_engine::ColumnDef {
                name: "did".into(),
                ty: sqlan_engine::ColType::Int,
            },
            sqlan_engine::ColumnDef {
                name: "dname".into(),
                ty: sqlan_engine::ColType::Str,
            },
        ],
        data: vec![
            ColumnVec::Int(vec![10, 20, 40]).into(),
            ColumnVec::Str(vec!["sales".into(), "eng".into(), "empty".into()]).into(),
        ],
    });
    Database::new(cat)
}

fn rows(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let script = sqlan_sql::parse_script(sql).expect("parse");
    let q = match &script.statements[0] {
        Statement::Select(q) => q.clone(),
        other => panic!("expected select, got {other:?}"),
    };
    let mut c = CostCounter::default();
    db.run_query(&q, &mut c).expect("run").rows
}

#[test]
fn projection_and_aliases() {
    let d = db();
    let r = rows(
        &d,
        "SELECT name AS who, salary * 2 AS double FROM emp WHERE id = 3",
    );
    assert_eq!(r, vec![vec![Value::Str("cal".into()), Value::Float(600.0)]]);
}

#[test]
fn group_by_with_having_and_order() {
    let d = db();
    let r = rows(
        &d,
        "SELECT dept, count(*) AS n, avg(salary) AS pay FROM emp \
         GROUP BY dept HAVING count(*) > 1 ORDER BY pay DESC",
    );
    // dept 20 (avg 350) then dept 10 (avg 150); dept 30 filtered (n=1).
    assert_eq!(r.len(), 2);
    assert_eq!(r[0][0], Value::Int(20));
    assert_eq!(r[0][1], Value::Int(2));
    assert_eq!(r[0][2], Value::Float(350.0));
    assert_eq!(r[1][0], Value::Int(10));
}

#[test]
fn aggregate_over_empty_input() {
    let d = db();
    let r = rows(
        &d,
        "SELECT count(*), sum(salary), min(salary) FROM emp WHERE id > 99",
    );
    assert_eq!(r, vec![vec![Value::Int(0), Value::Null, Value::Null]]);
}

#[test]
fn left_join_pads_nulls_and_counts() {
    let d = db();
    // dept 40 has no employees: LEFT JOIN from dept keeps it with NULLs.
    let r = rows(
        &d,
        "SELECT d.dname, e.name FROM dept d LEFT JOIN emp e ON d.did = e.dept ORDER BY d.dname",
    );
    // sales×2 + eng×2 + empty×1 = 5 rows.
    assert_eq!(r.len(), 5);
    let empty_row = r
        .iter()
        .find(|row| row[0] == Value::Str("empty".into()))
        .unwrap();
    assert_eq!(empty_row[1], Value::Null);
}

#[test]
fn right_and_full_joins() {
    let d = db();
    // RIGHT JOIN keeps the unmatched dept 30 employee from the right side.
    let right = rows(
        &d,
        "SELECT d.dname, e.name FROM dept d RIGHT JOIN emp e ON d.did = e.dept",
    );
    assert_eq!(right.len(), 5); // 4 matched + eve (dept 30, no dept row)
    assert!(right
        .iter()
        .any(|r| r[0] == Value::Null && r[1] == Value::Str("eve".into())));

    let full = rows(
        &d,
        "SELECT d.dname, e.name FROM dept d FULL JOIN emp e ON d.did = e.dept",
    );
    assert_eq!(full.len(), 6); // 4 matched + empty-dept + eve
}

#[test]
fn in_list_and_not_in_subquery() {
    let d = db();
    let r = rows(
        &d,
        "SELECT name FROM emp WHERE dept IN (10, 30) ORDER BY name",
    );
    let names: Vec<_> = r.iter().map(|x| x[0].display()).collect();
    assert_eq!(names, vec!["ann", "bob", "eve"]);

    let r2 = rows(
        &d,
        "SELECT name FROM emp WHERE dept NOT IN (SELECT did FROM dept) ORDER BY name",
    );
    assert_eq!(r2.len(), 1); // only eve (dept 30 not in dept table)
    assert_eq!(r2[0][0], Value::Str("eve".into()));
}

#[test]
fn correlated_scalar_subquery() {
    let d = db();
    // Employees above their own department's average.
    let r = rows(
        &d,
        "SELECT name FROM emp e WHERE salary > \
         (SELECT avg(salary) FROM emp i WHERE i.dept = e.dept) ORDER BY name",
    );
    let names: Vec<_> = r.iter().map(|x| x[0].display()).collect();
    assert_eq!(names, vec!["bob", "dee"]); // 200>150, 400>350; eve == avg
}

#[test]
fn case_expression_buckets() {
    let d = db();
    let r = rows(
        &d,
        "SELECT CASE WHEN salary >= 400 THEN 'high' WHEN salary >= 200 THEN 'mid' \
         ELSE 'low' END AS band, count(*) FROM emp GROUP BY \
         CASE WHEN salary >= 400 THEN 'high' WHEN salary >= 200 THEN 'mid' ELSE 'low' END \
         ORDER BY band",
    );
    // high: 400,500 → 2; low: 100 → 1; mid: 200,300 → 2.
    assert_eq!(r.len(), 3);
    assert_eq!(r[0], vec![Value::Str("high".into()), Value::Int(2)]);
    assert_eq!(r[1], vec![Value::Str("low".into()), Value::Int(1)]);
    assert_eq!(r[2], vec![Value::Str("mid".into()), Value::Int(2)]);
}

#[test]
fn distinct_top_and_order_by_alias() {
    let d = db();
    let r = rows(&d, "SELECT DISTINCT dept FROM emp ORDER BY dept DESC");
    assert_eq!(
        r,
        vec![
            vec![Value::Int(30)],
            vec![Value::Int(20)],
            vec![Value::Int(10)]
        ]
    );
    let r2 = rows(&d, "SELECT TOP 2 salary AS pay FROM emp ORDER BY pay DESC");
    assert_eq!(
        r2,
        vec![vec![Value::Float(500.0)], vec![Value::Float(400.0)]]
    );
}

#[test]
fn like_and_string_predicates() {
    let d = db();
    let r = rows(
        &d,
        "SELECT name FROM emp WHERE name LIKE '%e%' ORDER BY name",
    );
    let names: Vec<_> = r.iter().map(|x| x[0].display()).collect();
    assert_eq!(names, vec!["dee", "eve"]);
}

#[test]
fn ambiguous_column_is_an_error() {
    let d = db();
    let out = d.submit("SELECT id FROM emp a, emp b WHERE a.id = b.id");
    assert_eq!(out.error_class, ErrorClass::NonSevere);
    assert!(out.error_message.unwrap().contains("ambiguous"));
}

#[test]
fn aggregate_in_where_is_rejected() {
    let d = db();
    let out = d.submit("SELECT name FROM emp WHERE count(*) > 1");
    assert_eq!(out.error_class, ErrorClass::NonSevere);
}

#[test]
fn scalar_subquery_cardinality_error() {
    let d = db();
    let out = d.submit("SELECT name FROM emp WHERE salary = (SELECT salary FROM emp)");
    assert_eq!(out.error_class, ErrorClass::NonSevere);
    assert!(out.error_message.unwrap().contains("more than one row"));
}

#[test]
fn derived_table_with_aggregate() {
    let d = db();
    let r = rows(
        &d,
        "SELECT t.dept FROM (SELECT dept, count(*) AS n FROM emp GROUP BY dept) t \
         WHERE t.n = 2 ORDER BY t.dept",
    );
    assert_eq!(r, vec![vec![Value::Int(10)], vec![Value::Int(20)]]);
}

#[test]
fn exists_and_not_exists() {
    let d = db();
    let r = rows(
        &d,
        "SELECT dname FROM dept d WHERE NOT EXISTS \
         (SELECT 1 FROM emp e WHERE e.dept = d.did)",
    );
    assert_eq!(r, vec![vec![Value::Str("empty".into())]]);
}

#[test]
fn union_like_multi_statement_returns_last() {
    // Multi-statement scripts: answer size comes from the last statement.
    let d = db();
    let out = d.submit("SELECT 1; SELECT name FROM emp");
    assert_eq!(out.error_class, ErrorClass::Success);
    assert_eq!(out.answer_size, 5);
}

#[test]
fn cost_monotone_in_work() {
    let d = db();
    let cheap = d.submit("SELECT id FROM emp WHERE id = 1").cpu_seconds;
    let dear = d
        .submit("SELECT e.name FROM emp e, emp b WHERE e.salary > b.salary")
        .cpu_seconds;
    assert!(dear > cheap);
}
