//! Property-based tests for the engine: totality on arbitrary input,
//! determinism, algebraic invariants of execution, and row/columnar
//! engine equivalence on randomized queries.

use proptest::prelude::*;
use sqlan_engine::{Catalog, ColumnSpec, CostCounter, Database, Engine, ErrorClass, TableSpec};

fn db() -> Database {
    let specs = vec![
        TableSpec::new("T", 300)
            .column("id", ColumnSpec::SeqId)
            .column("x", ColumnSpec::IntUniform(0, 50))
            .column("y", ColumnSpec::Uniform(0.0, 100.0))
            .column("k", ColumnSpec::Categorical(5))
            .column("s", ColumnSpec::StrChoice(&["a", "b", "c"])),
        TableSpec::new("U", 80)
            .column("tid", ColumnSpec::IntUniform(0, 299))
            .column("w", ColumnSpec::Uniform(0.0, 10.0)),
    ];
    Database::new(Catalog::generate(&specs, 7))
}

proptest! {
    /// Submitting arbitrary text never panics and classifies it somewhere.
    #[test]
    fn submit_total(input in ".{0,300}") {
        let out = db().submit(&input);
        // Error queries must carry answer_size -1, successes ≥ 0.
        match out.error_class {
            ErrorClass::Success => prop_assert!(out.answer_size >= 0),
            _ => prop_assert_eq!(out.answer_size, -1),
        }
        prop_assert!(out.cpu_seconds >= 0.0);
    }

    /// Execution is deterministic: two runs give identical outcomes.
    #[test]
    fn submit_deterministic(lo in 0i64..40, hi in 0i64..60, k in 0i64..5) {
        let sql = format!(
            "SELECT k, count(*) FROM T WHERE x BETWEEN {lo} AND {hi} AND k <> {k} GROUP BY k"
        );
        let d = db();
        prop_assert_eq!(d.submit(&sql), d.submit(&sql));
    }

    /// Adding a conjunct can only shrink the answer (monotonicity).
    #[test]
    fn conjuncts_shrink_answers(a in 0i64..50, b in 0i64..5) {
        let d = db();
        let base = d.submit(&format!("SELECT id FROM T WHERE x >= {a}"));
        let narrowed = d.submit(&format!("SELECT id FROM T WHERE x >= {a} AND k = {b}"));
        prop_assert_eq!(base.error_class, ErrorClass::Success);
        prop_assert!(narrowed.answer_size <= base.answer_size);
    }

    /// OR is at least as large as either disjunct.
    #[test]
    fn disjuncts_grow_answers(a in 0i64..50, b in 0i64..50) {
        let d = db();
        let left = d.submit(&format!("SELECT id FROM T WHERE x = {a}")).answer_size;
        let either =
            d.submit(&format!("SELECT id FROM T WHERE x = {a} OR x = {b}")).answer_size;
        prop_assert!(either >= left);
    }

    /// COUNT(*) equals the answer size of the unaggregated query.
    #[test]
    fn count_matches_row_count(a in 0i64..50) {
        let d = db();
        let rows = d.submit(&format!("SELECT id FROM T WHERE x < {a}")).answer_size;
        let q = format!("SELECT count(*) AS n FROM T WHERE x < {a}");
        let script = sqlan_sql::parse_script(&q).unwrap();
        let mut counter = sqlan_engine::CostCounter::default();
        let n = match &script.statements[0] {
            sqlan_sql::Statement::Select(q) => {
                d.run_query(q, &mut counter).unwrap().rows[0][0].as_i64().unwrap()
            }
            _ => unreachable!(),
        };
        prop_assert_eq!(rows, n);
    }

    /// TOP n caps the answer at n.
    #[test]
    fn top_caps(n in 0u64..500) {
        let d = db();
        let out = d.submit(&format!("SELECT TOP {n} id FROM T ORDER BY y"));
        prop_assert!(out.answer_size <= n as i64);
        prop_assert!(out.answer_size <= 300);
    }

    /// Comma-join with equality equals explicit INNER JOIN.
    #[test]
    fn comma_join_equals_inner_join(c in 0i64..5) {
        let d = db();
        let comma = d.submit(&format!(
            "SELECT u.w FROM U u, T t WHERE u.tid = t.id AND t.k = {c}"
        ));
        let inner = d.submit(&format!(
            "SELECT u.w FROM U u INNER JOIN T t ON u.tid = t.id WHERE t.k = {c}"
        ));
        prop_assert_eq!(comma.answer_size, inner.answer_size);
    }

    /// DISTINCT never increases cardinality.
    #[test]
    fn distinct_shrinks(_x in 0..1i32) {
        let d = db();
        let all = d.submit("SELECT k FROM T").answer_size;
        let distinct = d.submit("SELECT DISTINCT k FROM T").answer_size;
        prop_assert!(distinct <= all);
    }

    /// ORDER BY permutes, never changes cardinality.
    #[test]
    fn order_by_preserves_cardinality(desc in any::<bool>()) {
        let d = db();
        let dir = if desc { "DESC" } else { "ASC" };
        let plain = d.submit("SELECT id FROM T WHERE x > 10").answer_size;
        let sorted =
            d.submit(&format!("SELECT id FROM T WHERE x > 10 ORDER BY y {dir}")).answer_size;
        prop_assert_eq!(plain, sorted);
    }

    /// CPU time grows monotonically with scanned volume: scanning both
    /// tables costs at least as much as the smaller one alone.
    #[test]
    fn cpu_reflects_volume(_x in 0..1i32) {
        let d = db();
        let small = d.submit("SELECT * FROM U").cpu_seconds;
        let joined = d.submit("SELECT * FROM U u INNER JOIN T t ON u.tid = t.id").cpu_seconds;
        prop_assert!(joined > small);
    }

    /// Differential property: the row and columnar engines return the
    /// same rows (in order) and charge the identical per-component
    /// `CostCounter` on randomized queries across every operator shape.
    #[test]
    fn engines_agree_on_random_queries(
        a in 0i64..50,
        b in 0i64..5,
        top in 1u64..40,
        desc in any::<bool>(),
        shape in 0usize..8,
    ) {
        let dir = if desc { "DESC" } else { "ASC" };
        let sql = match shape {
            0 => format!("SELECT id, x + {b} FROM T WHERE x >= {a} AND k <> {b}"),
            1 => format!(
                "SELECT k, count(*) AS n, avg(y) FROM T WHERE x < {a} \
                 GROUP BY k HAVING count(*) > {b} ORDER BY k"
            ),
            2 => format!(
                "SELECT TOP {top} t.id, u.w FROM U u, T t \
                 WHERE u.tid = t.id AND t.k = {b} ORDER BY t.id {dir}"
            ),
            3 => format!("SELECT DISTINCT k FROM T WHERE x BETWEEN {b} AND {a} ORDER BY k {dir}"),
            4 => format!(
                "SELECT id FROM T WHERE y > (SELECT avg(y) FROM T WHERE k = {b}) ORDER BY id"
            ),
            5 => format!(
                "SELECT t.id FROM T t LEFT JOIN U u ON t.id = u.tid \
                 WHERE t.x < {a} ORDER BY t.id {dir}"
            ),
            6 => format!(
                "SELECT t.id FROM T t WHERE EXISTS \
                 (SELECT 1 FROM U u WHERE u.tid = t.id AND u.w > {b}) ORDER BY t.id"
            ),
            _ => format!(
                "SELECT CASE WHEN x > {a} THEN 'hi' ELSE s END AS band, abs(x - {a}) \
                 FROM T WHERE k IN ({b}, {a} % 5) ORDER BY id {dir}"
            ),
        };
        let script = sqlan_sql::parse_script(&sql).expect("generated SQL parses");
        let q = match &script.statements[0] {
            sqlan_sql::Statement::Select(q) => q.clone(),
            _ => unreachable!(),
        };
        let row_db = db().with_engine(Engine::Row);
        let col_db = db().with_engine(Engine::Columnar);
        let mut row_counter = CostCounter::default();
        let mut col_counter = CostCounter::default();
        let row_rel = row_db.run_query(&q, &mut row_counter).expect("row engine runs");
        let col_rel = col_db.run_query(&q, &mut col_counter).expect("columnar engine runs");
        prop_assert_eq!(
            format!("{:?}", row_rel.rows),
            format!("{:?}", col_rel.rows),
            "rows diverged on: {}",
            sql
        );
        prop_assert_eq!(row_counter, col_counter, "cost diverged on: {}", sql);
    }

    /// Differential totality: both engines classify arbitrary text with
    /// byte-identical outcome labels (errors included — the columnar
    /// engine replays its error paths through the row engine).
    #[test]
    fn engines_agree_on_arbitrary_text(input in ".{0,300}") {
        let a = db().with_engine(Engine::Row).submit(&input);
        let b = db().with_engine(Engine::Columnar).submit(&input);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
