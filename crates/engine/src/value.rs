//! Runtime values and their SQL-flavoured semantics.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

use crate::error::RuntimeError;

/// A scalar runtime value.
///
/// The engine uses a simplified SQL type system: 64-bit integers, 64-bit
/// floats, strings, booleans (predicate results) and NULL. NULL propagates
/// through arithmetic; comparisons involving NULL evaluate to `false`
/// (two-valued logic — a documented simplification, adequate because the
/// label generator never relies on three-valued edge cases).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
}

impl Value {
    /// Truthiness for WHERE/HAVING: only `Bool(true)` and non-zero numbers
    /// pass rows.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(_) | Value::Null => false,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view; integers widen to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// SQL comparison. NULLs compare as unknown → `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Str(_), _) | (_, Value::Str(_)) => {
                // Mixed string/number: compare via numeric parse when the
                // string looks numeric, else strings sort after numbers.
                let an = self.coerce_f64();
                let bn = other.coerce_f64();
                match (an, bn) {
                    (Some(a), Some(b)) => a.partial_cmp(&b),
                    _ => None,
                }
            }
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    fn coerce_f64(&self) -> Option<f64> {
        match self {
            Value::Str(s) => s.trim().parse::<f64>().ok(),
            other => other.as_f64(),
        }
    }

    /// Total order used for ORDER BY and grouping keys: NULLs first, then
    /// numbers, then booleans, then strings. Unlike [`Value::sql_cmp`], this
    /// is total so sorts are well-defined.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Bool(_) => 2,
                Value::Str(_) => 3,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => {
                let a = self.as_f64().unwrap_or(f64::NAN);
                let b = other.as_f64().unwrap_or(f64::NAN);
                a.total_cmp(&b)
            }
        }
    }

    /// Grouping/DISTINCT key: a canonical byte representation.
    pub fn group_key(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => key_null(out),
            Value::Int(i) => key_num(*i as f64, out),
            Value::Float(f) => key_num(*f, out),
            Value::Bool(b) => key_bool(*b, out),
            Value::Str(s) => key_str(s, out),
        }
    }

    // ---- arithmetic --------------------------------------------------

    pub fn add(&self, other: &Value) -> Result<Value, RuntimeError> {
        self.numeric_binop(other, "+", |a, b| a + b, |a, b| a.checked_add(b))
    }

    pub fn sub(&self, other: &Value) -> Result<Value, RuntimeError> {
        self.numeric_binop(other, "-", |a, b| a - b, |a, b| a.checked_sub(b))
    }

    pub fn mul(&self, other: &Value) -> Result<Value, RuntimeError> {
        self.numeric_binop(other, "*", |a, b| a * b, |a, b| a.checked_mul(b))
    }

    pub fn div(&self, other: &Value) -> Result<Value, RuntimeError> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(RuntimeError::DivideByZero)
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            _ => {
                let a = self.num("/")?;
                let b = other.num("/")?;
                if b == 0.0 {
                    Err(RuntimeError::DivideByZero)
                } else {
                    Ok(Value::Float(a / b))
                }
            }
        }
    }

    pub fn rem(&self, other: &Value) -> Result<Value, RuntimeError> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let a = self.int("%")?;
        let b = other.int("%")?;
        if b == 0 {
            Err(RuntimeError::DivideByZero)
        } else {
            Ok(Value::Int(a % b))
        }
    }

    pub fn bit_and(&self, other: &Value) -> Result<Value, RuntimeError> {
        self.int_binop(other, "&", |a, b| a & b)
    }

    pub fn bit_or(&self, other: &Value) -> Result<Value, RuntimeError> {
        self.int_binop(other, "|", |a, b| a | b)
    }

    pub fn bit_xor(&self, other: &Value) -> Result<Value, RuntimeError> {
        self.int_binop(other, "^", |a, b| a ^ b)
    }

    pub fn concat(&self, other: &Value) -> Result<Value, RuntimeError> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Str(format!("{}{}", self.display(), other.display())))
    }

    pub fn neg(&self) -> Result<Value, RuntimeError> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
            Value::Float(f) => Ok(Value::Float(-f)),
            _ => Err(RuntimeError::TypeError("cannot negate non-number".into())),
        }
    }

    fn numeric_binop(
        &self,
        other: &Value,
        op: &str,
        ff: impl Fn(f64, f64) -> f64,
        fi: impl Fn(i64, i64) -> Option<i64>,
    ) -> Result<Value, RuntimeError> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => match fi(*a, *b) {
                Some(v) => Ok(Value::Int(v)),
                None => Ok(Value::Float(ff(*a as f64, *b as f64))),
            },
            _ => {
                let a = self.num(op)?;
                let b = other.num(op)?;
                Ok(Value::Float(ff(a, b)))
            }
        }
    }

    fn int_binop(
        &self,
        other: &Value,
        op: &str,
        f: impl Fn(i64, i64) -> i64,
    ) -> Result<Value, RuntimeError> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Int(f(self.int(op)?, other.int(op)?)))
    }

    fn num(&self, op: &str) -> Result<f64, RuntimeError> {
        self.as_f64()
            .ok_or_else(|| RuntimeError::TypeError(format!("operand of `{op}` is not numeric")))
    }

    fn int(&self, op: &str) -> Result<i64, RuntimeError> {
        self.as_i64()
            .ok_or_else(|| RuntimeError::TypeError(format!("operand of `{op}` is not an integer")))
    }

    /// SQL LIKE with `%` and `_` wildcards, case-insensitive (T-SQL default
    /// collation behaviour).
    pub fn like(&self, pattern: &Value) -> Result<Value, RuntimeError> {
        match (self, pattern) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Bool(false)),
            (Value::Str(s), Value::Str(p)) => Ok(Value::Bool(like_match(s, p))),
            (a, Value::Str(p)) => Ok(Value::Bool(like_match(&a.display(), p))),
            _ => Err(RuntimeError::TypeError(
                "LIKE pattern must be a string".into(),
            )),
        }
    }

    /// Render for display / concat.
    pub fn display(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{}", f),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => (*b as u8).to_string(),
            Value::Null => "NULL".into(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

// ---- grouping-key byte encoders --------------------------------------
//
// The single source of truth for the key format shared by joins,
// GROUP BY, DISTINCT, and IN-set membership in *both* engines:
// [`Value::group_key`] and [`Column::group_key_at`] must produce
// identical bytes, so each tag's encoding lives exactly once.

#[inline]
fn key_null(out: &mut Vec<u8>) {
    out.push(0);
}

/// Numbers key by their `f64` image, with -0.0 normalized to 0.0 so
/// grouping treats them equal (integers cannot produce -0.0).
#[inline]
fn key_num(f: f64, out: &mut Vec<u8>) {
    out.push(1);
    let f = if f == 0.0 { 0.0 } else { f };
    out.extend_from_slice(&f.to_bits().to_le_bytes());
}

#[inline]
fn key_bool(b: bool, out: &mut Vec<u8>) {
    out.push(2);
    out.push(b as u8);
}

#[inline]
fn key_str(s: &str, out: &mut Vec<u8>) {
    out.push(3);
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// ================= typed column vectors =================

/// A typed vector of runtime values — one column of a
/// [`crate::relation::ColumnBatch`].
///
/// Typed variants (`Int`, `Float`, `Str`, `Bool`) hold NULL-free
/// homogeneous data and let vectorized kernels run monomorphic loops.
/// Anything mixed-type or nullable degrades to `Values`; a column that is
/// the same scalar for every row (literals, cached subquery results) is a
/// `Const`. Every accessor agrees exactly with the [`Value`] the row
/// engine would see, so the two engines can never diverge on data.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
    Bool(Vec<bool>),
    /// Mixed types and/or NULLs.
    Values(Vec<Value>),
    /// The same value repeated `len` times.
    Const(Value, usize),
    /// A zero-copy reference to a base-table column in the catalog.
    Shared(std::sync::Arc<crate::catalog::ColumnVec>),
}

impl Column {
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Values(v) => v.len(),
            Column::Const(_, n) => *n,
            Column::Shared(c) => c.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row` (must be in bounds), as the row engine sees it.
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Float(v) => Value::Float(v[row]),
            Column::Str(v) => Value::Str(v[row].clone()),
            Column::Bool(v) => Value::Bool(v[row]),
            Column::Values(v) => v[row].clone(),
            Column::Const(v, _) => v.clone(),
            Column::Shared(c) => c.get(row),
        }
    }

    /// Truthiness at `row` without building a [`Value`] (hot path of
    /// selection-vector refinement).
    pub fn is_truthy_at(&self, row: usize) -> bool {
        match self {
            Column::Int(v) => v[row] != 0,
            Column::Float(v) => v[row] != 0.0,
            Column::Str(_) => false,
            Column::Bool(v) => v[row],
            Column::Values(v) => v[row].is_truthy(),
            Column::Const(v, _) => v.is_truthy(),
            Column::Shared(c) => match &**c {
                crate::catalog::ColumnVec::Int(v) => v[row] != 0,
                crate::catalog::ColumnVec::Float(v) => v[row] != 0.0,
                crate::catalog::ColumnVec::Str(_) => false,
            },
        }
    }

    /// Is the value at `row` NULL? Typed variants are NULL-free.
    pub fn is_null_at(&self, row: usize) -> bool {
        match self {
            Column::Values(v) => v[row].is_null(),
            Column::Const(v, _) => v.is_null(),
            _ => false,
        }
    }

    /// Append the grouping key of the value at `row` — byte-identical to
    /// [`Value::group_key`] on [`Column::get`], without the `Value`
    /// (both funnel through the same `key_*` encoders).
    pub fn group_key_at(&self, row: usize, out: &mut Vec<u8>) {
        match self {
            Column::Int(v) => key_num(v[row] as f64, out),
            Column::Float(v) => key_num(v[row], out),
            Column::Str(v) => key_str(&v[row], out),
            Column::Bool(v) => key_bool(v[row], out),
            Column::Values(v) => v[row].group_key(out),
            Column::Const(v, _) => v.group_key(out),
            Column::Shared(c) => match &**c {
                crate::catalog::ColumnVec::Int(v) => key_num(v[row] as f64, out),
                crate::catalog::ColumnVec::Float(v) => key_num(v[row], out),
                crate::catalog::ColumnVec::Str(v) => key_str(&v[row], out),
            },
        }
    }

    /// Build a column from already-collected values, detecting a uniform
    /// NULL-free type so downstream kernels get typed data.
    pub fn from_values(values: Vec<Value>) -> Column {
        let mut b = ColumnBuilder::with_capacity(values.len());
        for v in values {
            b.push(v);
        }
        b.finish()
    }
}

/// Incremental [`Column`] constructor: starts typed on the first value
/// and degrades to [`Column::Values`] the moment a NULL or a differently
/// typed value arrives. The expected length is carried until the first
/// push, when the concrete type is known and capacity can be reserved.
#[derive(Debug)]
pub enum ColumnBuilder {
    Empty(usize),
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
    Bool(Vec<bool>),
    Values(Vec<Value>),
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        ColumnBuilder::Empty(0)
    }
}

impl ColumnBuilder {
    pub fn with_capacity(n: usize) -> ColumnBuilder {
        ColumnBuilder::Empty(n)
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnBuilder::Empty(_) => 0,
            ColumnBuilder::Int(v) => v.len(),
            ColumnBuilder::Float(v) => v.len(),
            ColumnBuilder::Str(v) => v.len(),
            ColumnBuilder::Bool(v) => v.len(),
            ColumnBuilder::Values(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convert the accumulated typed data to generic values.
    fn degrade(&mut self) -> &mut Vec<Value> {
        let values: Vec<Value> = match std::mem::take(self) {
            ColumnBuilder::Empty(n) => Vec::with_capacity(n),
            ColumnBuilder::Int(v) => v.into_iter().map(Value::Int).collect(),
            ColumnBuilder::Float(v) => v.into_iter().map(Value::Float).collect(),
            ColumnBuilder::Str(v) => v.into_iter().map(Value::Str).collect(),
            ColumnBuilder::Bool(v) => v.into_iter().map(Value::Bool).collect(),
            ColumnBuilder::Values(v) => v,
        };
        *self = ColumnBuilder::Values(values);
        match self {
            ColumnBuilder::Values(v) => v,
            _ => unreachable!(),
        }
    }

    pub fn push(&mut self, value: Value) {
        fn seeded<T>(cap: usize, first: T) -> Vec<T> {
            let mut v = Vec::with_capacity(cap.max(1));
            v.push(first);
            v
        }
        match (&mut *self, value) {
            (ColumnBuilder::Empty(n), Value::Int(i)) => *self = ColumnBuilder::Int(seeded(*n, i)),
            (ColumnBuilder::Empty(n), Value::Float(f)) => {
                *self = ColumnBuilder::Float(seeded(*n, f))
            }
            (ColumnBuilder::Empty(n), Value::Str(s)) => *self = ColumnBuilder::Str(seeded(*n, s)),
            (ColumnBuilder::Empty(n), Value::Bool(b)) => *self = ColumnBuilder::Bool(seeded(*n, b)),
            (ColumnBuilder::Empty(n), v @ Value::Null) => {
                *self = ColumnBuilder::Values(seeded(*n, v))
            }
            (ColumnBuilder::Int(v), Value::Int(i)) => v.push(i),
            (ColumnBuilder::Float(v), Value::Float(f)) => v.push(f),
            (ColumnBuilder::Str(v), Value::Str(s)) => v.push(s),
            (ColumnBuilder::Bool(v), Value::Bool(b)) => v.push(b),
            (ColumnBuilder::Values(v), value) => v.push(value),
            (_, value) => self.degrade().push(value),
        }
    }

    pub fn finish(self) -> Column {
        match self {
            ColumnBuilder::Empty(_) => Column::Values(Vec::new()),
            ColumnBuilder::Int(v) => Column::Int(v),
            ColumnBuilder::Float(v) => Column::Float(v),
            ColumnBuilder::Str(v) => Column::Str(v),
            ColumnBuilder::Bool(v) => Column::Bool(v),
            ColumnBuilder::Values(v) => Column::Values(v),
        }
    }
}

/// Iterative LIKE matcher (no regex dependency, no recursion).
fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().flat_map(|c| c.to_lowercase()).collect();
    let p: Vec<char> = pattern.chars().flat_map(|c| c.to_lowercase()).collect();
    // Classic two-pointer algorithm with backtracking on the last `%`.
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_si) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = pi;
            star_si = si;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_si += 1;
            si = star_si;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_int_and_float() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).mul(&Value::Float(1.5)).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(
            Value::Float(7.0).div(&Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn int_overflow_widens_to_float() {
        let v = Value::Int(i64::MAX).add(&Value::Int(1)).unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn divide_by_zero_is_an_error() {
        assert!(matches!(
            Value::Int(1).div(&Value::Int(0)),
            Err(RuntimeError::DivideByZero)
        ));
        assert!(matches!(
            Value::Int(1).rem(&Value::Int(0)),
            Err(RuntimeError::DivideByZero)
        ));
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(1).div(&Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert!(!Value::Null.is_truthy());
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(
            Value::Int(0b1100).bit_and(&Value::Int(0b1010)).unwrap(),
            Value::Int(0b1000)
        );
        assert_eq!(
            Value::Int(0b1100).bit_or(&Value::Int(0b1010)).unwrap(),
            Value::Int(0b1110)
        );
        assert_eq!(
            Value::Int(0b1100).bit_xor(&Value::Int(0b1010)).unwrap(),
            Value::Int(0b0110)
        );
    }

    #[test]
    fn like_wildcards() {
        let s = |x: &str| Value::Str(x.into());
        assert_eq!(
            s("QUERY_FAST").like(&s("%QUERY%")).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(s("abc").like(&s("a_c")).unwrap(), Value::Bool(true));
        assert_eq!(s("abc").like(&s("a_d")).unwrap(), Value::Bool(false));
        assert_eq!(s("ABC").like(&s("abc")).unwrap(), Value::Bool(true)); // case-insensitive
        assert_eq!(s("").like(&s("%")).unwrap(), Value::Bool(true));
        assert_eq!(s("x").like(&s("")).unwrap(), Value::Bool(false));
    }

    #[test]
    fn total_order_is_total() {
        let vals = [
            Value::Null,
            Value::Int(-1),
            Value::Float(0.5),
            Value::Bool(true),
            Value::Str("a".into()),
        ];
        for a in &vals {
            for b in &vals {
                // antisymmetry
                assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
            }
            assert_eq!(a.total_cmp(a), Ordering::Equal);
        }
    }

    #[test]
    fn group_keys_distinguish_types_but_not_int_float_equal_values() {
        let mut k1 = Vec::new();
        let mut k2 = Vec::new();
        Value::Int(3).group_key(&mut k1);
        Value::Float(3.0).group_key(&mut k2);
        assert_eq!(k1, k2, "3 and 3.0 should group together");

        k1.clear();
        k2.clear();
        Value::Str("3".into()).group_key(&mut k1);
        Value::Int(3).group_key(&mut k2);
        assert_ne!(k1, k2, "'3' and 3 are different group keys");
    }

    #[test]
    fn column_builder_stays_typed_on_uniform_input() {
        let c = Column::from_values(vec![Value::Int(1), Value::Int(2)]);
        assert!(matches!(c, Column::Int(_)));
        assert_eq!(c.get(1), Value::Int(2));
        assert!(c.is_truthy_at(0));
        assert!(!c.is_null_at(0));
    }

    #[test]
    fn column_builder_degrades_on_mixed_or_null() {
        let c = Column::from_values(vec![Value::Int(1), Value::Float(2.0)]);
        assert!(matches!(c, Column::Values(_)));
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Float(2.0));

        let c = Column::from_values(vec![Value::Int(1), Value::Null]);
        assert!(c.is_null_at(1));
        assert!(!c.is_null_at(0));
    }

    #[test]
    fn column_group_key_matches_value_group_key() {
        let vals = vec![
            Value::Int(3),
            Value::Float(-0.0),
            Value::Str("ab".into()),
            Value::Bool(true),
            Value::Null,
        ];
        let col = Column::from_values(vals.clone());
        for (i, v) in vals.iter().enumerate() {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            v.group_key(&mut a);
            col.group_key_at(i, &mut b);
            assert_eq!(a, b, "row {i}");
        }
        // Typed columns must agree too.
        let ints = Column::Int(vec![7, -2]);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        Value::Int(-2).group_key(&mut a);
        ints.group_key_at(1, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_string_number_comparison_parses_numeric_strings() {
        assert_eq!(
            Value::Str("6".into()).sql_cmp(&Value::Int(6)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Str("abc".into()).sql_cmp(&Value::Int(6)), None);
    }
}
