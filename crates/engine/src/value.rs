//! Runtime values and their SQL-flavoured semantics.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

use crate::error::RuntimeError;

/// A scalar runtime value.
///
/// The engine uses a simplified SQL type system: 64-bit integers, 64-bit
/// floats, strings, booleans (predicate results) and NULL. NULL propagates
/// through arithmetic; comparisons involving NULL evaluate to `false`
/// (two-valued logic — a documented simplification, adequate because the
/// label generator never relies on three-valued edge cases).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
}

impl Value {
    /// Truthiness for WHERE/HAVING: only `Bool(true)` and non-zero numbers
    /// pass rows.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(_) | Value::Null => false,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view; integers widen to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// SQL comparison. NULLs compare as unknown → `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Str(_), _) | (_, Value::Str(_)) => {
                // Mixed string/number: compare via numeric parse when the
                // string looks numeric, else strings sort after numbers.
                let an = self.coerce_f64();
                let bn = other.coerce_f64();
                match (an, bn) {
                    (Some(a), Some(b)) => a.partial_cmp(&b),
                    _ => None,
                }
            }
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    fn coerce_f64(&self) -> Option<f64> {
        match self {
            Value::Str(s) => s.trim().parse::<f64>().ok(),
            other => other.as_f64(),
        }
    }

    /// Total order used for ORDER BY and grouping keys: NULLs first, then
    /// numbers, then booleans, then strings. Unlike [`Value::sql_cmp`], this
    /// is total so sorts are well-defined.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Bool(_) => 2,
                Value::Str(_) => 3,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => {
                let a = self.as_f64().unwrap_or(f64::NAN);
                let b = other.as_f64().unwrap_or(f64::NAN);
                a.total_cmp(&b)
            }
        }
    }

    /// Grouping/DISTINCT key: a canonical byte representation.
    pub fn group_key(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&(*i as f64).to_bits().to_le_bytes());
            }
            Value::Float(f) => {
                out.push(1);
                // Normalize -0.0 to 0.0 so grouping treats them equal.
                let f = if *f == 0.0 { 0.0 } else { *f };
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Bool(b) => {
                out.push(2);
                out.push(*b as u8);
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    // ---- arithmetic --------------------------------------------------

    pub fn add(&self, other: &Value) -> Result<Value, RuntimeError> {
        self.numeric_binop(other, "+", |a, b| a + b, |a, b| a.checked_add(b))
    }

    pub fn sub(&self, other: &Value) -> Result<Value, RuntimeError> {
        self.numeric_binop(other, "-", |a, b| a - b, |a, b| a.checked_sub(b))
    }

    pub fn mul(&self, other: &Value) -> Result<Value, RuntimeError> {
        self.numeric_binop(other, "*", |a, b| a * b, |a, b| a.checked_mul(b))
    }

    pub fn div(&self, other: &Value) -> Result<Value, RuntimeError> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(RuntimeError::DivideByZero)
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            _ => {
                let a = self.num("/")?;
                let b = other.num("/")?;
                if b == 0.0 {
                    Err(RuntimeError::DivideByZero)
                } else {
                    Ok(Value::Float(a / b))
                }
            }
        }
    }

    pub fn rem(&self, other: &Value) -> Result<Value, RuntimeError> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let a = self.int("%")?;
        let b = other.int("%")?;
        if b == 0 {
            Err(RuntimeError::DivideByZero)
        } else {
            Ok(Value::Int(a % b))
        }
    }

    pub fn bit_and(&self, other: &Value) -> Result<Value, RuntimeError> {
        self.int_binop(other, "&", |a, b| a & b)
    }

    pub fn bit_or(&self, other: &Value) -> Result<Value, RuntimeError> {
        self.int_binop(other, "|", |a, b| a | b)
    }

    pub fn bit_xor(&self, other: &Value) -> Result<Value, RuntimeError> {
        self.int_binop(other, "^", |a, b| a ^ b)
    }

    pub fn concat(&self, other: &Value) -> Result<Value, RuntimeError> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Str(format!("{}{}", self.display(), other.display())))
    }

    pub fn neg(&self) -> Result<Value, RuntimeError> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
            Value::Float(f) => Ok(Value::Float(-f)),
            _ => Err(RuntimeError::TypeError("cannot negate non-number".into())),
        }
    }

    fn numeric_binop(
        &self,
        other: &Value,
        op: &str,
        ff: impl Fn(f64, f64) -> f64,
        fi: impl Fn(i64, i64) -> Option<i64>,
    ) -> Result<Value, RuntimeError> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => match fi(*a, *b) {
                Some(v) => Ok(Value::Int(v)),
                None => Ok(Value::Float(ff(*a as f64, *b as f64))),
            },
            _ => {
                let a = self.num(op)?;
                let b = other.num(op)?;
                Ok(Value::Float(ff(a, b)))
            }
        }
    }

    fn int_binop(
        &self,
        other: &Value,
        op: &str,
        f: impl Fn(i64, i64) -> i64,
    ) -> Result<Value, RuntimeError> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Int(f(self.int(op)?, other.int(op)?)))
    }

    fn num(&self, op: &str) -> Result<f64, RuntimeError> {
        self.as_f64()
            .ok_or_else(|| RuntimeError::TypeError(format!("operand of `{op}` is not numeric")))
    }

    fn int(&self, op: &str) -> Result<i64, RuntimeError> {
        self.as_i64()
            .ok_or_else(|| RuntimeError::TypeError(format!("operand of `{op}` is not an integer")))
    }

    /// SQL LIKE with `%` and `_` wildcards, case-insensitive (T-SQL default
    /// collation behaviour).
    pub fn like(&self, pattern: &Value) -> Result<Value, RuntimeError> {
        match (self, pattern) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Bool(false)),
            (Value::Str(s), Value::Str(p)) => Ok(Value::Bool(like_match(s, p))),
            (a, Value::Str(p)) => Ok(Value::Bool(like_match(&a.display(), p))),
            _ => Err(RuntimeError::TypeError(
                "LIKE pattern must be a string".into(),
            )),
        }
    }

    /// Render for display / concat.
    pub fn display(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{}", f),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => (*b as u8).to_string(),
            Value::Null => "NULL".into(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

/// Iterative LIKE matcher (no regex dependency, no recursion).
fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().flat_map(|c| c.to_lowercase()).collect();
    let p: Vec<char> = pattern.chars().flat_map(|c| c.to_lowercase()).collect();
    // Classic two-pointer algorithm with backtracking on the last `%`.
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_si) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = pi;
            star_si = si;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_si += 1;
            si = star_si;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_int_and_float() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).mul(&Value::Float(1.5)).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(
            Value::Float(7.0).div(&Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn int_overflow_widens_to_float() {
        let v = Value::Int(i64::MAX).add(&Value::Int(1)).unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn divide_by_zero_is_an_error() {
        assert!(matches!(
            Value::Int(1).div(&Value::Int(0)),
            Err(RuntimeError::DivideByZero)
        ));
        assert!(matches!(
            Value::Int(1).rem(&Value::Int(0)),
            Err(RuntimeError::DivideByZero)
        ));
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(1).div(&Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert!(!Value::Null.is_truthy());
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(
            Value::Int(0b1100).bit_and(&Value::Int(0b1010)).unwrap(),
            Value::Int(0b1000)
        );
        assert_eq!(
            Value::Int(0b1100).bit_or(&Value::Int(0b1010)).unwrap(),
            Value::Int(0b1110)
        );
        assert_eq!(
            Value::Int(0b1100).bit_xor(&Value::Int(0b1010)).unwrap(),
            Value::Int(0b0110)
        );
    }

    #[test]
    fn like_wildcards() {
        let s = |x: &str| Value::Str(x.into());
        assert_eq!(
            s("QUERY_FAST").like(&s("%QUERY%")).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(s("abc").like(&s("a_c")).unwrap(), Value::Bool(true));
        assert_eq!(s("abc").like(&s("a_d")).unwrap(), Value::Bool(false));
        assert_eq!(s("ABC").like(&s("abc")).unwrap(), Value::Bool(true)); // case-insensitive
        assert_eq!(s("").like(&s("%")).unwrap(), Value::Bool(true));
        assert_eq!(s("x").like(&s("")).unwrap(), Value::Bool(false));
    }

    #[test]
    fn total_order_is_total() {
        let vals = [
            Value::Null,
            Value::Int(-1),
            Value::Float(0.5),
            Value::Bool(true),
            Value::Str("a".into()),
        ];
        for a in &vals {
            for b in &vals {
                // antisymmetry
                assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
            }
            assert_eq!(a.total_cmp(a), Ordering::Equal);
        }
    }

    #[test]
    fn group_keys_distinguish_types_but_not_int_float_equal_values() {
        let mut k1 = Vec::new();
        let mut k2 = Vec::new();
        Value::Int(3).group_key(&mut k1);
        Value::Float(3.0).group_key(&mut k2);
        assert_eq!(k1, k2, "3 and 3.0 should group together");

        k1.clear();
        k2.clear();
        Value::Str("3".into()).group_key(&mut k1);
        Value::Int(3).group_key(&mut k2);
        assert_ne!(k1, k2, "'3' and 3 are different group keys");
    }

    #[test]
    fn mixed_string_number_comparison_parses_numeric_strings() {
        assert_eq!(
            Value::Str("6".into()).sql_cmp(&Value::Int(6)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Str("abc".into()).sql_cmp(&Value::Int(6)), None);
    }
}
