//! Template-aware parameterized plan cache.
//!
//! A statement's *template* is what remains after every literal is lifted
//! out: `SELECT x FROM Obj WHERE id = 7` and `SELECT x FROM Obj WHERE
//! id = 42` share one template.  [`sqlan_sql::fingerprint`] maps a raw
//! statement to a 128-bit template fingerprint plus the ordered vector of
//! lifted literals; this module caches the parsed [`Script`] and the
//! optimized [`QueryPlan`] skeletons per fingerprint so repeated template
//! instances skip the parse → plan pipeline entirely.
//!
//! ## Rebind contract
//!
//! Cached templates carry [`Expr::Param`] placeholders where literals
//! used to be.  Before execution the template is *cloned* and every
//! `Param { slot }` is replaced by `Literal(literals[slot])` — so by the
//! time a plan reaches the evaluator or the physical engine it contains
//! only ordinary `Literal` nodes, exactly as a fresh parse would produce.
//! Correctness rests on two invariants:
//!
//! 1. The fingerprint lexer slots a literal **iff** the parser would
//!    consume it as an [`Expr::Literal`] (structural literals — `TOP n`,
//!    aliases, CAST type arguments — stay concrete and are hashed by
//!    value).  Two statements with equal fingerprints therefore differ
//!    only in literal *values* at expression positions.
//! 2. Every optimizer pass admitted by [`Optimizer::cache_safe`] treats
//!    `Param` exactly like an opaque literal: it never inspects the
//!    value, so `plan(template)` rebound with literals L equals
//!    `plan(statement-with-L)` node for node.  Value-dependent passes
//!    (constant folding) disable the cache entirely.
//!
//! [`Optimizer::cache_safe`]: crate::Optimizer::cache_safe
//!
//! ## Concurrency
//!
//! The cache is shared across [`Database`](crate::Database) clones and is
//! safe for concurrent readers: fingerprints are sharded across a small
//! fixed set of `RwLock`-protected maps (read-mostly — a hit takes a read
//! lock only).  Eviction is sampled LRU, the same policy as the serving
//! layer's `PredictionCache`: when a shard is full, a handful of resident
//! entries are inspected and the least-recently-touched one is dropped.
//! The cache never influences results — only how they are computed — so
//! the `Database` interior-mutability rule (no result-bearing state
//! behind shared references) is preserved.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use fxhash::FxHashMap;
use sqlan_sql::ast::{Expr, Literal, Script, Statement};
use sqlan_sql::visit::{walk_expr_mut, walk_statement_exprs_mut};

use crate::plan::{FoldStep, JoinStrategy, LogicalPlan, QueryPlan, SelectOp};

/// Environment knob controlling the plan cache.
///
/// * unset / `on` / `1` / `true` — enabled at the default capacity.
/// * `off` / `0` / `false` — disabled.
/// * any other integer `N` — enabled, capacity `N` templates.
pub const PLAN_CACHE_ENV: &str = "SQLAN_PLAN_CACHE";

/// Default number of cached templates when `SQLAN_PLAN_CACHE` is unset.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 1024;

const SHARDS: usize = 8;

/// How many resident entries an insert inspects when picking an eviction
/// victim.  Same sampled-LRU policy as the serving layer's cache.
const EVICTION_SAMPLE: usize = 8;

/// Resolve the plan-cache capacity from [`PLAN_CACHE_ENV`].
///
/// `None` means "disabled"; `Some(n)` is the template capacity.
pub fn plan_cache_capacity_from_env() -> Option<usize> {
    match std::env::var(PLAN_CACHE_ENV) {
        Err(_) => Some(DEFAULT_PLAN_CACHE_CAPACITY),
        Ok(raw) => parse_capacity(&raw),
    }
}

fn parse_capacity(raw: &str) -> Option<usize> {
    let v = raw.trim().to_ascii_lowercase();
    match v.as_str() {
        "" | "on" | "1" | "true" | "yes" => Some(DEFAULT_PLAN_CACHE_CAPACITY),
        "off" | "0" | "false" | "no" => None,
        _ => match v.parse::<usize>() {
            Ok(0) => None,
            Ok(n) => Some(n),
            // Unrecognized text: fail open to the default, matching how
            // the other SQLAN_* knobs treat junk values.
            Err(_) => Some(DEFAULT_PLAN_CACHE_CAPACITY),
        },
    }
}

/// A parsed + planned statement template, shared read-only between all
/// executions of statements with the same fingerprint.
#[derive(Debug)]
pub struct CachedTemplate {
    /// Parsed script with `Expr::Param` placeholders at literal slots.
    pub script: Script,
    /// Optimized plan skeleton per statement; `Some` only for
    /// `Statement::Select` entries (DML re-plans its synthesized scan
    /// per execution, so only parse work is saved there).
    pub plans: Vec<Option<QueryPlan>>,
    /// Number of literal slots the template expects.  A probe whose
    /// literal vector disagrees bypasses the cache.
    pub param_count: usize,
}

/// Counters exposed for tests and the bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
    pub capacity: usize,
}

impl PlanCacheStats {
    /// Fraction of probes answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    tpl: Arc<CachedTemplate>,
    /// Logical timestamp of the last touch, for sampled-LRU eviction.
    stamp: AtomicU64,
}

/// Sharded, bounded, thread-safe template → plan map.
pub struct PlanCache {
    shards: Vec<RwLock<FxHashMap<u128, Entry>>>,
    per_shard_capacity: usize,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("capacity", &s.capacity)
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` templates (rounded up to the
    /// shard count).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        PlanCache {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: u128) -> &RwLock<FxHashMap<u128, Entry>> {
        // Fingerprints are already uniformly hashed; fold both halves so
        // shard choice uses more than the low bits.
        let h = (fp as u64) ^ ((fp >> 64) as u64);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Look up a template by fingerprint, refreshing its LRU stamp.
    ///
    /// The per-instance atomics below are the source of truth for
    /// [`PlanCache::stats`]; the global [`sqlan_obs`] counters are a
    /// write-only mirror (never read back by execution code) so the
    /// serving layer's Prometheus endpoint sees cache behavior without
    /// holding a reference to any particular `Database`.
    pub fn get(&self, fp: u128) -> Option<Arc<CachedTemplate>> {
        let guard = self.shard(fp).read().expect("plan cache shard poisoned");
        match guard.get(&fp) {
            Some(entry) => {
                let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                entry.stamp.store(now, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if sqlan_obs::enabled() {
                    crate::obs::plan_cache_counters().hits.inc();
                }
                Some(Arc::clone(&entry.tpl))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if sqlan_obs::enabled() {
                    crate::obs::plan_cache_counters().misses.inc();
                }
                None
            }
        }
    }

    /// Is a template resident for this fingerprint?  Unlike
    /// [`PlanCache::get`] this moves no counters and refreshes no LRU
    /// stamp — EXPLAIN uses it to report provenance without perturbing
    /// the cache.
    pub fn contains(&self, fp: u128) -> bool {
        self.shard(fp)
            .read()
            .expect("plan cache shard poisoned")
            .contains_key(&fp)
    }

    /// Insert (or replace) a template, evicting a sampled-LRU victim if
    /// the shard is at capacity.
    pub fn insert(&self, fp: u128, tpl: Arc<CachedTemplate>) {
        let mut guard = self.shard(fp).write().expect("plan cache shard poisoned");
        if guard.len() >= self.per_shard_capacity && !guard.contains_key(&fp) {
            let victim = guard
                .iter()
                .take(EVICTION_SAMPLE)
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| *k);
            if let Some(victim) = victim {
                guard.remove(&victim);
            }
        }
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        guard.insert(
            fp,
            Entry {
                tpl,
                stamp: AtomicU64::new(now),
            },
        );
    }

    /// Hit/miss/occupancy counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("plan cache shard poisoned").len())
                .sum(),
            capacity: self.capacity,
        }
    }
}

/// Replace every `Expr::Param { slot }` in `expr` (including inside
/// subqueries) with `Literal(literals[slot])`.
///
/// The caller guarantees `literals.len()` equals the template's
/// `param_count`; slots are assigned densely by the fingerprint lexer so
/// every slot index is in range.
pub fn rebind_expr(expr: &mut Expr, literals: &[Literal]) {
    walk_expr_mut(expr, &mut |node| {
        if let Expr::Param { slot, .. } = node {
            let value = literals
                .get(*slot as usize)
                .cloned()
                .expect("plan cache rebind: literal slot out of range");
            *node = Expr::Literal(value);
        }
    });
}

/// Rebind a cloned template statement in place: after this call the AST
/// contains no `Param` nodes and is value-identical to a fresh parse of
/// the probed statement.
pub fn rebind_statement(stmt: &mut Statement, literals: &[Literal]) {
    walk_statement_exprs_mut(stmt, &mut |node| {
        if let Expr::Param { slot, .. } = node {
            let value = literals
                .get(*slot as usize)
                .cloned()
                .expect("plan cache rebind: literal slot out of range");
            *node = Expr::Literal(value);
        }
    });
}

/// Rebind a cloned plan skeleton in place, covering every expression
/// position an optimized [`QueryPlan`] can carry.
pub fn rebind_plan(plan: &mut QueryPlan, literals: &[Literal]) {
    for item in &mut plan.items {
        rebind_node(item, literals);
    }
    for (_, pred) in &mut plan.pushed {
        rebind_expr(pred, literals);
    }
    for fold in &mut plan.folds {
        match fold {
            FoldStep::Cross => {}
            FoldStep::Hash {
                left_key,
                right_key,
                condition,
            } => {
                rebind_expr(left_key, literals);
                rebind_expr(right_key, literals);
                rebind_expr(condition, literals);
            }
        }
    }
    for pred in &mut plan.residual {
        rebind_expr(pred, literals);
    }
    match &mut plan.select {
        SelectOp::Project { items } => {
            for item in items {
                rebind_expr(&mut item.expr, literals);
            }
        }
        SelectOp::Aggregate {
            items,
            group_by,
            having,
        } => {
            for item in items {
                rebind_expr(&mut item.expr, literals);
            }
            for key in group_by {
                rebind_expr(key, literals);
            }
            if let Some(h) = having {
                rebind_expr(h, literals);
            }
        }
    }
    for ob in &mut plan.order_by {
        rebind_expr(&mut ob.expr, literals);
    }
}

fn rebind_node(node: &mut LogicalPlan, literals: &[Literal]) {
    match node {
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::Subquery { plan, .. } => rebind_plan(plan, literals),
        LogicalPlan::Filter { input, predicate } => {
            rebind_node(input, literals);
            rebind_expr(predicate, literals);
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            strategy,
            ..
        } => {
            rebind_node(left, literals);
            rebind_node(right, literals);
            if let Some(on) = on {
                rebind_expr(on, literals);
            }
            match strategy {
                JoinStrategy::NestedLoop => {}
                JoinStrategy::Hash {
                    left_key,
                    right_key,
                } => {
                    rebind_expr(left_key, literals);
                    rebind_expr(right_key, literals);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpl(n: usize) -> Arc<CachedTemplate> {
        Arc::new(CachedTemplate {
            script: Script { statements: vec![] },
            plans: vec![],
            param_count: n,
        })
    }

    #[test]
    fn get_miss_then_hit() {
        let c = PlanCache::new(16);
        assert!(c.get(7).is_none());
        c.insert(7, tpl(0));
        let got = c.get(7).expect("inserted template");
        assert_eq!(got.param_count, 0);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_is_bounded() {
        let c = PlanCache::new(8);
        for fp in 0..1000u128 {
            c.insert(fp, tpl(0));
        }
        // div_ceil(8) = 1 per shard; 8 shards → at most 8 resident.
        assert!(c.stats().entries <= 8, "entries = {}", c.stats().entries);
    }

    #[test]
    fn eviction_prefers_stale_entries() {
        // Capacity 16 → two entries per shard, so the shard below fills
        // at two residents and the third insert must evict.
        let c = PlanCache::new(16);
        // Three fingerprints that land in the same shard: same folded
        // hash modulo SHARDS.  0, SHARDS, 2*SHARDS all fold to shard 0.
        let a = 0u128;
        let b = SHARDS as u128;
        let d = (2 * SHARDS) as u128;
        c.insert(a, tpl(1));
        c.insert(b, tpl(2));
        c.get(a); // refresh a; b is now the LRU entry
        c.insert(d, tpl(3));
        assert!(c.get(a).is_some(), "recently touched entry survived");
    }

    #[test]
    fn rebind_replaces_every_param() {
        use sqlan_sql::parse;
        let sql = "SELECT x FROM t WHERE a = 1 AND b = 'q' OR c IN (2, 3)";
        let fp = sqlan_sql::lex_fingerprint(sql);
        let outcome = sqlan_sql::parse_tokens(&fp.toks, fp.report.clone(), &fp.params);
        let mut script = outcome.result.expect("template parses");
        assert_eq!(fp.literals.len(), 4);
        for stmt in &mut script.statements {
            rebind_statement(stmt, &fp.literals);
        }
        let fresh = parse(sql).result.expect("fresh parse");
        assert_eq!(script, fresh, "rebound template equals fresh parse");
    }

    #[test]
    fn env_capacity_parsing() {
        // Exercised via the pure parser on literal strings rather than
        // mutating process-global env (tests run in parallel).
        assert_eq!(parse_capacity("on"), Some(DEFAULT_PLAN_CACHE_CAPACITY));
        assert_eq!(parse_capacity("TRUE"), Some(DEFAULT_PLAN_CACHE_CAPACITY));
        assert_eq!(parse_capacity("off"), None);
        assert_eq!(parse_capacity("0"), None);
        assert_eq!(parse_capacity("64"), Some(64));
        assert_eq!(parse_capacity("garbage"), Some(DEFAULT_PLAN_CACHE_CAPACITY));
    }
}
