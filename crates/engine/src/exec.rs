//! Execution context and entry point.
//!
//! Queries run through an explicit three-layer pipeline:
//!
//! 1. [`crate::plan`] lowers the AST into a [`crate::plan::QueryPlan`];
//! 2. [`crate::optimizer`] passes rewrite the plan (predicate pushdown,
//!    equi-join detection, and friends — each individually toggleable);
//! 3. [`crate::physical`] executes the optimized plan, charging every row
//!    touched, function called, comparison sorted and hash probed to a
//!    [`crate::CostCounter`]; the resulting deterministic cost is the
//!    CPU-time label of the workload entry.
//!
//! This module owns the shared state threaded through that pipeline: the
//! catalog/function registry borrows, resource budgets, the cost counter,
//! the uncorrelated-subquery cache, and the per-statement plan cache
//! (correlated subqueries re-execute per outer row; caching plans by AST
//! identity keeps re-planning out of the hot loop **and** keeps the
//! subquery result cache stable, since cache keys are expression
//! addresses inside the cached plan).

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::OnceLock;

use sqlan_sql::{Expr, Query};

use crate::catalog::Catalog;
use crate::cost::CostCounter;
use crate::error::RuntimeError;
use crate::functions::FnRegistry;
use crate::optimizer::Optimizer;
use crate::plan::QueryPlan;
use crate::relation::{ColumnBatch, Relation};
use crate::value::Value;

// Former residents of this module, re-exported for compatibility: conjunct
// analysis moved into the plan/optimizer layers.
pub use crate::optimizer::equi_join_keys;
pub use crate::plan::{query_has_aggregate, split_conjuncts};

/// Budget limits standing in for the server-side timeouts real portals
/// enforce. Exceeding them raises [`RuntimeError::ResourceExhausted`].
#[derive(Debug, Clone, Copy)]
pub struct ExecLimits {
    /// Maximum rows in any materialized relation.
    pub max_rows: usize,
    /// Maximum total cost units.
    pub max_units: u64,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_rows: 400_000,
            max_units: 2_000_000_000,
        }
    }
}

fn default_optimizer() -> &'static Optimizer {
    static DEFAULT: OnceLock<Optimizer> = OnceLock::new();
    DEFAULT.get_or_init(Optimizer::default)
}

/// Environment variable selecting the execution engine, mirroring
/// `SQLAN_THREADS`: `SQLAN_ENGINE=row` or `SQLAN_ENGINE=columnar`.
pub const ENGINE_ENV: &str = "SQLAN_ENGINE";

/// Which execution engine runs query plans.
///
/// Both engines produce byte-identical results and [`CostCounter`]
/// charges on every statement: the columnar engine executes the success
/// path with sum-identical charges, and the [`crate::Database`] layer
/// replays any columnar error through the row engine, whose charge
/// *order* (observable at resource-budget aborts) is the label contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Row-at-a-time interpretation (`Vec<Vec<Value>>` pulls).
    Row,
    /// Vectorized columnar batches with selection vectors (the default).
    #[default]
    Columnar,
}

impl Engine {
    /// Resolve from `SQLAN_ENGINE` (unset or unrecognized → columnar).
    pub fn from_env() -> Engine {
        match std::env::var(ENGINE_ENV) {
            Ok(v) if v.trim().eq_ignore_ascii_case("row") => Engine::Row,
            _ => Engine::Columnar,
        }
    }
}

/// One executed operator's observed statistics (EXPLAIN ANALYZE).
#[derive(Debug, Clone)]
pub struct OpStats {
    /// Operator description, e.g. `Filter (p.type = 0)`.
    pub op: String,
    /// Rows the operator produced.
    pub rows: u64,
    /// Cost units charged while it (and everything it evaluated, nested
    /// subqueries included) ran.
    pub units: u64,
    /// Wall-clock nanoseconds elapsed while it ran.  Unlike `units`, this
    /// is real machine time — diagnostic only, never part of any label.
    pub wall_ns: u64,
}

/// Record one operator observation; no-op unless analysis is armed.
pub(crate) fn observe(
    log: &mut Option<Vec<OpStats>>,
    counter: &CostCounter,
    last_units: &mut u64,
    last_instant: &mut std::time::Instant,
    rows: usize,
    op: impl FnOnce() -> String,
) {
    if let Some(log) = log.as_mut() {
        let units = counter.units();
        let now = std::time::Instant::now();
        log.push(OpStats {
            op: op(),
            rows: rows as u64,
            units: units.saturating_sub(*last_units),
            wall_ns: now.duration_since(*last_instant).as_nanos() as u64,
        });
        *last_units = units;
        *last_instant = now;
    }
}

/// Execution context shared down the query tree.
pub struct ExecCtx<'a> {
    pub catalog: &'a Catalog,
    pub fns: &'a FnRegistry,
    pub limits: ExecLimits,
    pub counter: CostCounter,
    optimizer: &'a Optimizer,
    engine: Engine,
    /// Armed by EXPLAIN ANALYZE: the root plan's operators log their
    /// observed row counts and cost charges here.
    pub(crate) analyze: Option<Vec<OpStats>>,
    /// Cache of uncorrelated subquery results keyed by AST address.
    subquery_cache: HashMap<usize, CachedSubquery>,
    /// Optimized plans keyed by `Query` AST address (stable for the
    /// lifetime of this context).
    plan_cache: HashMap<usize, Rc<QueryPlan>>,
}

#[derive(Debug, Clone)]
pub(crate) enum CachedSubquery {
    Scalar(Value),
    Set(std::collections::HashSet<Vec<u8>>),
    NonEmpty(bool),
}

impl std::fmt::Debug for ExecCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtx")
            .field("counter", &self.counter)
            .finish()
    }
}

/// One level of row scope for correlated name resolution.
#[derive(Debug, Clone, Copy)]
pub struct Scope<'r> {
    pub rel: &'r Relation,
    pub row: &'r [Value],
}

impl<'a> ExecCtx<'a> {
    /// A context using the process-wide default optimizer
    /// ([`crate::OptLevel::Default`], the label-stable pass set).
    pub fn new(catalog: &'a Catalog, fns: &'a FnRegistry, limits: ExecLimits) -> Self {
        Self::with_optimizer(catalog, fns, limits, default_optimizer())
    }

    pub fn with_optimizer(
        catalog: &'a Catalog,
        fns: &'a FnRegistry,
        limits: ExecLimits,
        optimizer: &'a Optimizer,
    ) -> Self {
        ExecCtx {
            catalog,
            fns,
            limits,
            counter: CostCounter::default(),
            optimizer,
            engine: Engine::Row,
            analyze: None,
            subquery_cache: HashMap::new(),
            plan_cache: HashMap::new(),
        }
    }

    /// Select the execution engine. [`ExecCtx::new`]/`with_optimizer`
    /// default to the row engine for backward compatibility; the
    /// [`crate::Database`] layer passes its own (env-resolved) engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Arm EXPLAIN ANALYZE instrumentation: the next root plan execution
    /// records per-operator observations, retrievable with
    /// [`ExecCtx::take_observations`].
    pub fn analyzed(mut self) -> Self {
        self.analyze = Some(Vec::new());
        self
    }

    /// Drain the recorded per-operator observations.
    pub fn take_observations(&mut self) -> Vec<OpStats> {
        self.analyze.take().unwrap_or_default()
    }

    pub(crate) fn check_budget(&self, extra_rows: usize) -> Result<(), RuntimeError> {
        if extra_rows > self.limits.max_rows || self.counter.units() > self.limits.max_units {
            Err(RuntimeError::ResourceExhausted)
        } else {
            Ok(())
        }
    }

    /// Execute a query; `outer` is the chain of enclosing row scopes for
    /// correlated subqueries (innermost last). Returns the result plus a
    /// flag saying whether any outer scope was actually consulted.
    /// Dispatches on the configured [`Engine`]; the columnar engine
    /// materializes its final batch as a row [`Relation`] (intermediates
    /// stay columnar).
    pub fn exec_query(
        &mut self,
        q: &Query,
        outer: &[Scope<'_>],
    ) -> Result<(Relation, bool), RuntimeError> {
        match self.engine {
            Engine::Row => {
                let plan = self.plan_for(q);
                self.exec_plan(&plan, outer)
            }
            Engine::Columnar => self
                .exec_query_batch(q, outer)
                .map(|(b, uo)| (b.to_relation(), uo)),
        }
    }

    /// Execute a query through the columnar engine, keeping the result
    /// columnar (subqueries and the answer-size path need no rows).
    pub fn exec_query_batch(
        &mut self,
        q: &Query,
        outer: &[Scope<'_>],
    ) -> Result<(ColumnBatch, bool), RuntimeError> {
        let plan = self.plan_for(q);
        self.exec_plan_batch(&plan, outer)
    }

    /// Pre-seed the per-context plan memo with an already-optimized plan
    /// for `q` (keyed by AST address, like [`ExecCtx::plan_for`]).  The
    /// database-level template cache uses this to hand a rebound cached
    /// skeleton to execution without re-planning; nested subqueries not
    /// covered by the seed still plan lazily as usual.
    pub(crate) fn seed_plan(&mut self, q: &Query, plan: Rc<QueryPlan>) {
        self.plan_cache.insert(q as *const Query as usize, plan);
    }

    /// Lower + optimize `q`, memoized on the query's address.
    fn plan_for(&mut self, q: &Query) -> Rc<QueryPlan> {
        let key = q as *const Query as usize;
        if let Some(plan) = self.plan_cache.get(&key) {
            return Rc::clone(plan);
        }
        let plan = Rc::new(self.optimizer.plan(q, self.catalog));
        self.plan_cache.insert(key, Rc::clone(&plan));
        plan
    }

    // ================= scalar evaluation bridge =================

    /// Evaluate `expr` for one row of `rel`, with `outer` correlation scopes.
    pub fn eval_with_row(
        &mut self,
        expr: &Expr,
        rel: &Relation,
        row: &[Value],
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Value, RuntimeError> {
        crate::eval::eval(self, expr, rel, row, outer, used_outer)
    }

    pub(crate) fn cached_subquery(&self, key: usize) -> Option<&CachedSubquery> {
        self.subquery_cache.get(&key)
    }

    pub(crate) fn cache_scalar(&mut self, key: usize, v: Value) {
        self.subquery_cache.insert(key, CachedSubquery::Scalar(v));
    }

    pub(crate) fn cache_set(&mut self, key: usize, s: std::collections::HashSet<Vec<u8>>) {
        self.subquery_cache.insert(key, CachedSubquery::Set(s));
    }

    pub(crate) fn cache_nonempty(&mut self, key: usize, b: bool) {
        self.subquery_cache.insert(key, CachedSubquery::NonEmpty(b));
    }
}
