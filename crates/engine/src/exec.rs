//! The query executor.
//!
//! A straightforward materializing executor with a *mini optimizer*:
//! single-table WHERE conjuncts are pushed to scans and cross-table
//! equality conjuncts become hash joins, so that the comma-join style that
//! dominates SDSS logs (`FROM SpecObj s, PhotoObj p WHERE s.objid=p.objid`)
//! executes in linear rather than quadratic time. Everything else —
//! explicit joins, grouping, HAVING, DISTINCT, ORDER BY, TOP, correlated
//! subqueries — is evaluated directly.
//!
//! Every row touched, function called, comparison sorted and hash probed is
//! charged to a [`CostCounter`]; the resulting deterministic cost is the
//! CPU-time label of the workload entry.

use std::collections::HashMap;

use sqlan_sql::{
    Aggregate, Expr, FromItem, JoinKind, Query, SelectItem, TableFactor, UnaryOp,
};

use crate::catalog::Catalog;
use crate::cost::CostCounter;
use crate::error::RuntimeError;
use crate::functions::FnRegistry;
use crate::relation::{ColRef, Relation};
use crate::value::Value;

/// Budget limits standing in for the server-side timeouts real portals
/// enforce. Exceeding them raises [`RuntimeError::ResourceExhausted`].
#[derive(Debug, Clone, Copy)]
pub struct ExecLimits {
    /// Maximum rows in any materialized relation.
    pub max_rows: usize,
    /// Maximum total cost units.
    pub max_units: u64,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits { max_rows: 400_000, max_units: 2_000_000_000 }
    }
}

/// Execution context shared down the query tree.
pub struct ExecCtx<'a> {
    pub catalog: &'a Catalog,
    pub fns: &'a FnRegistry,
    pub limits: ExecLimits,
    pub counter: CostCounter,
    /// Cache of uncorrelated subquery results keyed by AST address.
    subquery_cache: HashMap<usize, CachedSubquery>,
}

#[derive(Debug, Clone)]
pub(crate) enum CachedSubquery {
    Scalar(Value),
    Set(std::collections::HashSet<Vec<u8>>),
    NonEmpty(bool),
}

impl std::fmt::Debug for ExecCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtx").field("counter", &self.counter).finish()
    }
}

/// One level of row scope for correlated name resolution.
#[derive(Debug, Clone, Copy)]
pub struct Scope<'r> {
    pub rel: &'r Relation,
    pub row: &'r [Value],
}

impl<'a> ExecCtx<'a> {
    pub fn new(catalog: &'a Catalog, fns: &'a FnRegistry, limits: ExecLimits) -> Self {
        ExecCtx { catalog, fns, limits, counter: CostCounter::default(), subquery_cache: HashMap::new() }
    }

    fn check_budget(&self, extra_rows: usize) -> Result<(), RuntimeError> {
        if extra_rows > self.limits.max_rows || self.counter.units() > self.limits.max_units {
            Err(RuntimeError::ResourceExhausted)
        } else {
            Ok(())
        }
    }

    // ================= query execution =================

    /// Execute a query; `outer` is the chain of enclosing row scopes for
    /// correlated subqueries (innermost last). Returns the result plus a
    /// flag saying whether any outer scope was actually consulted.
    pub fn exec_query(
        &mut self,
        q: &Query,
        outer: &[Scope<'_>],
    ) -> Result<(Relation, bool), RuntimeError> {
        let mut used_outer = false;

        // ---- FROM with pushdown -------------------------------------
        let conjuncts = q.where_clause.as_ref().map(split_conjuncts).unwrap_or_default();
        let mut item_rels: Vec<Relation> = Vec::with_capacity(q.from.len());
        for item in &q.from {
            let rel = self.exec_from_item(item, outer, &mut used_outer)?;
            item_rels.push(rel);
        }

        let mut residual: Vec<&Expr> = Vec::new();
        let mut join_conds: Vec<&Expr> = Vec::new();

        if item_rels.is_empty() {
            residual = conjuncts;
        } else {
            // Classify each conjunct: push to a single item, use as an
            // equi-join between items, or keep as residual.
            for c in conjuncts {
                match classify_conjunct(c, &item_rels) {
                    ConjunctClass::SingleItem(i) => {
                        let rel = std::mem::take(&mut item_rels[i]);
                        item_rels[i] = self.filter(rel, c, outer, &mut used_outer)?;
                    }
                    ConjunctClass::EquiJoin => join_conds.push(c),
                    ConjunctClass::Residual => residual.push(c),
                }
            }
        }

        // Combine the comma-list items with hash joins when possible.
        let mut source = match item_rels.len() {
            0 => Relation::unit(),
            _ => {
                let mut acc = item_rels.remove(0);
                for next in item_rels {
                    let (cond, rest): (Vec<&Expr>, Vec<&Expr>) =
                        join_conds.iter().partition(|c| {
                            equi_join_keys(c, &acc, &next).is_some()
                        });
                    join_conds = rest;
                    acc = self.combine(acc, next, &cond, outer, &mut used_outer)?;
                }
                // Join conditions that never became applicable drop to
                // residual filtering.
                residual.extend(join_conds);
                acc
            }
        };

        // ---- residual WHERE ------------------------------------------
        for c in residual {
            source = self.filter(source, c, outer, &mut used_outer)?;
        }

        // ---- grouping / aggregation ----------------------------------
        let is_agg = !q.group_by.is_empty() || query_has_aggregate(q);
        let mut projected = if is_agg {
            self.exec_aggregate(q, &source, outer, &mut used_outer)?
        } else {
            self.project(q, &source, outer, &mut used_outer)?
        };

        // ---- DISTINCT --------------------------------------------------
        if q.distinct {
            projected = self.distinct(projected)?;
        }

        // ---- ORDER BY (on projected output, falling back to source) ----
        if !q.order_by.is_empty() && !is_agg {
            projected = self.order_by(q, projected, &source, outer, &mut used_outer)?;
        } else if !q.order_by.is_empty() {
            // Aggregate outputs sort on their projected columns only.
            projected =
                self.order_by(q, projected, &Relation::default(), outer, &mut used_outer)?;
        }

        // ---- TOP --------------------------------------------------------
        if let Some(n) = q.top {
            projected.rows.truncate(n as usize);
        }

        Ok((projected, used_outer))
    }

    fn exec_from_item(
        &mut self,
        item: &FromItem,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        let mut rel = self.exec_factor(&item.factor, outer, used_outer)?;
        for join in &item.joins {
            let right = self.exec_factor(&join.factor, outer, used_outer)?;
            rel = self.join(rel, right, join.kind, join.on.as_ref(), outer, used_outer)?;
        }
        Ok(rel)
    }

    fn exec_factor(
        &mut self,
        factor: &TableFactor,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        match factor {
            TableFactor::Table { name, alias } => {
                let canonical = name.canonical();
                let table = self
                    .catalog
                    .get(&canonical)
                    .ok_or_else(|| RuntimeError::UnknownTable(canonical.clone()))?;
                let n = table.row_count();
                self.counter.rows_scanned += n as u64;
                self.check_budget(n)?;
                let qualifier = alias.as_ref().map(|a| a.to_ascii_lowercase());
                let tname = table.name.to_ascii_lowercase();
                let cols = table
                    .columns
                    .iter()
                    .map(|c| ColRef {
                        qualifier: qualifier.clone(),
                        table: Some(tname.clone()),
                        name: c.name.clone(),
                    })
                    .collect();
                let mut rows = Vec::with_capacity(n);
                for r in 0..n {
                    rows.push(table.data.iter().map(|c| c.get(r)).collect());
                }
                Ok(Relation { cols, rows })
            }
            TableFactor::Derived { subquery, alias } => {
                let (mut rel, uo) = self.exec_query(subquery, outer)?;
                *used_outer |= uo;
                // Rebind all columns under the derived alias.
                let qualifier = alias.as_ref().map(|a| a.to_ascii_lowercase());
                for c in &mut rel.cols {
                    c.qualifier = qualifier.clone();
                    c.table = None;
                }
                Ok(rel)
            }
        }
    }

    fn filter(
        &mut self,
        rel: Relation,
        pred: &Expr,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        let mut rows = Vec::new();
        self.counter.eval_units += rel.rows.len() as u64;
        // Periodic budget check so runaway predicates with functions abort.
        for (i, row) in rel.rows.iter().enumerate() {
            if i % 4096 == 0 {
                self.check_budget(0)?;
            }
            let v = self.eval_with_row(pred, &rel, row, outer, used_outer)?;
            if v.is_truthy() {
                rows.push(row.clone());
            }
        }
        self.counter.rows_materialized += rows.len() as u64;
        Ok(Relation { cols: rel.cols, rows })
    }

    /// Join two relations (explicit JOIN syntax).
    fn join(
        &mut self,
        left: Relation,
        right: Relation,
        kind: JoinKind,
        on: Option<&Expr>,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        let cols: Vec<ColRef> = left.cols.iter().chain(right.cols.iter()).cloned().collect();

        // Try hash path for inner/left/right equi-joins.
        if let Some(cond) = on {
            if let Some((lk, rk)) = equi_join_keys(cond, &left, &right) {
                return self.hash_join(left, right, cols, lk, rk, cond, kind, outer, used_outer);
            }
        }

        // Nested-loop fallback (also handles CROSS JOIN).
        let est = left.len().saturating_mul(right.len().max(1));
        self.check_budget(est)?;
        let mut rows = Vec::new();
        let mut right_matched = vec![false; right.len()];
        for lrow in &left.rows {
            let mut matched = false;
            for (ri, rrow) in right.rows.iter().enumerate() {
                self.counter.eval_units += 1;
                let combined: Vec<Value> = lrow.iter().chain(rrow.iter()).cloned().collect();
                let keep = match on {
                    None => true,
                    Some(cond) => {
                        let tmp = Relation { cols: cols.clone(), rows: Vec::new() };
                        self.eval_with_row(cond, &tmp, &combined, outer, used_outer)?.is_truthy()
                    }
                };
                if keep {
                    matched = true;
                    right_matched[ri] = true;
                    rows.push(combined);
                    if rows.len() > self.limits.max_rows {
                        return Err(RuntimeError::ResourceExhausted);
                    }
                }
            }
            if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                let mut padded = lrow.clone();
                padded.extend(std::iter::repeat(Value::Null).take(right.width()));
                rows.push(padded);
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, rrow) in right.rows.iter().enumerate() {
                if !right_matched[ri] {
                    let mut padded: Vec<Value> =
                        std::iter::repeat(Value::Null).take(left.width()).collect();
                    padded.extend(rrow.iter().cloned());
                    rows.push(padded);
                }
            }
        }
        self.counter.rows_materialized += rows.len() as u64;
        Ok(Relation { cols, rows })
    }

    /// Hash join on single-key equality, preserving outer-join semantics.
    #[allow(clippy::too_many_arguments)]
    fn hash_join(
        &mut self,
        left: Relation,
        right: Relation,
        cols: Vec<ColRef>,
        lk: Expr,
        rk: Expr,
        full_cond: &Expr,
        kind: JoinKind,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        // Build on the right side.
        let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
        for (ri, rrow) in right.rows.iter().enumerate() {
            let v = self.eval_with_row(&rk, &right, rrow, outer, used_outer)?;
            if v.is_null() {
                continue;
            }
            let mut key = Vec::new();
            v.group_key(&mut key);
            table.entry(key).or_default().push(ri);
            self.counter.hash_ops += 1;
        }

        let mut rows = Vec::new();
        let mut right_matched = vec![false; right.len()];
        let tmp_cols = Relation { cols: cols.clone(), rows: Vec::new() };
        for lrow in &left.rows {
            self.counter.hash_ops += 1;
            let v = self.eval_with_row(&lk, &left, lrow, outer, used_outer)?;
            let mut matched = false;
            if !v.is_null() {
                let mut key = Vec::new();
                v.group_key(&mut key);
                if let Some(cands) = table.get(&key) {
                    for &ri in cands {
                        let combined: Vec<Value> =
                            lrow.iter().chain(right.rows[ri].iter()).cloned().collect();
                        // Re-check the full ON condition (it may have
                        // residual conjuncts beyond the hash key).
                        self.counter.eval_units += 1;
                        if self
                            .eval_with_row(full_cond, &tmp_cols, &combined, outer, used_outer)?
                            .is_truthy()
                        {
                            matched = true;
                            right_matched[ri] = true;
                            rows.push(combined);
                            if rows.len() > self.limits.max_rows {
                                return Err(RuntimeError::ResourceExhausted);
                            }
                        }
                    }
                }
            }
            if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                let mut padded = lrow.clone();
                padded.extend(std::iter::repeat(Value::Null).take(right.width()));
                rows.push(padded);
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, rrow) in right.rows.iter().enumerate() {
                if !right_matched[ri] {
                    let mut padded: Vec<Value> =
                        std::iter::repeat(Value::Null).take(left.width()).collect();
                    padded.extend(rrow.iter().cloned());
                    rows.push(padded);
                }
            }
        }
        self.counter.rows_materialized += rows.len() as u64;
        Ok(Relation { cols, rows })
    }

    /// Combine two comma-list items using extracted equi-join conditions
    /// (inner-join semantics, which is what comma joins mean).
    fn combine(
        &mut self,
        left: Relation,
        right: Relation,
        conds: &[&Expr],
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        let cols: Vec<ColRef> = left.cols.iter().chain(right.cols.iter()).cloned().collect();
        if let Some(first) = conds.first() {
            if let Some((lk, rk)) = equi_join_keys(first, &left, &right) {
                // Conjoin all applicable conditions for the post-probe check.
                let full = conds
                    .iter()
                    .skip(1)
                    .fold((**first).clone(), |acc, c| Expr::Logical {
                        left: Box::new(acc),
                        and: true,
                        right: Box::new((**c).clone()),
                    });
                return self
                    .hash_join(left, right, cols, lk, rk, &full, JoinKind::Inner, outer, used_outer);
            }
        }
        // Pure cartesian product.
        self.join(left, right, JoinKind::Cross, None, outer, used_outer)
    }

    // ================= projection / aggregation =================

    fn project(
        &mut self,
        q: &Query,
        source: &Relation,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        let (cols, plan) = self.projection_plan(&q.select, source)?;
        let mut rows = Vec::with_capacity(source.len());
        self.counter.eval_units += (source.len() * plan.len().max(1)) as u64;
        for (i, row) in source.rows.iter().enumerate() {
            if i % 4096 == 0 {
                self.check_budget(0)?;
            }
            let mut out = Vec::with_capacity(cols.len());
            for p in &plan {
                match p {
                    ProjStep::Passthrough(idx) => out.push(row[*idx].clone()),
                    ProjStep::Eval(e) => {
                        out.push(self.eval_with_row(e, source, row, outer, used_outer)?)
                    }
                }
            }
            rows.push(out);
        }
        self.counter.rows_materialized += rows.len() as u64;
        Ok(Relation { cols, rows })
    }

    /// Expand wildcards and prepare per-item evaluation steps.
    fn projection_plan<'q>(
        &self,
        select: &'q [SelectItem],
        source: &Relation,
    ) -> Result<(Vec<ColRef>, Vec<ProjStep<'q>>), RuntimeError> {
        let mut cols = Vec::new();
        let mut plan = Vec::new();
        for (k, item) in select.iter().enumerate() {
            match &item.expr {
                Expr::Wildcard(qual) => {
                    let idxs = source.wildcard_columns(qual.as_deref());
                    if idxs.is_empty() && qual.is_some() {
                        return Err(RuntimeError::UnknownColumn(format!(
                            "{}.*",
                            qual.clone().unwrap_or_default()
                        )));
                    }
                    for i in idxs {
                        cols.push(source.cols[i].clone());
                        plan.push(ProjStep::Passthrough(i));
                    }
                }
                e => {
                    let name = item
                        .alias
                        .clone()
                        .or_else(|| match e {
                            Expr::Column(c) => Some(c.base().to_string()),
                            _ => None,
                        })
                        .unwrap_or_else(|| format!("col{}", k + 1));
                    cols.push(ColRef { qualifier: None, table: None, name });
                    plan.push(ProjStep::Eval(e));
                }
            }
        }
        Ok((cols, plan))
    }

    fn exec_aggregate(
        &mut self,
        q: &Query,
        source: &Relation,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        // Group rows by the GROUP BY key (single group if absent).
        let mut groups: Vec<Vec<usize>> = Vec::new();
        if q.group_by.is_empty() {
            groups.push((0..source.len()).collect());
        } else {
            let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
            for (ri, row) in source.rows.iter().enumerate() {
                let mut key = Vec::new();
                for g in &q.group_by {
                    let v = self.eval_with_row(g, source, row, outer, used_outer)?;
                    v.group_key(&mut key);
                }
                self.counter.hash_ops += 1;
                let gid = *index.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gid].push(ri);
            }
        }

        // HAVING filters groups.
        let mut kept: Vec<&Vec<usize>> = Vec::new();
        for g in &groups {
            if q.group_by.is_empty() || !g.is_empty() {
                let keep = match &q.having {
                    None => true,
                    Some(h) => self
                        .eval_in_group(h, source, g, outer, used_outer)?
                        .is_truthy(),
                };
                if keep {
                    kept.push(g);
                }
            }
        }
        // An empty input with no GROUP BY still yields one aggregate row
        // (COUNT(*) = 0), which `groups` already encodes.

        // Project each group.
        let mut cols = Vec::new();
        for (k, item) in q.select.iter().enumerate() {
            let name = item
                .alias
                .clone()
                .or_else(|| match &item.expr {
                    Expr::Column(c) => Some(c.base().to_string()),
                    Expr::Function(f) => Some(f.name.base().to_string()),
                    _ => None,
                })
                .unwrap_or_else(|| format!("col{}", k + 1));
            cols.push(ColRef { qualifier: None, table: None, name });
        }
        let mut rows = Vec::with_capacity(kept.len());
        for g in kept {
            self.check_budget(0)?;
            let mut out = Vec::with_capacity(q.select.len());
            for item in &q.select {
                out.push(self.eval_in_group(&item.expr, source, g, outer, used_outer)?);
            }
            rows.push(out);
        }

        // ORDER BY for aggregates: evaluate per group on the already
        // projected row (aliases) — handled by caller via projected rel.
        let mut rel = Relation { cols, rows };

        // Sort aggregate output here if ORDER BY references aliases or
        // aggregate expressions; the generic order_by in exec_query handles
        // the alias case since source is empty.
        let _ = &mut rel;
        self.counter.rows_materialized += rel.rows.len() as u64;
        Ok(rel)
    }

    /// Evaluate an expression in aggregate context: aggregate calls reduce
    /// over the group's rows; bare columns take their value from the first
    /// row of the group (lenient T-SQL-ish behaviour).
    fn eval_in_group(
        &mut self,
        expr: &Expr,
        source: &Relation,
        group: &[usize],
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Value, RuntimeError> {
        match expr {
            Expr::Function(f) if f.aggregate.is_some() => {
                let agg = f.aggregate.unwrap();
                self.counter.eval_units += group.len() as u64;
                match agg {
                    Aggregate::Count => {
                        if f.args.is_empty()
                            || matches!(f.args.first(), Some(Expr::Wildcard(_)))
                        {
                            return Ok(Value::Int(group.len() as i64));
                        }
                        let mut n = 0i64;
                        let mut seen = std::collections::HashSet::new();
                        for &ri in group {
                            let v = self.eval_with_row(
                                &f.args[0],
                                source,
                                &source.rows[ri],
                                outer,
                                used_outer,
                            )?;
                            if !v.is_null() {
                                if f.distinct {
                                    let mut k = Vec::new();
                                    v.group_key(&mut k);
                                    if seen.insert(k) {
                                        n += 1;
                                    }
                                } else {
                                    n += 1;
                                }
                            }
                        }
                        Ok(Value::Int(n))
                    }
                    Aggregate::Min | Aggregate::Max | Aggregate::Sum | Aggregate::Avg => {
                        let arg = f.args.first().ok_or_else(|| {
                            RuntimeError::TypeError(format!("{}() needs an argument", agg.name()))
                        })?;
                        let mut acc: Option<Value> = None;
                        let mut sum = 0.0f64;
                        let mut all_int = true;
                        let mut n = 0u64;
                        for &ri in group {
                            let v = self.eval_with_row(
                                arg,
                                source,
                                &source.rows[ri],
                                outer,
                                used_outer,
                            )?;
                            if v.is_null() {
                                continue;
                            }
                            n += 1;
                            match agg {
                                Aggregate::Min => {
                                    acc = Some(match acc {
                                        None => v,
                                        Some(a) => {
                                            if v.total_cmp(&a).is_lt() {
                                                v
                                            } else {
                                                a
                                            }
                                        }
                                    });
                                }
                                Aggregate::Max => {
                                    acc = Some(match acc {
                                        None => v,
                                        Some(a) => {
                                            if v.total_cmp(&a).is_gt() {
                                                v
                                            } else {
                                                a
                                            }
                                        }
                                    });
                                }
                                _ => {
                                    if !matches!(v, Value::Int(_)) {
                                        all_int = false;
                                    }
                                    sum += v.as_f64().ok_or_else(|| {
                                        RuntimeError::TypeError(format!(
                                            "{}() over non-numeric values",
                                            agg.name()
                                        ))
                                    })?;
                                }
                            }
                        }
                        match agg {
                            Aggregate::Min | Aggregate::Max => Ok(acc.unwrap_or(Value::Null)),
                            Aggregate::Sum => {
                                if n == 0 {
                                    Ok(Value::Null)
                                } else if all_int {
                                    Ok(Value::Int(sum as i64))
                                } else {
                                    Ok(Value::Float(sum))
                                }
                            }
                            Aggregate::Avg => {
                                if n == 0 {
                                    Ok(Value::Null)
                                } else {
                                    Ok(Value::Float(sum / n as f64))
                                }
                            }
                            Aggregate::Count => unreachable!(),
                        }
                    }
                }
            }
            Expr::Literal(_) => self.eval_with_row(expr, source, &[], outer, used_outer),
            // Composite expressions: recurse, aggregating sub-calls.
            Expr::Binary { left, op, right } => {
                let l = self.eval_in_group(left, source, group, outer, used_outer)?;
                let r = self.eval_in_group(right, source, group, outer, used_outer)?;
                crate::eval::apply_binary(&l, *op, &r)
            }
            Expr::Logical { left, and, right } => {
                let l = self.eval_in_group(left, source, group, outer, used_outer)?;
                if *and && !l.is_truthy() {
                    return Ok(Value::Bool(false));
                }
                if !*and && l.is_truthy() {
                    return Ok(Value::Bool(true));
                }
                let r = self.eval_in_group(right, source, group, outer, used_outer)?;
                Ok(Value::Bool(if *and {
                    l.is_truthy() && r.is_truthy()
                } else {
                    l.is_truthy() || r.is_truthy()
                }))
            }
            Expr::Unary { op, expr } => {
                let v = self.eval_in_group(expr, source, group, outer, used_outer)?;
                match op {
                    UnaryOp::Neg => v.neg(),
                    UnaryOp::Plus => Ok(v),
                    UnaryOp::Not => Ok(Value::Bool(!v.is_truthy())),
                }
            }
            Expr::Function(f) => {
                // Scalar function over aggregated arguments.
                let mut args = Vec::with_capacity(f.args.len());
                for a in &f.args {
                    args.push(self.eval_in_group(a, source, group, outer, used_outer)?);
                }
                let (v, cost) = self.fns.call(&f.name.canonical(), &args)?;
                self.counter.fn_units += cost;
                Ok(v)
            }
            // Bare columns etc.: first row of the group (empty group → NULL).
            other => match group.first() {
                Some(&ri) => {
                    self.eval_with_row(other, source, &source.rows[ri], outer, used_outer)
                }
                None => Ok(Value::Null),
            },
        }
    }

    fn distinct(&mut self, rel: Relation) -> Result<Relation, RuntimeError> {
        let mut seen = std::collections::HashSet::new();
        let mut rows = Vec::new();
        for row in rel.rows {
            self.counter.hash_ops += 1;
            let mut key = Vec::new();
            for v in &row {
                v.group_key(&mut key);
            }
            if seen.insert(key) {
                rows.push(row);
            }
        }
        Ok(Relation { cols: rel.cols, rows })
    }

    fn order_by(
        &mut self,
        q: &Query,
        projected: Relation,
        source: &Relation,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        // Evaluate sort keys per projected row; resolution tries the
        // projected columns (select aliases) first, then the source row.
        let paired = !source.cols.is_empty() && source.len() == projected.len();
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(projected.len());
        for (i, row) in projected.rows.into_iter().enumerate() {
            let mut keys = Vec::with_capacity(q.order_by.len());
            for ob in &q.order_by {
                let tmp = Relation { cols: projected.cols.clone(), rows: Vec::new() };
                let v = match self.eval_with_row(&ob.expr, &tmp, &row, outer, used_outer) {
                    Ok(v) => v,
                    Err(RuntimeError::UnknownColumn(_)) | Err(RuntimeError::AmbiguousColumn(_))
                        if paired =>
                    {
                        self.eval_with_row(&ob.expr, source, &source.rows[i], outer, used_outer)?
                    }
                    Err(e) => return Err(e),
                };
                keys.push(v);
            }
            keyed.push((keys, row));
        }
        let descs: Vec<bool> = q.order_by.iter().map(|o| o.desc).collect();
        let mut cmp_count = 0u64;
        keyed.sort_by(|a, b| {
            cmp_count += 1;
            for (k, desc) in descs.iter().enumerate() {
                let ord = a.0[k].total_cmp(&b.0[k]);
                if ord != std::cmp::Ordering::Equal {
                    return if *desc { ord.reverse() } else { ord };
                }
            }
            std::cmp::Ordering::Equal
        });
        self.counter.sort_cmps += cmp_count;
        Ok(Relation { cols: projected.cols, rows: keyed.into_iter().map(|(_, r)| r).collect() })
    }

    // ================= scalar evaluation bridge =================

    /// Evaluate `expr` for one row of `rel`, with `outer` correlation scopes.
    pub fn eval_with_row(
        &mut self,
        expr: &Expr,
        rel: &Relation,
        row: &[Value],
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Value, RuntimeError> {
        crate::eval::eval(self, expr, rel, row, outer, used_outer)
    }

    pub(crate) fn cached_subquery(&self, key: usize) -> Option<&CachedSubquery> {
        self.subquery_cache.get(&key)
    }

    pub(crate) fn cache_scalar(&mut self, key: usize, v: Value) {
        self.subquery_cache.insert(key, CachedSubquery::Scalar(v));
    }

    pub(crate) fn cache_set(&mut self, key: usize, s: std::collections::HashSet<Vec<u8>>) {
        self.subquery_cache.insert(key, CachedSubquery::Set(s));
    }

    pub(crate) fn cache_nonempty(&mut self, key: usize, b: bool) {
        self.subquery_cache.insert(key, CachedSubquery::NonEmpty(b));
    }
}


enum ProjStep<'q> {
    Passthrough(usize),
    Eval(&'q Expr),
}

// ================= conjunct analysis =================

/// Split a boolean expression into AND-connected conjuncts.
pub fn split_conjuncts(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn rec<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Logical { left, and: true, right } => {
                rec(left, out);
                rec(right, out);
            }
            other => out.push(other),
        }
    }
    rec(e, &mut out);
    out
}

enum ConjunctClass {
    SingleItem(usize),
    EquiJoin,
    Residual,
}

/// Which FROM items does this conjunct touch?
fn classify_conjunct(c: &Expr, items: &[Relation]) -> ConjunctClass {
    let mut touched: Vec<usize> = Vec::new();
    let mut unresolved = false;
    collect_column_parts(c, &mut |parts| {
        let mut any = false;
        for (i, rel) in items.iter().enumerate() {
            if let Ok(Some(_)) = rel.resolve(parts) {
                if !touched.contains(&i) {
                    touched.push(i);
                }
                any = true;
                break;
            }
        }
        if !any {
            unresolved = true;
        }
    });
    if unresolved {
        return ConjunctClass::Residual;
    }
    match touched.len() {
        0 | 1 => ConjunctClass::SingleItem(touched.first().copied().unwrap_or(0)),
        2 if is_equality(c) => ConjunctClass::EquiJoin,
        _ => ConjunctClass::Residual,
    }
}

fn is_equality(e: &Expr) -> bool {
    matches!(e, Expr::Binary { op: sqlan_sql::Op::Eq, .. })
}

fn collect_column_parts<'a>(e: &'a Expr, f: &mut impl FnMut(&'a [String])) {
    sqlan_sql::visit::walk_expr(e, &mut |x| {
        if let Expr::Column(c) = x {
            f(&c.parts);
        }
    });
}

/// If `cond` (or its first equality conjunct) is `lhs = rhs` with `lhs`
/// fully resolvable in `left` and `rhs` in `right` (or vice versa), return
/// the key expressions oriented as (left_key, right_key).
pub fn equi_join_keys(cond: &Expr, left: &Relation, right: &Relation) -> Option<(Expr, Expr)> {
    for c in split_conjuncts(cond) {
        if let Expr::Binary { left: l, op: sqlan_sql::Op::Eq, right: r } = c {
            let l_in_left = expr_resolvable(l, left);
            let r_in_right = expr_resolvable(r, right);
            if l_in_left && r_in_right {
                return Some(((**l).clone(), (**r).clone()));
            }
            let l_in_right = expr_resolvable(l, right);
            let r_in_left = expr_resolvable(r, left);
            if l_in_right && r_in_left {
                return Some(((**r).clone(), (**l).clone()));
            }
        }
    }
    None
}

/// Does every column in `e` resolve within `rel`, with at least one column
/// present (constants alone don't make a join key)?
fn expr_resolvable(e: &Expr, rel: &Relation) -> bool {
    let mut any = false;
    let mut all = true;
    collect_column_parts(e, &mut |parts| {
        any = true;
        if !matches!(rel.resolve(parts), Ok(Some(_))) {
            all = false;
        }
    });
    any && all && !contains_subquery(e)
}

fn contains_subquery(e: &Expr) -> bool {
    let mut found = false;
    sqlan_sql::visit::walk_expr(e, &mut |x| {
        if matches!(x, Expr::Subquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. }) {
            found = true;
        }
    });
    found
}

/// Does any select item or HAVING clause contain an aggregate call?
pub fn query_has_aggregate(q: &Query) -> bool {
    let mut found = false;
    let mut check = |e: &Expr| {
        sqlan_sql::visit::walk_expr(e, &mut |x| {
            if let Expr::Function(f) = x {
                if f.aggregate.is_some() {
                    found = true;
                }
            }
        });
    };
    for item in &q.select {
        check(&item.expr);
    }
    if let Some(h) = &q.having {
        check(h);
    }
    found
}
