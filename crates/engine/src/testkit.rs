//! Shared differential-testing fixtures: the equivalence catalog and the
//! 112-query corpus exercising every operator.
//!
//! Used by the engine's integration suites (`optimizer_equivalence`,
//! `concurrent_readers`, `engine_differential`) **and** by
//! `sqlan-bench`'s `bench_engine` binary, so tests and benchmarks measure
//! the exact same workload. Not part of the engine's semantic API.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::catalog::{Catalog, ColumnSpec, TableSpec};

/// Small catalog so even cross-product plans stay under the row budget.
pub fn equivalence_catalog() -> Catalog {
    let specs = vec![
        TableSpec::new("Obj", 240)
            .column("id", ColumnSpec::SeqId)
            .column("x", ColumnSpec::IntUniform(0, 40))
            .column("y", ColumnSpec::Uniform(0.0, 100.0))
            .column("kind", ColumnSpec::Categorical(5))
            .column("tag", ColumnSpec::StrChoice(&["a", "b", "c"])),
        TableSpec::new("Spec", 90)
            .column("sid", ColumnSpec::SeqId)
            .column("obj_id", ColumnSpec::IntUniform(0, 239))
            .column("z", ColumnSpec::Uniform(0.0, 4.0)),
        TableSpec::new("Tiny", 25)
            .column("tid", ColumnSpec::SeqId)
            .column("grp", ColumnSpec::Categorical(3)),
    ];
    Catalog::generate(&specs, 99)
}

/// A corpus exercising every operator: comma joins, explicit joins of all
/// kinds, pushable and residual predicates, aggregates, HAVING, DISTINCT,
/// ORDER BY (on unique keys, so ties cannot make TOP ambiguous), TOP,
/// derived tables, and correlated + uncorrelated subqueries.
pub fn equivalence_corpus() -> Vec<String> {
    let mut qs: Vec<String> = vec![
        "SELECT * FROM Obj".into(),
        "SELECT id, x + 1 AS x1 FROM Obj WHERE x > 10 AND kind = 2".into(),
        "SELECT o.id, s.z FROM Obj o, Spec s WHERE o.id = s.obj_id AND o.x < 30".into(),
        "SELECT o.id FROM Obj o, Spec s, Tiny t \
         WHERE o.id = s.obj_id AND t.grp = o.kind AND s.z > 1.0"
            .into(),
        "SELECT o.id, s.sid FROM Obj o INNER JOIN Spec s ON o.id = s.obj_id".into(),
        "SELECT o.id, s.sid FROM Obj o LEFT JOIN Spec s ON o.id = s.obj_id".into(),
        "SELECT o.id, s.sid FROM Obj o RIGHT JOIN Spec s ON o.id = s.obj_id".into(),
        "SELECT o.id, s.sid FROM Obj o FULL JOIN Spec s ON o.id = s.obj_id".into(),
        "SELECT t.tid, o.id FROM Tiny t CROSS JOIN Obj o WHERE o.x = t.tid".into(),
        "SELECT o.id FROM Obj o INNER JOIN Spec s ON o.id = s.obj_id AND s.z > 2.0".into(),
        "SELECT kind, count(*) AS n, avg(y) FROM Obj GROUP BY kind \
         HAVING count(*) > 10 ORDER BY n DESC, kind"
            .into(),
        "SELECT count(*) FROM Obj WHERE 2 + 3 * 4 < x".into(),
        "SELECT DISTINCT kind FROM Obj ORDER BY kind".into(),
        "SELECT TOP 9 id FROM Obj ORDER BY id DESC".into(),
        "SELECT d.kind FROM (SELECT kind, count(*) AS n FROM Obj GROUP BY kind) d \
         WHERE d.n > 20 ORDER BY d.kind"
            .into(),
        "SELECT id FROM Obj WHERE y > (SELECT avg(y) FROM Obj) ORDER BY id".into(),
        "SELECT sid FROM Spec WHERE obj_id IN (SELECT id FROM Obj WHERE kind = 1)".into(),
        "SELECT o.id FROM Obj o WHERE EXISTS \
         (SELECT 1 FROM Spec s WHERE s.obj_id = o.id AND s.z > o.x / 20)"
            .into(),
        "SELECT tag, x * 2 - 1 FROM Obj WHERE x BETWEEN 5 AND 25 AND tag LIKE '%a%'".into(),
        "SELECT CASE WHEN x > 20 THEN 'hi' ELSE 'lo' END AS band, count(*) \
         FROM Obj GROUP BY CASE WHEN x > 20 THEN 'hi' ELSE 'lo' END ORDER BY band"
            .into(),
        "SELECT 1 + 1".into(),
        "SELECT o.kind FROM Obj o, Tiny t WHERE o.kind = t.grp AND t.tid < 10".into(),
    ];
    // Seeded parameterized variants: predicates at varying selectivities
    // over all join shapes.
    let mut rng = StdRng::seed_from_u64(0xE0);
    for _ in 0..30 {
        let a = rng.gen_range(0..40);
        let b = rng.gen_range(0..5);
        let z = rng.gen_range(0.0..4.0);
        qs.push(format!(
            "SELECT o.id, s.z FROM Obj o, Spec s \
             WHERE s.obj_id = o.id AND o.x >= {a} AND s.z < {z:.3}"
        ));
        qs.push(format!(
            "SELECT kind, count(*) FROM Obj WHERE x < {a} AND kind <> {b} \
             GROUP BY kind ORDER BY kind"
        ));
        qs.push(format!(
            "SELECT o.id FROM Obj o LEFT JOIN Spec s ON o.id = s.obj_id \
             WHERE o.kind = {b} ORDER BY o.id"
        ));
    }
    qs
}
