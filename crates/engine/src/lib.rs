//! # sqlan-engine
//!
//! An in-memory columnar relational engine with **deterministic cost
//! accounting**, built as the label-generating substrate for the `sqlan`
//! reproduction of *"Facilitating SQL Query Composition and Analysis"*
//! (SIGMOD 2020).
//!
//! The paper's workloads carry three execution-derived labels per query:
//! error class, answer size, and CPU time. We cannot obtain the original
//! SDSS/SQLShare databases, so this engine executes synthesized queries
//! over synthesized catalogs and produces those labels from first
//! principles — structure in, labels out — preserving the learning
//! problem's causal shape (see DESIGN.md §2).
//!
//! ```
//! use sqlan_engine::{Catalog, ColumnSpec, Database, ErrorClass, TableSpec};
//!
//! let catalog = Catalog::generate(
//!     &[TableSpec::new("Galaxy", 1000)
//!         .column("objid", ColumnSpec::SeqId)
//!         .column("ra", ColumnSpec::Uniform(0.0, 360.0))],
//!     42,
//! );
//! let db = Database::new(catalog);
//! let out = db.submit("SELECT count(*) FROM Galaxy WHERE ra < 180");
//! assert_eq!(out.error_class, ErrorClass::Success);
//! assert_eq!(out.answer_size, 1);
//! ```

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod cost;
pub mod db;
pub mod error;
pub mod eval;
pub mod exec;
pub mod functions;
mod obs;
pub mod optimizer;
pub mod physical;
pub mod plan;
pub mod plan_cache;
pub mod relation;
pub mod testkit;
pub mod value;

pub use catalog::{Catalog, ColType, ColumnDef, ColumnSpec, ColumnVec, Table, TableSpec};
pub use cost::{estimate_cost, estimate_cost_with, estimate_plan, CostCounter, CostEstimate};
pub use db::{Database, QueryOutcome};
pub use error::{ErrorClass, RuntimeError};
pub use exec::{Engine, ExecCtx, ExecLimits, OpStats, ENGINE_ENV};
pub use functions::{FnRegistry, ScalarFn};
pub use optimizer::{
    ConstantFolding, EquiJoinDetection, OptLevel, Optimizer, OptimizerPass, PredicatePushdown,
    ProjectionPruning,
};
pub use plan::{lower, FoldStep, JoinStrategy, LogicalPlan, QueryPlan, SelectOp};
pub use plan_cache::{
    plan_cache_capacity_from_env, CachedTemplate, PlanCache, PlanCacheStats,
    DEFAULT_PLAN_CACHE_CAPACITY, PLAN_CACHE_ENV,
};
pub use relation::{ColRef, ColumnBatch, Relation};
pub use value::{Column, ColumnBuilder, Value};
