//! Cost accounting (actual execution) and optimizer-style cost *estimates*.
//!
//! Two deliberately different models live here:
//!
//! * [`CostCounter`] — exact, deterministic accounting charged by the
//!   executor as it runs. This is the ground truth that becomes the CPU
//!   time label of a workload entry.
//! * [`estimate_cost`] — a textbook System-R-style estimator over the AST
//!   and catalog statistics, with uniformity assumptions and **no** model
//!   of scalar-function CPU or nested re-execution. Its imprecision is the
//!   point: the paper's `opt` baseline (linear regression on optimizer
//!   estimates) trails the learned models precisely because analytic cost
//!   models simplify (§1, §6.2.3).

use serde::{Deserialize, Serialize};

use sqlan_sql::{Expr, Query, Statement, TableFactor};

use crate::catalog::Catalog;

/// Exact execution cost accounting, in abstract "cost units".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostCounter {
    /// Rows read from base tables.
    pub rows_scanned: u64,
    /// Weighted scalar-function cost units.
    pub fn_units: u64,
    /// Comparison operations in sorts.
    pub sort_cmps: u64,
    /// Hash-table build/probe operations in joins, grouping, DISTINCT.
    pub hash_ops: u64,
    /// Rows produced in intermediate and final relations.
    pub rows_materialized: u64,
    /// Expression evaluations (per row × per expression node batch).
    pub eval_units: u64,
    /// Subquery executions (correlated subqueries re-execute per row).
    pub subquery_execs: u64,
}

impl CostCounter {
    /// Total abstract cost units.
    pub fn units(&self) -> u64 {
        self.rows_scanned
            .saturating_add(self.fn_units.saturating_mul(4))
            .saturating_add(self.sort_cmps)
            .saturating_add(self.hash_ops.saturating_mul(2))
            .saturating_add(self.rows_materialized)
            .saturating_add(self.eval_units)
            .saturating_add(self.subquery_execs.saturating_mul(16))
    }

    /// Deterministic CPU seconds: one unit = 10 µs, calibrated so that a
    /// point-lookup scan over a laptop-scale table costs tens of
    /// milliseconds while join-, function- and subquery-heavy queries
    /// reach seconds to hours — reproducing the skew of the SDSS `busy`
    /// column (Figure 6d: mode/median ≈ 0, extreme heavy tail).
    pub fn cpu_seconds(&self) -> f64 {
        self.units() as f64 * 1e-5
    }

    pub fn add(&mut self, other: &CostCounter) {
        self.rows_scanned += other.rows_scanned;
        self.fn_units += other.fn_units;
        self.sort_cmps += other.sort_cmps;
        self.hash_ops += other.hash_ops;
        self.rows_materialized += other.rows_materialized;
        self.eval_units += other.eval_units;
        self.subquery_execs += other.subquery_execs;
    }
}

/// Optimizer cost estimate for the `opt` baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Estimated total cost units (I/O-dominant System-R flavour).
    pub total_cost: f64,
    /// Estimated output cardinality.
    pub est_rows: f64,
}

impl CostEstimate {
    /// Feature vector for the `opt` linear-regression baseline.
    pub fn features(&self) -> [f64; 2] {
        [(1.0 + self.total_cost).ln(), (1.0 + self.est_rows).ln()]
    }
}

/// Default selectivities, straight out of the System-R paper's tradition.
const SEL_EQ: f64 = 0.05;
const SEL_RANGE: f64 = 0.30;
const SEL_LIKE: f64 = 0.25;
const SEL_IN: f64 = 0.20;
const SEL_OTHER: f64 = 0.33;
/// Join selectivity for an equi-join: 1 / max(card) approximated by a
/// constant over the product.
const SEL_JOIN: f64 = 1e-4;
/// Default cardinality for tables missing from the catalog.
const DEFAULT_CARD: f64 = 1000.0;

/// Estimate the execution cost of a statement against a catalog.
pub fn estimate_cost(stmt: &Statement, catalog: &Catalog) -> CostEstimate {
    match stmt {
        Statement::Select(q) => estimate_query(q, catalog),
        Statement::Dml { query, table, .. } => {
            let mut est = query
                .as_ref()
                .map(|q| estimate_query(q, catalog))
                .unwrap_or_default();
            if let Some(t) = table {
                let card = catalog.get(&t.canonical()).map(|t| t.row_count() as f64);
                est.total_cost += card.unwrap_or(DEFAULT_CARD);
            }
            est
        }
        Statement::Execute { .. } => CostEstimate { total_cost: 100.0, est_rows: 1.0 },
        Statement::Ddl { .. } | Statement::Procedural => {
            CostEstimate { total_cost: 10.0, est_rows: 0.0 }
        }
    }
}

fn estimate_query(q: &Query, catalog: &Catalog) -> CostEstimate {
    // Scan costs and cardinalities of the FROM sources.
    let mut cards: Vec<f64> = Vec::new();
    let mut cost = 0.0;
    for fi in &q.from {
        let (c0, cost0) = factor_card(&fi.factor, catalog);
        cost += cost0;
        let mut card = c0;
        for j in &fi.joins {
            let (cj, costj) = factor_card(&j.factor, catalog);
            cost += costj;
            // Hash join: build + probe.
            cost += card + cj;
            card = (card * cj * SEL_JOIN).max(1.0);
        }
        cards.push(card);
    }
    // Comma-list: assume the optimizer finds equi-joins (it usually can on
    // these workloads), so the product collapses similarly.
    let mut card = cards.first().copied().unwrap_or(1.0);
    for c in cards.iter().skip(1) {
        cost += card + c;
        card = (card * c * SEL_JOIN).max(1.0);
    }

    // WHERE selectivity.
    if let Some(w) = &q.where_clause {
        card *= predicate_selectivity(w, catalog);
    }
    card = card.max(0.0);

    // Grouping/aggregation collapses cardinality.
    if !q.group_by.is_empty() {
        cost += card; // hash aggregation pass
        card = (card * 0.1).max(1.0).min(card.max(1.0));
    } else if has_aggregate(q) {
        cost += card;
        card = 1.0;
    }

    if q.distinct {
        cost += card;
        card *= 0.9;
    }

    if !q.order_by.is_empty() && card > 1.0 {
        cost += card * card.log2().max(1.0);
    }

    if let Some(top) = q.top {
        card = card.min(top as f64);
    }

    // NOTE deliberately absent: scalar-function CPU, correlated-subquery
    // re-execution, string-operation costs. See module docs.
    CostEstimate { total_cost: cost + card, est_rows: card }
}

fn factor_card(factor: &TableFactor, catalog: &Catalog) -> (f64, f64) {
    match factor {
        TableFactor::Table { name, .. } => {
            let card = catalog
                .get(&name.canonical())
                .map(|t| t.row_count() as f64)
                .unwrap_or(DEFAULT_CARD);
            (card, card) // scan cost = cardinality
        }
        TableFactor::Derived { subquery, .. } => {
            let est = estimate_query(subquery, catalog);
            (est.est_rows, est.total_cost)
        }
    }
}

fn predicate_selectivity(e: &Expr, catalog: &Catalog) -> f64 {
    match e {
        Expr::Logical { left, and, right } => {
            let l = predicate_selectivity(left, catalog);
            let r = predicate_selectivity(right, catalog);
            if *and {
                l * r
            } else {
                (l + r - l * r).min(1.0)
            }
        }
        Expr::Unary { op: sqlan_sql::UnaryOp::Not, expr } => {
            1.0 - predicate_selectivity(expr, catalog)
        }
        Expr::Binary { op, .. } if op.is_comparison() => {
            if *op == sqlan_sql::Op::Eq {
                SEL_EQ
            } else if *op == sqlan_sql::Op::Neq {
                1.0 - SEL_EQ
            } else {
                SEL_RANGE
            }
        }
        Expr::Between { .. } => SEL_RANGE * SEL_RANGE * 4.0, // two bounded sides
        Expr::InList { list, .. } => (SEL_EQ * list.len() as f64).min(SEL_IN * 2.0),
        Expr::InSubquery { .. } => SEL_IN,
        Expr::Like { .. } => SEL_LIKE,
        Expr::IsNull { negated, .. } => {
            if *negated {
                0.95
            } else {
                0.05
            }
        }
        Expr::Exists { .. } => 0.5,
        _ => SEL_OTHER,
    }
}

fn has_aggregate(q: &Query) -> bool {
    let mut found = false;
    for item in &q.select {
        sqlan_sql::visit::walk_expr(&item.expr, &mut |e| {
            if let Expr::Function(f) = e {
                if f.aggregate.is_some() {
                    found = true;
                }
            }
        });
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, ColumnSpec, TableSpec};
    use sqlan_sql::parse_script;

    fn cat() -> Catalog {
        Catalog::generate(
            &[
                TableSpec::new("big", 100_000).column("x", ColumnSpec::SeqId),
                TableSpec::new("small", 100).column("x", ColumnSpec::SeqId),
            ],
            1,
        )
    }

    fn est(sql: &str) -> CostEstimate {
        let s = parse_script(sql).unwrap();
        estimate_cost(&s.statements[0], &cat())
    }

    #[test]
    fn bigger_table_costs_more() {
        assert!(est("SELECT * FROM big").total_cost > est("SELECT * FROM small").total_cost);
    }

    #[test]
    fn predicates_reduce_estimated_rows() {
        let all = est("SELECT * FROM big");
        let eq = est("SELECT * FROM big WHERE x = 5");
        let range = est("SELECT * FROM big WHERE x > 5");
        assert!(eq.est_rows < range.est_rows);
        assert!(range.est_rows < all.est_rows);
    }

    #[test]
    fn join_costs_more_than_scan() {
        let scan = est("SELECT * FROM big");
        let join = est("SELECT * FROM big a INNER JOIN small b ON a.x = b.x");
        assert!(join.total_cost > scan.total_cost);
    }

    #[test]
    fn aggregation_collapses_rows() {
        let agg = est("SELECT count(*) FROM big");
        assert_eq!(agg.est_rows, 1.0);
    }

    #[test]
    fn top_caps_rows() {
        let t = est("SELECT TOP 10 x FROM big");
        assert!(t.est_rows <= 10.0);
    }

    #[test]
    fn unknown_table_uses_default_cardinality() {
        let e = est("SELECT * FROM nosuch");
        assert!(e.total_cost >= DEFAULT_CARD);
    }

    #[test]
    fn counter_units_accumulate() {
        let mut a = CostCounter { rows_scanned: 10, ..Default::default() };
        let b = CostCounter { fn_units: 5, ..Default::default() };
        a.add(&b);
        assert_eq!(a.units(), 10 + 5 * 4);
        assert!(a.cpu_seconds() > 0.0);
    }
}
