//! Cost accounting (actual execution) and optimizer-style cost *estimates*.
//!
//! Two deliberately different models live here:
//!
//! * [`CostCounter`] — exact, deterministic accounting charged by the
//!   executor as it runs. This is the ground truth that becomes the CPU
//!   time label of a workload entry.
//! * [`estimate_cost`] — a textbook System-R-style estimator with
//!   uniformity assumptions and **no** model of scalar-function CPU or
//!   nested re-execution. It walks the *optimized plan* (the same
//!   [`QueryPlan`] the executor runs, at the default pass level), so scan
//!   costs, join strategies, and pushed-down selectivities line up with
//!   what will actually execute — but its imprecision is still the point:
//!   the paper's `opt` baseline (linear regression on optimizer estimates)
//!   trails the learned models precisely because analytic cost models
//!   simplify (§1, §6.2.3).

use serde::{Deserialize, Serialize};

use sqlan_sql::{Expr, Query, Statement};

use crate::catalog::Catalog;
use crate::optimizer::Optimizer;
use crate::plan::{FoldStep, JoinStrategy, LogicalPlan, QueryPlan, SelectOp};

/// Exact execution cost accounting, in abstract "cost units".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostCounter {
    /// Rows read from base tables.
    pub rows_scanned: u64,
    /// Weighted scalar-function cost units.
    pub fn_units: u64,
    /// Comparison operations in sorts.
    pub sort_cmps: u64,
    /// Hash-table build/probe operations in joins, grouping, DISTINCT.
    pub hash_ops: u64,
    /// Rows produced in intermediate and final relations.
    pub rows_materialized: u64,
    /// Expression evaluations (per row × per expression node batch).
    pub eval_units: u64,
    /// Subquery executions (correlated subqueries re-execute per row).
    pub subquery_execs: u64,
}

impl CostCounter {
    /// Total abstract cost units.
    pub fn units(&self) -> u64 {
        self.rows_scanned
            .saturating_add(self.fn_units.saturating_mul(4))
            .saturating_add(self.sort_cmps)
            .saturating_add(self.hash_ops.saturating_mul(2))
            .saturating_add(self.rows_materialized)
            .saturating_add(self.eval_units)
            .saturating_add(self.subquery_execs.saturating_mul(16))
    }

    /// Deterministic CPU seconds: one unit = 10 µs, calibrated so that a
    /// point-lookup scan over a laptop-scale table costs tens of
    /// milliseconds while join-, function- and subquery-heavy queries
    /// reach seconds to hours — reproducing the skew of the SDSS `busy`
    /// column (Figure 6d: mode/median ≈ 0, extreme heavy tail).
    pub fn cpu_seconds(&self) -> f64 {
        self.units() as f64 * 1e-5
    }

    pub fn add(&mut self, other: &CostCounter) {
        self.rows_scanned += other.rows_scanned;
        self.fn_units += other.fn_units;
        self.sort_cmps += other.sort_cmps;
        self.hash_ops += other.hash_ops;
        self.rows_materialized += other.rows_materialized;
        self.eval_units += other.eval_units;
        self.subquery_execs += other.subquery_execs;
    }
}

/// Optimizer cost estimate for the `opt` baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Estimated total cost units (I/O-dominant System-R flavour).
    pub total_cost: f64,
    /// Estimated output cardinality.
    pub est_rows: f64,
}

impl CostEstimate {
    /// Feature vector for the `opt` linear-regression baseline.
    pub fn features(&self) -> [f64; 2] {
        [(1.0 + self.total_cost).ln(), (1.0 + self.est_rows).ln()]
    }
}

/// Default selectivities, straight out of the System-R paper's tradition.
const SEL_EQ: f64 = 0.05;
const SEL_RANGE: f64 = 0.30;
const SEL_LIKE: f64 = 0.25;
const SEL_IN: f64 = 0.20;
const SEL_OTHER: f64 = 0.33;
/// Join selectivity for an equi-join: 1 / max(card) approximated by a
/// constant over the product.
const SEL_JOIN: f64 = 1e-4;
/// Default cardinality for tables missing from the catalog.
const DEFAULT_CARD: f64 = 1000.0;

/// Estimate the execution cost of a statement against a catalog, at the
/// default optimizer level. Prefer [`estimate_cost_with`] when the
/// executing database runs a non-default pass set.
pub fn estimate_cost(stmt: &Statement, catalog: &Catalog) -> CostEstimate {
    estimate_cost_with(stmt, catalog, &Optimizer::default())
}

/// Estimate the execution cost of a statement over the plan the given
/// optimizer would produce — the same plan the executor will run.
pub fn estimate_cost_with(
    stmt: &Statement,
    catalog: &Catalog,
    optimizer: &Optimizer,
) -> CostEstimate {
    match stmt {
        Statement::Select(q) => estimate_query(q, catalog, optimizer),
        Statement::Dml { query, table, .. } => {
            let mut est = query
                .as_ref()
                .map(|q| estimate_query(q, catalog, optimizer))
                .unwrap_or_default();
            if let Some(t) = table {
                let card = catalog.get(&t.canonical()).map(|t| t.row_count() as f64);
                est.total_cost += card.unwrap_or(DEFAULT_CARD);
            }
            est
        }
        Statement::Execute { .. } => CostEstimate {
            total_cost: 100.0,
            est_rows: 1.0,
        },
        Statement::Ddl { .. } | Statement::Procedural => CostEstimate {
            total_cost: 10.0,
            est_rows: 0.0,
        },
    }
}

fn estimate_query(q: &Query, catalog: &Catalog, optimizer: &Optimizer) -> CostEstimate {
    let plan = optimizer.plan(q, catalog);
    estimate_plan(&plan, catalog)
}

/// Estimate a lowered/optimized plan. Public so experiments can compare
/// estimates across [`crate::OptLevel`]s.
pub fn estimate_plan(plan: &QueryPlan, catalog: &Catalog) -> CostEstimate {
    // Per-item cardinalities and scan/join costs.
    let mut cost = 0.0;
    let mut cards: Vec<f64> = Vec::new();
    for item in &plan.items {
        let (card, item_cost) = estimate_node(item, catalog);
        cost += item_cost;
        cards.push(card);
    }

    // Pushed single-item predicates narrow their item before the folds.
    for (i, pred) in &plan.pushed {
        if let Some(card) = cards.get_mut(*i) {
            *card *= predicate_selectivity(pred);
        }
    }

    // Fold the comma list with the planned strategies.
    let mut card = cards.first().copied().unwrap_or(1.0);
    for (k, c) in cards.iter().enumerate().skip(1) {
        match plan.folds.get(k - 1) {
            Some(FoldStep::Hash { .. }) => {
                // Hash join: build + probe.
                cost += card + c;
                card = (card * c * SEL_JOIN).max(1.0);
            }
            // Cartesian product: every pair is visited.
            _ => {
                cost += card * c.max(1.0);
                card *= c.max(1.0);
            }
        }
    }

    // Residual selectivity.
    for pred in &plan.residual {
        card *= predicate_selectivity(pred);
    }
    card = card.max(0.0);

    // Grouping/aggregation collapses cardinality.
    match &plan.select {
        SelectOp::Aggregate { group_by, .. } if !group_by.is_empty() => {
            cost += card; // hash aggregation pass
            card = (card * 0.1).max(1.0).min(card.max(1.0));
        }
        SelectOp::Aggregate { .. } => {
            cost += card;
            card = 1.0;
        }
        SelectOp::Project { .. } => {}
    }

    if plan.distinct {
        cost += card;
        card *= 0.9;
    }

    if !plan.order_by.is_empty() && card > 1.0 {
        cost += card * card.log2().max(1.0);
    }

    if let Some(top) = plan.top {
        card = card.min(top as f64);
    }

    // NOTE deliberately absent: scalar-function CPU, correlated-subquery
    // re-execution, string-operation costs. See module docs.
    CostEstimate {
        total_cost: cost + card,
        est_rows: card,
    }
}

/// (cardinality, cost) of one FROM-item operator tree.
fn estimate_node(node: &LogicalPlan, catalog: &Catalog) -> (f64, f64) {
    match node {
        LogicalPlan::Scan { table, .. } => {
            let card = catalog
                .get(&table.canonical())
                .map(|t| t.row_count() as f64)
                .unwrap_or(DEFAULT_CARD);
            (card, card) // scan cost = cardinality
        }
        LogicalPlan::Subquery { plan, .. } => {
            let est = estimate_plan(plan, catalog);
            (est.est_rows, est.total_cost)
        }
        LogicalPlan::Filter { input, predicate } => {
            let (card, cost) = estimate_node(input, catalog);
            (card * predicate_selectivity(predicate), cost + card)
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            strategy,
            ..
        } => {
            let (lc, lcost) = estimate_node(left, catalog);
            let (rc, rcost) = estimate_node(right, catalog);
            let mut cost = lcost + rcost;
            let card = match strategy {
                JoinStrategy::Hash { .. } => {
                    cost += lc + rc; // build + probe
                    (lc * rc * SEL_JOIN).max(1.0)
                }
                JoinStrategy::NestedLoop => {
                    cost += lc * rc.max(1.0); // every pair visited
                    match on {
                        Some(cond) => (lc * rc * predicate_selectivity(cond)).max(1.0),
                        None => lc * rc.max(1.0),
                    }
                }
            };
            (card, cost)
        }
    }
}

fn predicate_selectivity(e: &Expr) -> f64 {
    match e {
        Expr::Logical { left, and, right } => {
            let l = predicate_selectivity(left);
            let r = predicate_selectivity(right);
            if *and {
                l * r
            } else {
                (l + r - l * r).min(1.0)
            }
        }
        Expr::Unary {
            op: sqlan_sql::UnaryOp::Not,
            expr,
        } => 1.0 - predicate_selectivity(expr),
        Expr::Binary { op, .. } if op.is_comparison() => {
            if *op == sqlan_sql::Op::Eq {
                SEL_EQ
            } else if *op == sqlan_sql::Op::Neq {
                1.0 - SEL_EQ
            } else {
                SEL_RANGE
            }
        }
        Expr::Between { .. } => SEL_RANGE * SEL_RANGE * 4.0, // two bounded sides
        Expr::InList { list, .. } => (SEL_EQ * list.len() as f64).min(SEL_IN * 2.0),
        Expr::InSubquery { .. } => SEL_IN,
        Expr::Like { .. } => SEL_LIKE,
        Expr::IsNull { negated, .. } => {
            if *negated {
                0.95
            } else {
                0.05
            }
        }
        Expr::Exists { .. } => 0.5,
        _ => SEL_OTHER,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, ColumnSpec, TableSpec};
    use sqlan_sql::parse_script;

    fn cat() -> Catalog {
        Catalog::generate(
            &[
                TableSpec::new("big", 100_000).column("x", ColumnSpec::SeqId),
                TableSpec::new("small", 100).column("x", ColumnSpec::SeqId),
            ],
            1,
        )
    }

    fn est(sql: &str) -> CostEstimate {
        let s = parse_script(sql).unwrap();
        estimate_cost(&s.statements[0], &cat())
    }

    #[test]
    fn bigger_table_costs_more() {
        assert!(est("SELECT * FROM big").total_cost > est("SELECT * FROM small").total_cost);
    }

    #[test]
    fn predicates_reduce_estimated_rows() {
        let all = est("SELECT * FROM big");
        let eq = est("SELECT * FROM big WHERE x = 5");
        let range = est("SELECT * FROM big WHERE x > 5");
        assert!(eq.est_rows < range.est_rows);
        assert!(range.est_rows < all.est_rows);
    }

    #[test]
    fn join_costs_more_than_scan() {
        let scan = est("SELECT * FROM big");
        let join = est("SELECT * FROM big a INNER JOIN small b ON a.x = b.x");
        assert!(join.total_cost > scan.total_cost);
    }

    #[test]
    fn aggregation_collapses_rows() {
        let agg = est("SELECT count(*) FROM big");
        assert_eq!(agg.est_rows, 1.0);
    }

    #[test]
    fn top_caps_rows() {
        let t = est("SELECT TOP 10 x FROM big");
        assert!(t.est_rows <= 10.0);
    }

    #[test]
    fn unknown_table_uses_default_cardinality() {
        let e = est("SELECT * FROM nosuch");
        assert!(e.total_cost >= DEFAULT_CARD);
    }

    #[test]
    fn estimate_tracks_the_configured_optimizer() {
        // A cross-product plan (no passes) must cost more than the
        // hash-join plan the default passes produce.
        let s = parse_script("SELECT * FROM big a, small b WHERE a.x = b.x").unwrap();
        let default = estimate_cost(&s.statements[0], &cat());
        let naive = estimate_cost_with(
            &s.statements[0],
            &cat(),
            &Optimizer::with_level(crate::OptLevel::None),
        );
        assert!(
            naive.total_cost > default.total_cost * 10.0,
            "naive {} vs default {}",
            naive.total_cost,
            default.total_cost
        );
    }

    #[test]
    fn counter_units_accumulate() {
        let mut a = CostCounter {
            rows_scanned: 10,
            ..Default::default()
        };
        let b = CostCounter {
            fn_units: 5,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.units(), 10 + 5 * 4);
        assert!(a.cpu_seconds() > 0.0);
    }
}
