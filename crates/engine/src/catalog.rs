//! Catalog: table schemas and columnar data, plus seeded data generation.
//!
//! Tables are generated deterministically from a seed so that every label
//! in a synthesized workload is reproducible. Column generators cover the
//! distributions that drive realistic selectivities: uniform sky
//! coordinates, categorical type codes, bit-flag masks, heavy-tailed
//! magnitudes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use crate::value::Value;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    Int,
    Float,
    Str,
}

/// Schema of one column.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColType,
}

/// Columnar storage for one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVec {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
}

impl ColumnVec {
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int(v) => v.len(),
            ColumnVec::Float(v) => v.len(),
            ColumnVec::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row` (must be in bounds).
    pub fn get(&self, row: usize) -> Value {
        match self {
            ColumnVec::Int(v) => Value::Int(v[row]),
            ColumnVec::Float(v) => Value::Float(v[row]),
            ColumnVec::Str(v) => Value::Str(v[row].clone()),
        }
    }

    pub fn ty(&self) -> ColType {
        match self {
            ColumnVec::Int(_) => ColType::Int,
            ColumnVec::Float(_) => ColType::Float,
            ColumnVec::Str(_) => ColType::Str,
        }
    }
}

/// One table: schema + column-oriented rows.
///
/// Columns are `Arc`-shared so the columnar engine's scans can reference
/// base data without copying it (the row engine still materializes rows).
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    pub data: Vec<Arc<ColumnVec>>,
}

impl Table {
    pub fn row_count(&self) -> usize {
        self.data.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// How to generate values for one column.
#[derive(Debug, Clone)]
pub enum ColumnSpec {
    /// 0, 1, 2, ... — primary-key style.
    SeqId,
    /// Large pseudo-random ids in hex-literal range (SDSS objids).
    ObjId,
    /// Uniform float in `[lo, hi)`.
    Uniform(f64, f64),
    /// Gaussian with `(mean, std)` via Box–Muller.
    Normal(f64, f64),
    /// Uniform integer in `[lo, hi]`.
    IntUniform(i64, i64),
    /// Zipf-ish categorical codes `0..n` with probability ∝ 1/(k+1).
    Categorical(u32),
    /// Random bitmask with `bits` independently-set bits (p = 0.15 each).
    Bitmask(u32),
    /// A string drawn from the given set, uniformly.
    StrChoice(&'static [&'static str]),
    /// `prefix` + sequential number.
    TaggedSeq(&'static str),
}

impl ColumnSpec {
    pub fn ty(&self) -> ColType {
        match self {
            ColumnSpec::SeqId
            | ColumnSpec::ObjId
            | ColumnSpec::IntUniform(..)
            | ColumnSpec::Categorical(_)
            | ColumnSpec::Bitmask(_) => ColType::Int,
            ColumnSpec::Uniform(..) | ColumnSpec::Normal(..) => ColType::Float,
            ColumnSpec::StrChoice(_) | ColumnSpec::TaggedSeq(_) => ColType::Str,
        }
    }

    fn generate(&self, rows: usize, rng: &mut StdRng) -> ColumnVec {
        match self {
            ColumnSpec::SeqId => ColumnVec::Int((0..rows as i64).collect()),
            ColumnSpec::ObjId => ColumnVec::Int(
                (0..rows)
                    .map(|_| rng.gen_range(1i64 << 40..1i64 << 56))
                    .collect(),
            ),
            ColumnSpec::Uniform(lo, hi) => {
                ColumnVec::Float((0..rows).map(|_| rng.gen_range(*lo..*hi)).collect())
            }
            ColumnSpec::Normal(mean, std) => ColumnVec::Float(
                (0..rows)
                    .map(|_| {
                        // Box–Muller transform.
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        mean + std * z
                    })
                    .collect(),
            ),
            ColumnSpec::IntUniform(lo, hi) => {
                ColumnVec::Int((0..rows).map(|_| rng.gen_range(*lo..=*hi)).collect())
            }
            ColumnSpec::Categorical(n) => {
                let n = (*n).max(1);
                // Zipf via inverse-CDF over precomputed cumulative weights.
                let weights: Vec<f64> = (0..n).map(|k| 1.0 / (k as f64 + 1.0)).collect();
                let total: f64 = weights.iter().sum();
                ColumnVec::Int(
                    (0..rows)
                        .map(|_| {
                            let mut x = rng.gen_range(0.0..total);
                            for (k, w) in weights.iter().enumerate() {
                                if x < *w {
                                    return k as i64;
                                }
                                x -= w;
                            }
                            (n - 1) as i64
                        })
                        .collect(),
                )
            }
            ColumnSpec::Bitmask(bits) => ColumnVec::Int(
                (0..rows)
                    .map(|_| {
                        let mut m = 0i64;
                        for b in 0..*bits {
                            if rng.gen_bool(0.15) {
                                m |= 1 << b;
                            }
                        }
                        m
                    })
                    .collect(),
            ),
            ColumnSpec::StrChoice(choices) => ColumnVec::Str(
                (0..rows)
                    .map(|_| choices[rng.gen_range(0..choices.len())].to_string())
                    .collect(),
            ),
            ColumnSpec::TaggedSeq(prefix) => {
                ColumnVec::Str((0..rows).map(|i| format!("{prefix}{i}")).collect())
            }
        }
    }
}

/// Declarative description of one table for the catalog builder.
#[derive(Debug, Clone)]
pub struct TableSpec {
    pub name: String,
    pub rows: usize,
    pub columns: Vec<(String, ColumnSpec)>,
}

impl TableSpec {
    pub fn new(name: impl Into<String>, rows: usize) -> Self {
        TableSpec {
            name: name.into(),
            rows,
            columns: Vec::new(),
        }
    }

    pub fn column(mut self, name: impl Into<String>, spec: ColumnSpec) -> Self {
        self.columns.push((name.into(), spec));
        self
    }
}

/// A database instance: named tables plus a per-instance identity.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    /// Tables paired with their precomputed ASCII-lowercased lookup key.
    /// A flat vector beats a hash map here: catalogs hold at most a few
    /// dozen tables, and scanning with `eq_ignore_ascii_case` against the
    /// prebuilt key makes every lookup allocation-free (the old map
    /// lowercased the probe name on each call).
    tables: Vec<(String, Table)>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Build a catalog from specs, deterministically from `seed`.
    pub fn generate(specs: &[TableSpec], seed: u64) -> Self {
        let mut cat = Catalog::new();
        for (i, spec) in specs.iter().enumerate() {
            // Stable per-table seed: changing one table doesn't reshuffle others.
            let mut rng =
                StdRng::seed_from_u64(seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut columns = Vec::with_capacity(spec.columns.len());
            let mut data = Vec::with_capacity(spec.columns.len());
            for (name, cspec) in &spec.columns {
                columns.push(ColumnDef {
                    name: name.clone(),
                    ty: cspec.ty(),
                });
                data.push(Arc::new(cspec.generate(spec.rows, &mut rng)));
            }
            cat.insert(Table {
                name: spec.name.clone(),
                columns,
                data,
            });
        }
        cat
    }

    pub fn insert(&mut self, table: Table) {
        let key = table.name.to_ascii_lowercase();
        match self.tables.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = table,
            None => self.tables.push((key, table)),
        }
    }

    /// Case-insensitive lookup; qualified names resolve by their base name
    /// (SDSS queries qualify with `dbo.` or MyDB paths). Allocation-free:
    /// the stored key is already lowercase, so a byte-wise
    /// case-insensitive comparison suffices.
    pub fn get(&self, name: &str) -> Option<&Table> {
        let base = name.rsplit('.').next().unwrap_or(name);
        self.tables
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(base))
            .map(|(_, t)| t)
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.iter().map(|(_, t)| t.name.as_str())
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_specs() -> Vec<TableSpec> {
        vec![TableSpec::new("T", 100)
            .column("id", ColumnSpec::SeqId)
            .column("ra", ColumnSpec::Uniform(0.0, 360.0))
            .column("type", ColumnSpec::Categorical(6))
            .column("flags", ColumnSpec::Bitmask(20))
            .column("name", ColumnSpec::TaggedSeq("obj"))]
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Catalog::generate(&demo_specs(), 42);
        let b = Catalog::generate(&demo_specs(), 42);
        let (ta, tb) = (a.get("t").unwrap(), b.get("T").unwrap());
        assert_eq!(ta.row_count(), 100);
        for c in 0..ta.data.len() {
            for r in 0..100 {
                assert_eq!(ta.data[c].get(r), tb.data[c].get(r));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Catalog::generate(&demo_specs(), 1);
        let b = Catalog::generate(&demo_specs(), 2);
        let (ta, tb) = (a.get("t").unwrap(), b.get("t").unwrap());
        let same = (0..100).all(|r| ta.data[1].get(r) == tb.data[1].get(r));
        assert!(!same);
    }

    #[test]
    fn qualified_lookup_resolves_base_name() {
        let cat = Catalog::generate(&demo_specs(), 7);
        assert!(cat.get("dbo.T").is_some());
        assert!(cat.get("SDSSSQL010.MYDB_1.dbo.T").is_some());
        assert!(cat.get("nosuch").is_none());
    }

    #[test]
    fn uniform_values_in_range() {
        let cat = Catalog::generate(&demo_specs(), 9);
        let t = cat.get("t").unwrap();
        for r in 0..t.row_count() {
            if let Value::Float(ra) = t.data[1].get(r) {
                assert!((0.0..360.0).contains(&ra));
            } else {
                panic!("ra must be float");
            }
        }
    }

    #[test]
    fn categorical_is_skewed_toward_small_codes() {
        let spec = vec![TableSpec::new("c", 5000).column("k", ColumnSpec::Categorical(8))];
        let cat = Catalog::generate(&spec, 3);
        let t = cat.get("c").unwrap();
        let mut counts = [0u32; 8];
        for r in 0..t.row_count() {
            counts[t.data[0].get(r).as_i64().unwrap() as usize] += 1;
        }
        assert!(counts[0] > counts[7], "Zipf skew expected: {counts:?}");
    }
}
