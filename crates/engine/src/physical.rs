//! Physical operators: execution of an optimized [`QueryPlan`] against
//! the catalog.
//!
//! Every operator charges the [`crate::CostCounter`] exactly as the
//! original monolithic executor did — rows scanned, hash build/probe
//! operations, per-row predicate evaluations, sort comparisons, rows
//! materialized. Those charges (and even their *order*, which becomes
//! observable when a query aborts on a resource budget) are workload
//! labels, so this module treats them as part of each operator's contract,
//! not an implementation detail. The plan's phase structure (items →
//! pushed filters → folds → residual → select → distinct → sort → limit)
//! is executed literally.

use std::collections::HashMap;

use sqlan_sql::{Aggregate, Expr, JoinKind, OrderByItem, QualifiedName, SelectItem, UnaryOp};

use crate::error::RuntimeError;
use crate::exec::{ExecCtx, Scope};
use crate::plan::{
    projection_plan, FoldStep, JoinStrategy, LogicalPlan, ProjStep, QueryPlan, SelectOp,
};
use crate::relation::{ColRef, Relation};
use crate::value::Value;

impl ExecCtx<'_> {
    /// Execute a full query plan. `outer` carries enclosing row scopes for
    /// correlated subqueries; the returned flag reports whether any outer
    /// scope was actually consulted (the uncorrelated-subquery cache
    /// depends on it).
    pub(crate) fn exec_plan(
        &mut self,
        plan: &QueryPlan,
        outer: &[Scope<'_>],
    ) -> Result<(Relation, bool), RuntimeError> {
        let mut used_outer = false;

        // ---- FROM items -------------------------------------------------
        let mut item_rels: Vec<Relation> = Vec::with_capacity(plan.items.len());
        for item in &plan.items {
            let rel = self.exec_node(item, outer, &mut used_outer)?;
            item_rels.push(rel);
        }

        // ---- pushed single-item filters, in original conjunct order ----
        for (i, pred) in &plan.pushed {
            let rel = std::mem::take(&mut item_rels[*i]);
            item_rels[*i] = self.filter(rel, pred, outer, &mut used_outer)?;
        }

        // ---- fold the comma-list items ---------------------------------
        let mut source = match item_rels.len() {
            0 => Relation::unit(),
            _ => {
                let mut acc = item_rels.remove(0);
                for (k, next) in item_rels.into_iter().enumerate() {
                    acc = self.fold(acc, next, plan.folds.get(k), outer, &mut used_outer)?;
                }
                acc
            }
        };

        // ---- residual WHERE ---------------------------------------------
        for pred in &plan.residual {
            source = self.filter(source, pred, outer, &mut used_outer)?;
        }

        // ---- projection / aggregation ----------------------------------
        let is_agg = matches!(plan.select, SelectOp::Aggregate { .. });
        let mut projected = match &plan.select {
            SelectOp::Aggregate {
                items,
                group_by,
                having,
            } => self.aggregate(
                items,
                group_by,
                having.as_ref(),
                &source,
                outer,
                &mut used_outer,
            )?,
            SelectOp::Project { items } => self.project(items, &source, outer, &mut used_outer)?,
        };

        // ---- DISTINCT ----------------------------------------------------
        if plan.distinct {
            projected = self.distinct(projected)?;
        }

        // ---- ORDER BY (on projected output, falling back to source) ----
        if !plan.order_by.is_empty() && !is_agg {
            projected =
                self.order_by(&plan.order_by, projected, &source, outer, &mut used_outer)?;
        } else if !plan.order_by.is_empty() {
            // Aggregate outputs sort on their projected columns only.
            projected = self.order_by(
                &plan.order_by,
                projected,
                &Relation::default(),
                outer,
                &mut used_outer,
            )?;
        }

        // ---- TOP ----------------------------------------------------------
        if let Some(n) = plan.top {
            projected.rows.truncate(n as usize);
        }

        Ok((projected, used_outer))
    }

    // ================= FROM-item operator trees =================

    fn exec_node(
        &mut self,
        node: &LogicalPlan,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        match node {
            LogicalPlan::Scan {
                table,
                alias,
                columns,
            } => self.scan(table, alias.as_deref(), columns.as_deref()),
            LogicalPlan::Subquery { plan, alias } => {
                let (mut rel, uo) = self.exec_plan(plan, outer)?;
                *used_outer |= uo;
                // Rebind all columns under the derived alias.
                let qualifier = alias.as_ref().map(|a| a.to_ascii_lowercase());
                for c in &mut rel.cols {
                    c.qualifier = qualifier.clone();
                    c.table = None;
                }
                Ok(rel)
            }
            LogicalPlan::Filter { input, predicate } => {
                let rel = self.exec_node(input, outer, used_outer)?;
                self.filter(rel, predicate, outer, used_outer)
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
                strategy,
            } => {
                let l = self.exec_node(left, outer, used_outer)?;
                let r = self.exec_node(right, outer, used_outer)?;
                let cols: Vec<ColRef> = l.cols.iter().chain(r.cols.iter()).cloned().collect();
                match (strategy, on) {
                    (
                        JoinStrategy::Hash {
                            left_key,
                            right_key,
                        },
                        Some(cond),
                    ) => self.hash_join(
                        l, r, cols, left_key, right_key, cond, *kind, outer, used_outer,
                    ),
                    _ => self.nested_loop_join(l, r, cols, *kind, on.as_ref(), outer, used_outer),
                }
            }
        }
    }

    fn scan(
        &mut self,
        table: &QualifiedName,
        alias: Option<&str>,
        columns: Option<&[usize]>,
    ) -> Result<Relation, RuntimeError> {
        let canonical = table.canonical();
        let table = self
            .catalog
            .get(&canonical)
            .ok_or_else(|| RuntimeError::UnknownTable(canonical.clone()))?;
        let n = table.row_count();
        self.counter.rows_scanned += n as u64;
        self.check_budget(n)?;
        let qualifier = alias.map(|a| a.to_ascii_lowercase());
        let tname = table.name.to_ascii_lowercase();
        let keep: Vec<usize> = match columns {
            None => (0..table.columns.len()).collect(),
            Some(keep) => keep.to_vec(),
        };
        let cols = keep
            .iter()
            .filter_map(|&i| table.columns.get(i))
            .map(|c| ColRef {
                qualifier: qualifier.clone(),
                table: Some(tname.clone()),
                name: c.name.clone(),
            })
            .collect();
        let mut rows = Vec::with_capacity(n);
        for r in 0..n {
            rows.push(
                keep.iter()
                    .filter_map(|&i| table.data.get(i))
                    .map(|c| c.get(r))
                    .collect(),
            );
        }
        Ok(Relation { cols, rows })
    }

    /// Combine two comma-list items according to the planned fold step
    /// (inner-join semantics, which is what comma joins mean).
    fn fold(
        &mut self,
        left: Relation,
        right: Relation,
        step: Option<&FoldStep>,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        let cols: Vec<ColRef> = left.cols.iter().chain(right.cols.iter()).cloned().collect();
        match step {
            Some(FoldStep::Hash {
                left_key,
                right_key,
                condition,
            }) => self.hash_join(
                left,
                right,
                cols,
                left_key,
                right_key,
                condition,
                JoinKind::Inner,
                outer,
                used_outer,
            ),
            // Pure cartesian product.
            _ => self.nested_loop_join(left, right, cols, JoinKind::Cross, None, outer, used_outer),
        }
    }

    /// Nested-loop join (also handles CROSS JOIN and non-equi ON).
    #[allow(clippy::too_many_arguments)]
    fn nested_loop_join(
        &mut self,
        left: Relation,
        right: Relation,
        cols: Vec<ColRef>,
        kind: JoinKind,
        on: Option<&Expr>,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        let est = left.len().saturating_mul(right.len().max(1));
        self.check_budget(est)?;
        let mut rows = Vec::new();
        let mut right_matched = vec![false; right.len()];
        let tmp_cols = Relation {
            cols: cols.clone(),
            rows: Vec::new(),
        };
        for lrow in &left.rows {
            let mut matched = false;
            for (ri, rrow) in right.rows.iter().enumerate() {
                self.counter.eval_units += 1;
                let combined: Vec<Value> = lrow.iter().chain(rrow.iter()).cloned().collect();
                let keep = match on {
                    None => true,
                    Some(cond) => self
                        .eval_with_row(cond, &tmp_cols, &combined, outer, used_outer)?
                        .is_truthy(),
                };
                if keep {
                    matched = true;
                    right_matched[ri] = true;
                    rows.push(combined);
                    if rows.len() > self.limits.max_rows {
                        return Err(RuntimeError::ResourceExhausted);
                    }
                }
            }
            if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                let mut padded = lrow.clone();
                padded.extend(std::iter::repeat_n(Value::Null, right.width()));
                rows.push(padded);
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, rrow) in right.rows.iter().enumerate() {
                if !right_matched[ri] {
                    let mut padded: Vec<Value> =
                        std::iter::repeat_n(Value::Null, left.width()).collect();
                    padded.extend(rrow.iter().cloned());
                    rows.push(padded);
                }
            }
        }
        self.counter.rows_materialized += rows.len() as u64;
        Ok(Relation { cols, rows })
    }

    /// Hash join on single-key equality, preserving outer-join semantics.
    /// The full `ON`/fold condition is re-checked on each hash candidate
    /// (it may carry residual conjuncts beyond the hash key).
    #[allow(clippy::too_many_arguments)]
    fn hash_join(
        &mut self,
        left: Relation,
        right: Relation,
        cols: Vec<ColRef>,
        lk: &Expr,
        rk: &Expr,
        full_cond: &Expr,
        kind: JoinKind,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        // Build on the right side.
        let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
        for (ri, rrow) in right.rows.iter().enumerate() {
            let v = self.eval_with_row(rk, &right, rrow, outer, used_outer)?;
            if v.is_null() {
                continue;
            }
            let mut key = Vec::new();
            v.group_key(&mut key);
            table.entry(key).or_default().push(ri);
            self.counter.hash_ops += 1;
        }

        let mut rows = Vec::new();
        let mut right_matched = vec![false; right.len()];
        let tmp_cols = Relation {
            cols: cols.clone(),
            rows: Vec::new(),
        };
        for lrow in &left.rows {
            self.counter.hash_ops += 1;
            let v = self.eval_with_row(lk, &left, lrow, outer, used_outer)?;
            let mut matched = false;
            if !v.is_null() {
                let mut key = Vec::new();
                v.group_key(&mut key);
                if let Some(cands) = table.get(&key) {
                    for &ri in cands {
                        let combined: Vec<Value> =
                            lrow.iter().chain(right.rows[ri].iter()).cloned().collect();
                        self.counter.eval_units += 1;
                        if self
                            .eval_with_row(full_cond, &tmp_cols, &combined, outer, used_outer)?
                            .is_truthy()
                        {
                            matched = true;
                            right_matched[ri] = true;
                            rows.push(combined);
                            if rows.len() > self.limits.max_rows {
                                return Err(RuntimeError::ResourceExhausted);
                            }
                        }
                    }
                }
            }
            if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                let mut padded = lrow.clone();
                padded.extend(std::iter::repeat_n(Value::Null, right.width()));
                rows.push(padded);
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, rrow) in right.rows.iter().enumerate() {
                if !right_matched[ri] {
                    let mut padded: Vec<Value> =
                        std::iter::repeat_n(Value::Null, left.width()).collect();
                    padded.extend(rrow.iter().cloned());
                    rows.push(padded);
                }
            }
        }
        self.counter.rows_materialized += rows.len() as u64;
        Ok(Relation { cols, rows })
    }

    // ================= row pipeline operators =================

    fn filter(
        &mut self,
        rel: Relation,
        pred: &Expr,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        let mut rows = Vec::new();
        self.counter.eval_units += rel.rows.len() as u64;
        // Periodic budget check so runaway predicates with functions abort.
        for (i, row) in rel.rows.iter().enumerate() {
            if i % 4096 == 0 {
                self.check_budget(0)?;
            }
            let v = self.eval_with_row(pred, &rel, row, outer, used_outer)?;
            if v.is_truthy() {
                rows.push(row.clone());
            }
        }
        self.counter.rows_materialized += rows.len() as u64;
        Ok(Relation {
            cols: rel.cols,
            rows,
        })
    }

    fn project(
        &mut self,
        select: &[SelectItem],
        source: &Relation,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        let (cols, plan) = projection_plan(select, source)?;
        let mut rows = Vec::with_capacity(source.len());
        self.counter.eval_units += (source.len() * plan.len().max(1)) as u64;
        for (i, row) in source.rows.iter().enumerate() {
            if i % 4096 == 0 {
                self.check_budget(0)?;
            }
            let mut out = Vec::with_capacity(cols.len());
            for p in &plan {
                match p {
                    ProjStep::Passthrough(idx) => out.push(row[*idx].clone()),
                    ProjStep::Eval(e) => {
                        out.push(self.eval_with_row(e, source, row, outer, used_outer)?)
                    }
                }
            }
            rows.push(out);
        }
        self.counter.rows_materialized += rows.len() as u64;
        Ok(Relation { cols, rows })
    }

    fn aggregate(
        &mut self,
        select: &[SelectItem],
        group_by: &[Expr],
        having: Option<&Expr>,
        source: &Relation,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        // Group rows by the GROUP BY key (single group if absent).
        let mut groups: Vec<Vec<usize>> = Vec::new();
        if group_by.is_empty() {
            groups.push((0..source.len()).collect());
        } else {
            let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
            for (ri, row) in source.rows.iter().enumerate() {
                let mut key = Vec::new();
                for g in group_by {
                    let v = self.eval_with_row(g, source, row, outer, used_outer)?;
                    v.group_key(&mut key);
                }
                self.counter.hash_ops += 1;
                let gid = *index.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gid].push(ri);
            }
        }

        // HAVING filters groups.
        let mut kept: Vec<&Vec<usize>> = Vec::new();
        for g in &groups {
            if group_by.is_empty() || !g.is_empty() {
                let keep = match having {
                    None => true,
                    Some(h) => self
                        .eval_in_group(h, source, g, outer, used_outer)?
                        .is_truthy(),
                };
                if keep {
                    kept.push(g);
                }
            }
        }
        // An empty input with no GROUP BY still yields one aggregate row
        // (COUNT(*) = 0), which `groups` already encodes.

        let cols = crate::plan::aggregate_output_cols(select);
        let mut rows = Vec::with_capacity(kept.len());
        for g in kept {
            self.check_budget(0)?;
            let mut out = Vec::with_capacity(select.len());
            for item in select {
                out.push(self.eval_in_group(&item.expr, source, g, outer, used_outer)?);
            }
            rows.push(out);
        }

        let rel = Relation { cols, rows };
        self.counter.rows_materialized += rel.rows.len() as u64;
        Ok(rel)
    }

    /// Evaluate an expression in aggregate context: aggregate calls reduce
    /// over the group's rows; bare columns take their value from the first
    /// row of the group (lenient T-SQL-ish behaviour).
    fn eval_in_group(
        &mut self,
        expr: &Expr,
        source: &Relation,
        group: &[usize],
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Value, RuntimeError> {
        match expr {
            Expr::Function(f) if f.aggregate.is_some() => {
                let agg = f.aggregate.unwrap();
                self.counter.eval_units += group.len() as u64;
                match agg {
                    Aggregate::Count => {
                        if f.args.is_empty() || matches!(f.args.first(), Some(Expr::Wildcard(_))) {
                            return Ok(Value::Int(group.len() as i64));
                        }
                        let mut n = 0i64;
                        let mut seen = std::collections::HashSet::new();
                        for &ri in group {
                            let v = self.eval_with_row(
                                &f.args[0],
                                source,
                                &source.rows[ri],
                                outer,
                                used_outer,
                            )?;
                            if !v.is_null() {
                                if f.distinct {
                                    let mut k = Vec::new();
                                    v.group_key(&mut k);
                                    if seen.insert(k) {
                                        n += 1;
                                    }
                                } else {
                                    n += 1;
                                }
                            }
                        }
                        Ok(Value::Int(n))
                    }
                    Aggregate::Min | Aggregate::Max | Aggregate::Sum | Aggregate::Avg => {
                        let arg = f.args.first().ok_or_else(|| {
                            RuntimeError::TypeError(format!("{}() needs an argument", agg.name()))
                        })?;
                        let mut acc: Option<Value> = None;
                        let mut sum = 0.0f64;
                        let mut all_int = true;
                        let mut n = 0u64;
                        for &ri in group {
                            let v = self.eval_with_row(
                                arg,
                                source,
                                &source.rows[ri],
                                outer,
                                used_outer,
                            )?;
                            if v.is_null() {
                                continue;
                            }
                            n += 1;
                            match agg {
                                Aggregate::Min => {
                                    acc = Some(match acc {
                                        None => v,
                                        Some(a) => {
                                            if v.total_cmp(&a).is_lt() {
                                                v
                                            } else {
                                                a
                                            }
                                        }
                                    });
                                }
                                Aggregate::Max => {
                                    acc = Some(match acc {
                                        None => v,
                                        Some(a) => {
                                            if v.total_cmp(&a).is_gt() {
                                                v
                                            } else {
                                                a
                                            }
                                        }
                                    });
                                }
                                _ => {
                                    if !matches!(v, Value::Int(_)) {
                                        all_int = false;
                                    }
                                    sum += v.as_f64().ok_or_else(|| {
                                        RuntimeError::TypeError(format!(
                                            "{}() over non-numeric values",
                                            agg.name()
                                        ))
                                    })?;
                                }
                            }
                        }
                        match agg {
                            Aggregate::Min | Aggregate::Max => Ok(acc.unwrap_or(Value::Null)),
                            Aggregate::Sum => {
                                if n == 0 {
                                    Ok(Value::Null)
                                } else if all_int {
                                    Ok(Value::Int(sum as i64))
                                } else {
                                    Ok(Value::Float(sum))
                                }
                            }
                            Aggregate::Avg => {
                                if n == 0 {
                                    Ok(Value::Null)
                                } else {
                                    Ok(Value::Float(sum / n as f64))
                                }
                            }
                            Aggregate::Count => unreachable!(),
                        }
                    }
                }
            }
            Expr::Literal(_) => self.eval_with_row(expr, source, &[], outer, used_outer),
            // Composite expressions: recurse, aggregating sub-calls.
            Expr::Binary { left, op, right } => {
                let l = self.eval_in_group(left, source, group, outer, used_outer)?;
                let r = self.eval_in_group(right, source, group, outer, used_outer)?;
                crate::eval::apply_binary(&l, *op, &r)
            }
            Expr::Logical { left, and, right } => {
                let l = self.eval_in_group(left, source, group, outer, used_outer)?;
                if *and && !l.is_truthy() {
                    return Ok(Value::Bool(false));
                }
                if !*and && l.is_truthy() {
                    return Ok(Value::Bool(true));
                }
                let r = self.eval_in_group(right, source, group, outer, used_outer)?;
                Ok(Value::Bool(if *and {
                    l.is_truthy() && r.is_truthy()
                } else {
                    l.is_truthy() || r.is_truthy()
                }))
            }
            Expr::Unary { op, expr } => {
                let v = self.eval_in_group(expr, source, group, outer, used_outer)?;
                match op {
                    UnaryOp::Neg => v.neg(),
                    UnaryOp::Plus => Ok(v),
                    UnaryOp::Not => Ok(Value::Bool(!v.is_truthy())),
                }
            }
            Expr::Function(f) => {
                // Scalar function over aggregated arguments.
                let mut args = Vec::with_capacity(f.args.len());
                for a in &f.args {
                    args.push(self.eval_in_group(a, source, group, outer, used_outer)?);
                }
                let (v, cost) = self.fns.call(&f.name.canonical(), &args)?;
                self.counter.fn_units += cost;
                Ok(v)
            }
            // Bare columns etc.: first row of the group (empty group → NULL).
            other => match group.first() {
                Some(&ri) => self.eval_with_row(other, source, &source.rows[ri], outer, used_outer),
                None => Ok(Value::Null),
            },
        }
    }

    fn distinct(&mut self, rel: Relation) -> Result<Relation, RuntimeError> {
        let mut seen = std::collections::HashSet::new();
        let mut rows = Vec::new();
        for row in rel.rows {
            self.counter.hash_ops += 1;
            let mut key = Vec::new();
            for v in &row {
                v.group_key(&mut key);
            }
            if seen.insert(key) {
                rows.push(row);
            }
        }
        Ok(Relation {
            cols: rel.cols,
            rows,
        })
    }

    fn order_by(
        &mut self,
        order: &[OrderByItem],
        projected: Relation,
        source: &Relation,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        // Evaluate sort keys per projected row; resolution tries the
        // projected columns (select aliases) first, then the source row.
        let paired = !source.cols.is_empty() && source.len() == projected.len();
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(projected.len());
        let tmp = Relation {
            cols: projected.cols.clone(),
            rows: Vec::new(),
        };
        for (i, row) in projected.rows.into_iter().enumerate() {
            let mut keys = Vec::with_capacity(order.len());
            for ob in order {
                let v = match self.eval_with_row(&ob.expr, &tmp, &row, outer, used_outer) {
                    Ok(v) => v,
                    Err(RuntimeError::UnknownColumn(_)) | Err(RuntimeError::AmbiguousColumn(_))
                        if paired =>
                    {
                        self.eval_with_row(&ob.expr, source, &source.rows[i], outer, used_outer)?
                    }
                    Err(e) => return Err(e),
                };
                keys.push(v);
            }
            keyed.push((keys, row));
        }
        let descs: Vec<bool> = order.iter().map(|o| o.desc).collect();
        let mut cmp_count = 0u64;
        keyed.sort_by(|a, b| {
            cmp_count += 1;
            for (k, desc) in descs.iter().enumerate() {
                let ord = a.0[k].total_cmp(&b.0[k]);
                if ord != std::cmp::Ordering::Equal {
                    return if *desc { ord.reverse() } else { ord };
                }
            }
            std::cmp::Ordering::Equal
        });
        self.counter.sort_cmps += cmp_count;
        Ok(Relation {
            cols: projected.cols,
            rows: keyed.into_iter().map(|(_, r)| r).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, ColumnSpec, TableSpec};
    use crate::exec::{ExecCtx, ExecLimits};
    use crate::functions::FnRegistry;
    use crate::plan::lower;
    use sqlan_sql::Statement;

    fn catalog() -> Catalog {
        Catalog::generate(
            &[TableSpec::new("t", 100)
                .column("id", ColumnSpec::SeqId)
                .column("x", ColumnSpec::IntUniform(0, 9))],
            5,
        )
    }

    /// `Filter` nodes inside an item tree execute like residual filters:
    /// same rows, same cost charges. (No current pass emits them — they
    /// are the tree form future pushdown-below-join passes produce — but
    /// the executor must already run them correctly.)
    #[test]
    fn filter_node_in_item_tree_matches_residual_filter() {
        let cat = catalog();
        let fns = FnRegistry::standard();
        let script = sqlan_sql::parse_script("SELECT id FROM t WHERE x > 4").unwrap();
        let q = match &script.statements[0] {
            Statement::Select(q) => q.clone(),
            _ => unreachable!(),
        };

        // Naive plan: the predicate sits in `residual`.
        let residual_plan = lower(&q);
        let mut ctx = ExecCtx::new(&cat, &fns, ExecLimits::default());
        let (want, _) = ctx.exec_plan(&residual_plan, &[]).unwrap();
        let want_counter = ctx.counter;

        // Tree plan: the same predicate as a Filter node over the scan.
        let mut tree_plan = lower(&q);
        let pred = tree_plan.residual.remove(0);
        let scan = tree_plan.items.remove(0);
        tree_plan.items.insert(
            0,
            LogicalPlan::Filter {
                input: Box::new(scan),
                predicate: pred,
            },
        );
        let mut ctx2 = ExecCtx::new(&cat, &fns, ExecLimits::default());
        let (got, _) = ctx2.exec_plan(&tree_plan, &[]).unwrap();

        assert_eq!(want.rows, got.rows);
        assert_eq!(want_counter, ctx2.counter);
        assert!(!got.rows.is_empty());
    }
}
