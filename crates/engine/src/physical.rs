//! Physical operators: execution of an optimized [`QueryPlan`] against
//! the catalog.
//!
//! Every operator charges the [`crate::CostCounter`] exactly as the
//! original monolithic executor did — rows scanned, hash build/probe
//! operations, per-row predicate evaluations, sort comparisons, rows
//! materialized. Those charges (and even their *order*, which becomes
//! observable when a query aborts on a resource budget) are workload
//! labels, so this module treats them as part of each operator's contract,
//! not an implementation detail. The plan's phase structure (items →
//! pushed filters → folds → residual → select → distinct → sort → limit)
//! is executed literally.

use std::collections::HashMap;
use std::sync::Arc;

use sqlan_sql::{Aggregate, Expr, JoinKind, OrderByItem, QualifiedName, SelectItem, UnaryOp};

use crate::error::RuntimeError;
use crate::eval::{apply_binary, eval_batch, RowSet};
use crate::exec::{observe, ExecCtx, OpStats, Scope};
use crate::plan::{
    projection_plan, schema_relation, FoldStep, JoinStrategy, LogicalPlan, ProjStep, QueryPlan,
    SelectOp,
};
use crate::relation::{gather, ColRef, ColumnBatch, Relation};
use crate::value::{Column, ColumnBuilder, Value};

/// Pair-evaluation chunk bound for the streaming batch nested-loop join:
/// each condition evaluation covers at most this many left×right pairs
/// (rounded up to whole left rows), so the join's transient working set
/// is bounded no matter how large the cross product is. Purely a memory
/// knob — charges and output are identical at any value.
const NLJ_PAIR_CHUNK: usize = 4096;

/// One-line operator descriptions for EXPLAIN ANALYZE observations.
fn item_label(node: &LogicalPlan) -> String {
    match node {
        LogicalPlan::Scan { table, alias, .. } => match alias {
            Some(a) => format!("Scan {} AS {a}", table.canonical()),
            None => format!("Scan {}", table.canonical()),
        },
        LogicalPlan::Subquery { alias, .. } => match alias {
            Some(a) => format!("Subquery AS {a}"),
            None => "Subquery".into(),
        },
        LogicalPlan::Filter { input, .. } => format!("Filter over {}", item_label(input)),
        LogicalPlan::Join { kind, strategy, .. } => {
            let head = match strategy {
                JoinStrategy::Hash { .. } => "HashJoin",
                JoinStrategy::NestedLoop => "NestedLoopJoin",
            };
            format!("{head} {kind:?}")
        }
    }
}

fn fold_label(step: Option<&FoldStep>) -> String {
    match step {
        Some(FoldStep::Hash { condition, .. }) => format!("HashJoin ({condition})"),
        _ => "CrossJoin".into(),
    }
}

fn select_label(select: &SelectOp) -> String {
    match select {
        SelectOp::Project { items } => format!("Project [{} exprs]", items.len()),
        SelectOp::Aggregate {
            items, group_by, ..
        } => {
            if group_by.is_empty() {
                format!("Aggregate [{} exprs]", items.len())
            } else {
                format!(
                    "Aggregate [{} exprs] group by [{} keys]",
                    items.len(),
                    group_by.len()
                )
            }
        }
    }
}

impl ExecCtx<'_> {
    /// Execute a full query plan. `outer` carries enclosing row scopes for
    /// correlated subqueries; the returned flag reports whether any outer
    /// scope was actually consulted (the uncorrelated-subquery cache
    /// depends on it).
    pub(crate) fn exec_plan(
        &mut self,
        plan: &QueryPlan,
        outer: &[Scope<'_>],
    ) -> Result<(Relation, bool), RuntimeError> {
        // Only the root plan logs EXPLAIN ANALYZE observations: nested
        // plans (derived tables, subqueries) see `None` and their charges
        // roll into the enclosing operator's delta.
        let mut alog = self.analyze.take();
        let res = self.exec_plan_row(plan, outer, &mut alog);
        self.analyze = alog;
        res
    }

    fn exec_plan_row(
        &mut self,
        plan: &QueryPlan,
        outer: &[Scope<'_>],
        alog: &mut Option<Vec<OpStats>>,
    ) -> Result<(Relation, bool), RuntimeError> {
        let mut used_outer = false;
        let mut last = self.counter.units();
        let mut t_last = std::time::Instant::now();

        // ---- FROM items -------------------------------------------------
        let mut item_rels: Vec<Relation> = Vec::with_capacity(plan.items.len());
        for item in &plan.items {
            let rel = self.exec_node(item, outer, &mut used_outer)?;
            observe(
                alog,
                &self.counter,
                &mut last,
                &mut t_last,
                rel.len(),
                || item_label(item),
            );
            item_rels.push(rel);
        }

        // ---- pushed single-item filters, in original conjunct order ----
        for (i, pred) in &plan.pushed {
            let rel = std::mem::take(&mut item_rels[*i]);
            let rel = self.filter(rel, pred, outer, &mut used_outer)?;
            observe(
                alog,
                &self.counter,
                &mut last,
                &mut t_last,
                rel.len(),
                || format!("Filter ({pred})"),
            );
            item_rels[*i] = rel;
        }

        // ---- fold the comma-list items ---------------------------------
        let mut source = match item_rels.len() {
            0 => Relation::unit(),
            _ => {
                let mut acc = item_rels.remove(0);
                for (k, next) in item_rels.into_iter().enumerate() {
                    acc = self.fold(acc, next, plan.folds.get(k), outer, &mut used_outer)?;
                    observe(
                        alog,
                        &self.counter,
                        &mut last,
                        &mut t_last,
                        acc.len(),
                        || fold_label(plan.folds.get(k)),
                    );
                }
                acc
            }
        };

        // ---- residual WHERE ---------------------------------------------
        for pred in &plan.residual {
            source = self.filter(source, pred, outer, &mut used_outer)?;
            observe(
                alog,
                &self.counter,
                &mut last,
                &mut t_last,
                source.len(),
                || format!("Filter ({pred})"),
            );
        }

        // ---- projection / aggregation ----------------------------------
        let is_agg = matches!(plan.select, SelectOp::Aggregate { .. });
        let mut projected = match &plan.select {
            SelectOp::Aggregate {
                items,
                group_by,
                having,
            } => self.aggregate(
                items,
                group_by,
                having.as_ref(),
                &source,
                outer,
                &mut used_outer,
            )?,
            SelectOp::Project { items } => self.project(items, &source, outer, &mut used_outer)?,
        };
        observe(
            alog,
            &self.counter,
            &mut last,
            &mut t_last,
            projected.len(),
            || select_label(&plan.select),
        );

        // ---- DISTINCT ----------------------------------------------------
        if plan.distinct {
            projected = self.distinct(projected)?;
            observe(
                alog,
                &self.counter,
                &mut last,
                &mut t_last,
                projected.len(),
                || "Distinct".into(),
            );
        }

        // ---- ORDER BY (on projected output, falling back to source) ----
        if !plan.order_by.is_empty() && !is_agg {
            projected =
                self.order_by(&plan.order_by, projected, &source, outer, &mut used_outer)?;
        } else if !plan.order_by.is_empty() {
            // Aggregate outputs sort on their projected columns only.
            projected = self.order_by(
                &plan.order_by,
                projected,
                &Relation::default(),
                outer,
                &mut used_outer,
            )?;
        }
        if !plan.order_by.is_empty() {
            observe(
                alog,
                &self.counter,
                &mut last,
                &mut t_last,
                projected.len(),
                || format!("Sort [{} keys]", plan.order_by.len()),
            );
        }

        // ---- TOP ----------------------------------------------------------
        if let Some(n) = plan.top {
            projected.rows.truncate(n as usize);
            observe(
                alog,
                &self.counter,
                &mut last,
                &mut t_last,
                projected.len(),
                || format!("Limit {n}"),
            );
        }

        Ok((projected, used_outer))
    }

    // ================= FROM-item operator trees =================

    fn exec_node(
        &mut self,
        node: &LogicalPlan,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        match node {
            LogicalPlan::Scan {
                table,
                alias,
                columns,
            } => self.scan(table, alias.as_deref(), columns.as_deref()),
            LogicalPlan::Subquery { plan, alias } => {
                let (mut rel, uo) = self.exec_plan(plan, outer)?;
                *used_outer |= uo;
                // Rebind all columns under the derived alias.
                let qualifier = alias.as_ref().map(|a| a.to_ascii_lowercase());
                for c in &mut rel.cols {
                    c.qualifier = qualifier.clone();
                    c.table = None;
                }
                Ok(rel)
            }
            LogicalPlan::Filter { input, predicate } => {
                let rel = self.exec_node(input, outer, used_outer)?;
                self.filter(rel, predicate, outer, used_outer)
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
                strategy,
            } => {
                let l = self.exec_node(left, outer, used_outer)?;
                let r = self.exec_node(right, outer, used_outer)?;
                let cols: Vec<ColRef> = l.cols.iter().chain(r.cols.iter()).cloned().collect();
                match (strategy, on) {
                    (
                        JoinStrategy::Hash {
                            left_key,
                            right_key,
                        },
                        Some(cond),
                    ) => self.hash_join(
                        l, r, cols, left_key, right_key, cond, *kind, outer, used_outer,
                    ),
                    _ => self.nested_loop_join(l, r, cols, *kind, on.as_ref(), outer, used_outer),
                }
            }
        }
    }

    fn scan(
        &mut self,
        table: &QualifiedName,
        alias: Option<&str>,
        columns: Option<&[usize]>,
    ) -> Result<Relation, RuntimeError> {
        let canonical = table.canonical();
        let table = self
            .catalog
            .get(&canonical)
            .ok_or_else(|| RuntimeError::UnknownTable(canonical.clone()))?;
        let n = table.row_count();
        self.counter.rows_scanned += n as u64;
        self.check_budget(n)?;
        let qualifier = alias.map(|a| a.to_ascii_lowercase());
        let tname = table.name.to_ascii_lowercase();
        let keep: Vec<usize> = match columns {
            None => (0..table.columns.len()).collect(),
            Some(keep) => keep.to_vec(),
        };
        let cols = keep
            .iter()
            .filter_map(|&i| table.columns.get(i))
            .map(|c| ColRef {
                qualifier: qualifier.clone(),
                table: Some(tname.clone()),
                name: c.name.clone(),
            })
            .collect();
        let mut rows = Vec::with_capacity(n);
        for r in 0..n {
            rows.push(
                keep.iter()
                    .filter_map(|&i| table.data.get(i))
                    .map(|c| c.get(r))
                    .collect(),
            );
        }
        Ok(Relation { cols, rows })
    }

    /// Combine two comma-list items according to the planned fold step
    /// (inner-join semantics, which is what comma joins mean).
    fn fold(
        &mut self,
        left: Relation,
        right: Relation,
        step: Option<&FoldStep>,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        let cols: Vec<ColRef> = left.cols.iter().chain(right.cols.iter()).cloned().collect();
        match step {
            Some(FoldStep::Hash {
                left_key,
                right_key,
                condition,
            }) => self.hash_join(
                left,
                right,
                cols,
                left_key,
                right_key,
                condition,
                JoinKind::Inner,
                outer,
                used_outer,
            ),
            // Pure cartesian product.
            _ => self.nested_loop_join(left, right, cols, JoinKind::Cross, None, outer, used_outer),
        }
    }

    /// Nested-loop join (also handles CROSS JOIN and non-equi ON).
    #[allow(clippy::too_many_arguments)]
    fn nested_loop_join(
        &mut self,
        left: Relation,
        right: Relation,
        cols: Vec<ColRef>,
        kind: JoinKind,
        on: Option<&Expr>,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        let est = left.len().saturating_mul(right.len().max(1));
        self.check_budget(est)?;
        let mut rows = Vec::new();
        let mut right_matched = vec![false; right.len()];
        let tmp_cols = Relation {
            cols: cols.clone(),
            rows: Vec::new(),
        };
        // Scratch pair row, reused across the inner loop: the left side is
        // cloned once per *left* row instead of once per pair, and
        // non-matching pairs allocate nothing.
        let lw = left.width();
        let mut scratch: Vec<Value> = Vec::with_capacity(cols.len());
        for lrow in &left.rows {
            let mut matched = false;
            scratch.clear();
            scratch.extend(lrow.iter().cloned());
            for (ri, rrow) in right.rows.iter().enumerate() {
                self.counter.eval_units += 1;
                scratch.truncate(lw);
                scratch.extend(rrow.iter().cloned());
                let keep = match on {
                    None => true,
                    Some(cond) => self
                        .eval_with_row(cond, &tmp_cols, &scratch, outer, used_outer)?
                        .is_truthy(),
                };
                if keep {
                    matched = true;
                    right_matched[ri] = true;
                    rows.push(scratch.clone());
                    if rows.len() > self.limits.max_rows {
                        return Err(RuntimeError::ResourceExhausted);
                    }
                }
            }
            if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                let mut padded = lrow.clone();
                padded.extend(std::iter::repeat_n(Value::Null, right.width()));
                rows.push(padded);
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, rrow) in right.rows.iter().enumerate() {
                if !right_matched[ri] {
                    let mut padded: Vec<Value> =
                        std::iter::repeat_n(Value::Null, left.width()).collect();
                    padded.extend(rrow.iter().cloned());
                    rows.push(padded);
                }
            }
        }
        self.counter.rows_materialized += rows.len() as u64;
        Ok(Relation { cols, rows })
    }

    /// Hash join on single-key equality, preserving outer-join semantics.
    /// The full `ON`/fold condition is re-checked on each hash candidate
    /// (it may carry residual conjuncts beyond the hash key).
    #[allow(clippy::too_many_arguments)]
    fn hash_join(
        &mut self,
        left: Relation,
        right: Relation,
        cols: Vec<ColRef>,
        lk: &Expr,
        rk: &Expr,
        full_cond: &Expr,
        kind: JoinKind,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        // Build on the right side.
        let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
        for (ri, rrow) in right.rows.iter().enumerate() {
            let v = self.eval_with_row(rk, &right, rrow, outer, used_outer)?;
            if v.is_null() {
                continue;
            }
            let mut key = Vec::new();
            v.group_key(&mut key);
            table.entry(key).or_default().push(ri);
            self.counter.hash_ops += 1;
        }

        let mut rows = Vec::new();
        let mut right_matched = vec![false; right.len()];
        let tmp_cols = Relation {
            cols: cols.clone(),
            rows: Vec::new(),
        };
        // Same scratch-row trick as the nested loop: clone the left side
        // once per probe row, the right side once per candidate, and a
        // full pair row only when the condition holds.
        let lw = left.width();
        let mut scratch: Vec<Value> = Vec::with_capacity(cols.len());
        for lrow in &left.rows {
            self.counter.hash_ops += 1;
            let v = self.eval_with_row(lk, &left, lrow, outer, used_outer)?;
            let mut matched = false;
            if !v.is_null() {
                let mut key = Vec::new();
                v.group_key(&mut key);
                if let Some(cands) = table.get(&key) {
                    scratch.clear();
                    scratch.extend(lrow.iter().cloned());
                    for &ri in cands {
                        scratch.truncate(lw);
                        scratch.extend(right.rows[ri].iter().cloned());
                        self.counter.eval_units += 1;
                        if self
                            .eval_with_row(full_cond, &tmp_cols, &scratch, outer, used_outer)?
                            .is_truthy()
                        {
                            matched = true;
                            right_matched[ri] = true;
                            rows.push(scratch.clone());
                            if rows.len() > self.limits.max_rows {
                                return Err(RuntimeError::ResourceExhausted);
                            }
                        }
                    }
                }
            }
            if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                let mut padded = lrow.clone();
                padded.extend(std::iter::repeat_n(Value::Null, right.width()));
                rows.push(padded);
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, rrow) in right.rows.iter().enumerate() {
                if !right_matched[ri] {
                    let mut padded: Vec<Value> =
                        std::iter::repeat_n(Value::Null, left.width()).collect();
                    padded.extend(rrow.iter().cloned());
                    rows.push(padded);
                }
            }
        }
        self.counter.rows_materialized += rows.len() as u64;
        Ok(Relation { cols, rows })
    }

    // ================= row pipeline operators =================

    fn filter(
        &mut self,
        rel: Relation,
        pred: &Expr,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        let mut rows = Vec::new();
        self.counter.eval_units += rel.rows.len() as u64;
        // Periodic budget check so runaway predicates with functions abort.
        for (i, row) in rel.rows.iter().enumerate() {
            if i % 4096 == 0 {
                self.check_budget(0)?;
            }
            let v = self.eval_with_row(pred, &rel, row, outer, used_outer)?;
            if v.is_truthy() {
                rows.push(row.clone());
            }
        }
        self.counter.rows_materialized += rows.len() as u64;
        Ok(Relation {
            cols: rel.cols,
            rows,
        })
    }

    fn project(
        &mut self,
        select: &[SelectItem],
        source: &Relation,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        let (cols, plan) = projection_plan(select, source)?;
        let mut rows = Vec::with_capacity(source.len());
        self.counter.eval_units += (source.len() * plan.len().max(1)) as u64;
        for (i, row) in source.rows.iter().enumerate() {
            if i % 4096 == 0 {
                self.check_budget(0)?;
            }
            let mut out = Vec::with_capacity(cols.len());
            for p in &plan {
                match p {
                    ProjStep::Passthrough(idx) => out.push(row[*idx].clone()),
                    ProjStep::Eval(e) => {
                        out.push(self.eval_with_row(e, source, row, outer, used_outer)?)
                    }
                }
            }
            rows.push(out);
        }
        self.counter.rows_materialized += rows.len() as u64;
        Ok(Relation { cols, rows })
    }

    fn aggregate(
        &mut self,
        select: &[SelectItem],
        group_by: &[Expr],
        having: Option<&Expr>,
        source: &Relation,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        // Group rows by the GROUP BY key (single group if absent).
        let mut groups: Vec<Vec<usize>> = Vec::new();
        if group_by.is_empty() {
            groups.push((0..source.len()).collect());
        } else {
            let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
            for (ri, row) in source.rows.iter().enumerate() {
                let mut key = Vec::new();
                for g in group_by {
                    let v = self.eval_with_row(g, source, row, outer, used_outer)?;
                    v.group_key(&mut key);
                }
                self.counter.hash_ops += 1;
                let gid = *index.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gid].push(ri);
            }
        }

        // HAVING filters groups.
        let mut kept: Vec<&Vec<usize>> = Vec::new();
        for g in &groups {
            if group_by.is_empty() || !g.is_empty() {
                let keep = match having {
                    None => true,
                    Some(h) => self
                        .eval_in_group(h, source, g, outer, used_outer)?
                        .is_truthy(),
                };
                if keep {
                    kept.push(g);
                }
            }
        }
        // An empty input with no GROUP BY still yields one aggregate row
        // (COUNT(*) = 0), which `groups` already encodes.

        let cols = crate::plan::aggregate_output_cols(select);
        let mut rows = Vec::with_capacity(kept.len());
        for g in kept {
            self.check_budget(0)?;
            let mut out = Vec::with_capacity(select.len());
            for item in select {
                out.push(self.eval_in_group(&item.expr, source, g, outer, used_outer)?);
            }
            rows.push(out);
        }

        let rel = Relation { cols, rows };
        self.counter.rows_materialized += rel.rows.len() as u64;
        Ok(rel)
    }

    /// Evaluate an expression in aggregate context: aggregate calls reduce
    /// over the group's rows; bare columns take their value from the first
    /// row of the group (lenient T-SQL-ish behaviour).
    fn eval_in_group(
        &mut self,
        expr: &Expr,
        source: &Relation,
        group: &[usize],
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Value, RuntimeError> {
        match expr {
            Expr::Function(f) if f.aggregate.is_some() => {
                let agg = f.aggregate.unwrap();
                self.counter.eval_units += group.len() as u64;
                match agg {
                    Aggregate::Count => {
                        if f.args.is_empty() || matches!(f.args.first(), Some(Expr::Wildcard(_))) {
                            return Ok(Value::Int(group.len() as i64));
                        }
                        let mut n = 0i64;
                        let mut seen = std::collections::HashSet::new();
                        for &ri in group {
                            let v = self.eval_with_row(
                                &f.args[0],
                                source,
                                &source.rows[ri],
                                outer,
                                used_outer,
                            )?;
                            if !v.is_null() {
                                if f.distinct {
                                    let mut k = Vec::new();
                                    v.group_key(&mut k);
                                    if seen.insert(k) {
                                        n += 1;
                                    }
                                } else {
                                    n += 1;
                                }
                            }
                        }
                        Ok(Value::Int(n))
                    }
                    Aggregate::Min | Aggregate::Max | Aggregate::Sum | Aggregate::Avg => {
                        let arg = f.args.first().ok_or_else(|| {
                            RuntimeError::TypeError(format!("{}() needs an argument", agg.name()))
                        })?;
                        let mut acc: Option<Value> = None;
                        let mut sum = 0.0f64;
                        let mut all_int = true;
                        let mut n = 0u64;
                        for &ri in group {
                            let v = self.eval_with_row(
                                arg,
                                source,
                                &source.rows[ri],
                                outer,
                                used_outer,
                            )?;
                            if v.is_null() {
                                continue;
                            }
                            n += 1;
                            match agg {
                                Aggregate::Min => {
                                    acc = Some(match acc {
                                        None => v,
                                        Some(a) => {
                                            if v.total_cmp(&a).is_lt() {
                                                v
                                            } else {
                                                a
                                            }
                                        }
                                    });
                                }
                                Aggregate::Max => {
                                    acc = Some(match acc {
                                        None => v,
                                        Some(a) => {
                                            if v.total_cmp(&a).is_gt() {
                                                v
                                            } else {
                                                a
                                            }
                                        }
                                    });
                                }
                                _ => {
                                    if !matches!(v, Value::Int(_)) {
                                        all_int = false;
                                    }
                                    sum += v.as_f64().ok_or_else(|| {
                                        RuntimeError::TypeError(format!(
                                            "{}() over non-numeric values",
                                            agg.name()
                                        ))
                                    })?;
                                }
                            }
                        }
                        match agg {
                            Aggregate::Min | Aggregate::Max => Ok(acc.unwrap_or(Value::Null)),
                            Aggregate::Sum => {
                                if n == 0 {
                                    Ok(Value::Null)
                                } else if all_int {
                                    Ok(Value::Int(sum as i64))
                                } else {
                                    Ok(Value::Float(sum))
                                }
                            }
                            Aggregate::Avg => {
                                if n == 0 {
                                    Ok(Value::Null)
                                } else {
                                    Ok(Value::Float(sum / n as f64))
                                }
                            }
                            Aggregate::Count => unreachable!(),
                        }
                    }
                }
            }
            Expr::Literal(_) => self.eval_with_row(expr, source, &[], outer, used_outer),
            // Composite expressions: recurse, aggregating sub-calls.
            Expr::Binary { left, op, right } => {
                let l = self.eval_in_group(left, source, group, outer, used_outer)?;
                let r = self.eval_in_group(right, source, group, outer, used_outer)?;
                crate::eval::apply_binary(&l, *op, &r)
            }
            Expr::Logical { left, and, right } => {
                let l = self.eval_in_group(left, source, group, outer, used_outer)?;
                if *and && !l.is_truthy() {
                    return Ok(Value::Bool(false));
                }
                if !*and && l.is_truthy() {
                    return Ok(Value::Bool(true));
                }
                let r = self.eval_in_group(right, source, group, outer, used_outer)?;
                Ok(Value::Bool(if *and {
                    l.is_truthy() && r.is_truthy()
                } else {
                    l.is_truthy() || r.is_truthy()
                }))
            }
            Expr::Unary { op, expr } => {
                let v = self.eval_in_group(expr, source, group, outer, used_outer)?;
                match op {
                    UnaryOp::Neg => v.neg(),
                    UnaryOp::Plus => Ok(v),
                    UnaryOp::Not => Ok(Value::Bool(!v.is_truthy())),
                }
            }
            Expr::Function(f) => {
                // Scalar function over aggregated arguments.
                let mut args = Vec::with_capacity(f.args.len());
                for a in &f.args {
                    args.push(self.eval_in_group(a, source, group, outer, used_outer)?);
                }
                let (v, cost) = self.fns.call(&f.name.canonical(), &args)?;
                self.counter.fn_units += cost;
                Ok(v)
            }
            // Bare columns etc.: first row of the group (empty group → NULL).
            other => match group.first() {
                Some(&ri) => self.eval_with_row(other, source, &source.rows[ri], outer, used_outer),
                None => Ok(Value::Null),
            },
        }
    }

    fn distinct(&mut self, rel: Relation) -> Result<Relation, RuntimeError> {
        let mut seen = std::collections::HashSet::new();
        let mut rows = Vec::new();
        for row in rel.rows {
            self.counter.hash_ops += 1;
            let mut key = Vec::new();
            for v in &row {
                v.group_key(&mut key);
            }
            if seen.insert(key) {
                rows.push(row);
            }
        }
        Ok(Relation {
            cols: rel.cols,
            rows,
        })
    }

    fn order_by(
        &mut self,
        order: &[OrderByItem],
        projected: Relation,
        source: &Relation,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Relation, RuntimeError> {
        // Evaluate sort keys per projected row; resolution tries the
        // projected columns (select aliases) first, then the source row.
        let paired = !source.cols.is_empty() && source.len() == projected.len();
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(projected.len());
        let tmp = Relation {
            cols: projected.cols.clone(),
            rows: Vec::new(),
        };
        for (i, row) in projected.rows.into_iter().enumerate() {
            let mut keys = Vec::with_capacity(order.len());
            for ob in order {
                let v = match self.eval_with_row(&ob.expr, &tmp, &row, outer, used_outer) {
                    Ok(v) => v,
                    Err(RuntimeError::UnknownColumn(_)) | Err(RuntimeError::AmbiguousColumn(_))
                        if paired =>
                    {
                        self.eval_with_row(&ob.expr, source, &source.rows[i], outer, used_outer)?
                    }
                    Err(e) => return Err(e),
                };
                keys.push(v);
            }
            keyed.push((keys, row));
        }
        let descs: Vec<bool> = order.iter().map(|o| o.desc).collect();
        let mut cmp_count = 0u64;
        keyed.sort_by(|a, b| {
            cmp_count += 1;
            for (k, desc) in descs.iter().enumerate() {
                let ord = a.0[k].total_cmp(&b.0[k]);
                if ord != std::cmp::Ordering::Equal {
                    return if *desc { ord.reverse() } else { ord };
                }
            }
            std::cmp::Ordering::Equal
        });
        self.counter.sort_cmps += cmp_count;
        Ok(Relation {
            cols: projected.cols,
            rows: keyed.into_iter().map(|(_, r)| r).collect(),
        })
    }
}

// =====================================================================
// Columnar batch execution
// =====================================================================
//
// Every operator below is the batch twin of a row operator above, with
// the same `CostCounter` charges on the success path — same totals,
// though accumulated column-at-a-time instead of row-at-a-time. Error
// paths (resource aborts, runtime errors) may differ in charge order;
// the `Database` layer replays them through the row engine, whose order
// is the label contract. Filters refine selection vectors without
// copying; projection passthrough re-references `Arc`'d columns; sorts
// permute the selection; only joins, expression evaluation, and
// aggregate outputs allocate.

impl ExecCtx<'_> {
    /// Batch twin of [`ExecCtx::exec_plan`].
    pub(crate) fn exec_plan_batch(
        &mut self,
        plan: &QueryPlan,
        outer: &[Scope<'_>],
    ) -> Result<(ColumnBatch, bool), RuntimeError> {
        let mut alog = self.analyze.take();
        let res = self.exec_plan_batch_inner(plan, outer, &mut alog);
        self.analyze = alog;
        res
    }

    fn exec_plan_batch_inner(
        &mut self,
        plan: &QueryPlan,
        outer: &[Scope<'_>],
        alog: &mut Option<Vec<OpStats>>,
    ) -> Result<(ColumnBatch, bool), RuntimeError> {
        let mut used_outer = false;
        let mut last = self.counter.units();
        let mut t_last = std::time::Instant::now();

        // ---- FROM items -------------------------------------------------
        let mut item_rels: Vec<ColumnBatch> = Vec::with_capacity(plan.items.len());
        for item in &plan.items {
            let rel = self.exec_node_batch(item, outer, &mut used_outer)?;
            observe(
                alog,
                &self.counter,
                &mut last,
                &mut t_last,
                rel.len(),
                || item_label(item),
            );
            item_rels.push(rel);
        }

        // ---- pushed single-item filters, in original conjunct order ----
        for (i, pred) in &plan.pushed {
            let rel = std::mem::take(&mut item_rels[*i]);
            let rel = self.filter_batch(rel, pred, outer, &mut used_outer)?;
            observe(
                alog,
                &self.counter,
                &mut last,
                &mut t_last,
                rel.len(),
                || format!("Filter ({pred})"),
            );
            item_rels[*i] = rel;
        }

        // ---- fold the comma-list items ---------------------------------
        let mut source = match item_rels.len() {
            0 => ColumnBatch::unit(),
            _ => {
                let mut acc = item_rels.remove(0);
                for (k, next) in item_rels.into_iter().enumerate() {
                    acc = self.fold_batch(acc, next, plan.folds.get(k), outer, &mut used_outer)?;
                    observe(
                        alog,
                        &self.counter,
                        &mut last,
                        &mut t_last,
                        acc.len(),
                        || fold_label(plan.folds.get(k)),
                    );
                }
                acc
            }
        };

        // ---- residual WHERE ---------------------------------------------
        for pred in &plan.residual {
            source = self.filter_batch(source, pred, outer, &mut used_outer)?;
            observe(
                alog,
                &self.counter,
                &mut last,
                &mut t_last,
                source.len(),
                || format!("Filter ({pred})"),
            );
        }

        // ---- projection / aggregation ----------------------------------
        let is_agg = matches!(plan.select, SelectOp::Aggregate { .. });
        let mut projected = match &plan.select {
            SelectOp::Aggregate {
                items,
                group_by,
                having,
            } => self.aggregate_batch(
                items,
                group_by,
                having.as_ref(),
                &source,
                outer,
                &mut used_outer,
            )?,
            SelectOp::Project { items } => {
                self.project_batch(items, &source, outer, &mut used_outer)?
            }
        };
        observe(
            alog,
            &self.counter,
            &mut last,
            &mut t_last,
            projected.len(),
            || select_label(&plan.select),
        );

        // ---- DISTINCT ----------------------------------------------------
        if plan.distinct {
            projected = self.distinct_batch(projected)?;
            observe(
                alog,
                &self.counter,
                &mut last,
                &mut t_last,
                projected.len(),
                || "Distinct".into(),
            );
        }

        // ---- ORDER BY (on projected output, falling back to source) ----
        if !plan.order_by.is_empty() && !is_agg {
            projected =
                self.order_by_batch(&plan.order_by, projected, &source, outer, &mut used_outer)?;
        } else if !plan.order_by.is_empty() {
            // Aggregate outputs sort on their projected columns only.
            projected = self.order_by_batch(
                &plan.order_by,
                projected,
                &ColumnBatch::default(),
                outer,
                &mut used_outer,
            )?;
        }
        if !plan.order_by.is_empty() {
            observe(
                alog,
                &self.counter,
                &mut last,
                &mut t_last,
                projected.len(),
                || format!("Sort [{} keys]", plan.order_by.len()),
            );
        }

        // ---- TOP ----------------------------------------------------------
        if let Some(n) = plan.top {
            projected.truncate(n as usize);
            observe(
                alog,
                &self.counter,
                &mut last,
                &mut t_last,
                projected.len(),
                || format!("Limit {n}"),
            );
        }

        Ok((projected, used_outer))
    }

    fn exec_node_batch(
        &mut self,
        node: &LogicalPlan,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<ColumnBatch, RuntimeError> {
        match node {
            LogicalPlan::Scan {
                table,
                alias,
                columns,
            } => self.scan_batch(table, alias.as_deref(), columns.as_deref()),
            LogicalPlan::Subquery { plan, alias } => {
                let (mut rel, uo) = self.exec_plan_batch(plan, outer)?;
                *used_outer |= uo;
                // Rebind all columns under the derived alias.
                let qualifier = alias.as_ref().map(|a| a.to_ascii_lowercase());
                for c in &mut rel.cols {
                    c.qualifier = qualifier.clone();
                    c.table = None;
                }
                Ok(rel)
            }
            LogicalPlan::Filter { input, predicate } => {
                let rel = self.exec_node_batch(input, outer, used_outer)?;
                self.filter_batch(rel, predicate, outer, used_outer)
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
                strategy,
            } => {
                let l = self.exec_node_batch(left, outer, used_outer)?;
                let r = self.exec_node_batch(right, outer, used_outer)?;
                let cols: Vec<ColRef> = l.cols.iter().chain(r.cols.iter()).cloned().collect();
                match (strategy, on) {
                    (
                        JoinStrategy::Hash {
                            left_key,
                            right_key,
                        },
                        Some(cond),
                    ) => self.hash_join_batch(
                        l, r, cols, left_key, right_key, cond, *kind, outer, used_outer,
                    ),
                    _ => self.nested_loop_join_batch(
                        l,
                        r,
                        cols,
                        *kind,
                        on.as_ref(),
                        outer,
                        used_outer,
                    ),
                }
            }
        }
    }

    /// Batch scan: identical charges to the row scan, but the column data
    /// is `Arc`-shared with the catalog — nothing is copied.
    fn scan_batch(
        &mut self,
        table: &QualifiedName,
        alias: Option<&str>,
        columns: Option<&[usize]>,
    ) -> Result<ColumnBatch, RuntimeError> {
        let canonical = table.canonical();
        let table = self
            .catalog
            .get(&canonical)
            .ok_or_else(|| RuntimeError::UnknownTable(canonical.clone()))?;
        let n = table.row_count();
        self.counter.rows_scanned += n as u64;
        self.check_budget(n)?;
        let qualifier = alias.map(|a| a.to_ascii_lowercase());
        let tname = table.name.to_ascii_lowercase();
        let keep: Vec<usize> = match columns {
            None => (0..table.columns.len()).collect(),
            Some(keep) => keep.to_vec(),
        };
        let cols = keep
            .iter()
            .filter_map(|&i| table.columns.get(i))
            .map(|c| ColRef {
                qualifier: qualifier.clone(),
                table: Some(tname.clone()),
                name: c.name.clone(),
            })
            .collect();
        let data = keep
            .iter()
            .filter_map(|&i| table.data.get(i))
            .map(|c| Arc::new(Column::Shared(Arc::clone(c))))
            .collect();
        Ok(ColumnBatch::new(cols, data, n))
    }

    /// Batch twin of [`ExecCtx::fold`].
    fn fold_batch(
        &mut self,
        left: ColumnBatch,
        right: ColumnBatch,
        step: Option<&FoldStep>,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<ColumnBatch, RuntimeError> {
        let cols: Vec<ColRef> = left.cols.iter().chain(right.cols.iter()).cloned().collect();
        match step {
            Some(FoldStep::Hash {
                left_key,
                right_key,
                condition,
            }) => self.hash_join_batch(
                left,
                right,
                cols,
                left_key,
                right_key,
                condition,
                JoinKind::Inner,
                outer,
                used_outer,
            ),
            // Pure cartesian product.
            _ => self.nested_loop_join_batch(
                left,
                right,
                cols,
                JoinKind::Cross,
                None,
                outer,
                used_outer,
            ),
        }
    }

    /// Batch nested-loop join, streaming the cross product in bounded
    /// pair chunks.
    ///
    /// The condition is evaluated over [`NLJ_PAIR_CHUNK`]-bounded slices
    /// of whole left rows instead of one materialized `ln × rn` pair
    /// list, so the transient working set is O(chunk + output) rather
    /// than O(pairs). Chunking is charge-transparent: `eval_units` is
    /// charged for the full pair count up front exactly as before,
    /// per-pair condition evaluation is row-independent, uncorrelated
    /// subqueries stay cached across chunks in [`ExecCtx`], and the emit
    /// order (per left row, matching pairs in right order, outer pads
    /// last) is untouched — the differential suite holds.
    #[allow(clippy::too_many_arguments)]
    fn nested_loop_join_batch(
        &mut self,
        left: ColumnBatch,
        right: ColumnBatch,
        cols: Vec<ColRef>,
        kind: JoinKind,
        on: Option<&Expr>,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<ColumnBatch, RuntimeError> {
        let est = left.len().saturating_mul(right.len().max(1));
        self.check_budget(est)?;
        let (ln, rn) = (left.len(), right.len());
        let n_pairs = ln * rn;
        self.counter.eval_units += n_pairs as u64;
        if n_pairs == 0 {
            // Degenerate cross product: keep the pre-streaming call shape
            // (one evaluation over the empty pair set) so charge order is
            // bit-compatible with the row engine's.
            if let Some(cond) = on {
                let pairs = gather_pair_batch(&left, &right, &cols, &[], &[]);
                eval_batch(self, cond, &pairs, &RowSet::All(0), outer, used_outer)?;
            }
        }

        // Emit in the row engine's order: per left row, matching pairs in
        // right order, then the outer-join pad if unmatched.
        let rows_per_chunk = (NLJ_PAIR_CHUNK / rn.max(1)).max(1);
        let mut emit: Vec<(Option<usize>, Option<usize>)> = Vec::new();
        let mut right_matched = vec![false; rn];
        let mut l0 = 0;
        while l0 < ln && n_pairs > 0 {
            let l1 = (l0 + rows_per_chunk).min(ln);
            let chunk_pairs = (l1 - l0) * rn;
            // `None` for an unconditional (cross) join: every pair kept,
            // nothing to evaluate.
            let keep: Option<Vec<bool>> = match on {
                None => None,
                Some(cond) => {
                    let mut li = Vec::with_capacity(chunk_pairs);
                    let mut ri = Vec::with_capacity(chunk_pairs);
                    for l in l0..l1 {
                        for r in 0..rn {
                            li.push(l);
                            ri.push(r);
                        }
                    }
                    let pairs = gather_pair_batch(&left, &right, &cols, &li, &ri);
                    let c = eval_batch(
                        self,
                        cond,
                        &pairs,
                        &RowSet::All(chunk_pairs),
                        outer,
                        used_outer,
                    )?;
                    Some((0..chunk_pairs).map(|i| c.is_truthy_at(i)).collect())
                }
            };
            for l in l0..l1 {
                let mut matched = false;
                for r in 0..rn {
                    let kept = keep.as_ref().map(|k| k[(l - l0) * rn + r]).unwrap_or(true);
                    if kept {
                        matched = true;
                        right_matched[r] = true;
                        emit.push((Some(l), Some(r)));
                        if emit.len() > self.limits.max_rows {
                            return Err(RuntimeError::ResourceExhausted);
                        }
                    }
                }
                if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                    emit.push((Some(l), None));
                }
            }
            l0 = l1;
        }
        if n_pairs == 0 {
            // No pairs at all: only the left-side outer pads can emit.
            if matches!(kind, JoinKind::Left | JoinKind::Full) {
                for l in 0..ln {
                    emit.push((Some(l), None));
                }
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (r, m) in right_matched.iter().enumerate() {
                if !m {
                    emit.push((None, Some(r)));
                }
            }
        }
        self.counter.rows_materialized += emit.len() as u64;
        Ok(join_output(&left, &right, cols, &emit))
    }

    /// Batch hash join: vectorized key evaluation, hash build/probe on
    /// group-key bytes, vectorized re-check of the full condition over
    /// the candidate pairs.
    #[allow(clippy::too_many_arguments)]
    fn hash_join_batch(
        &mut self,
        left: ColumnBatch,
        right: ColumnBatch,
        cols: Vec<ColRef>,
        lk: &Expr,
        rk: &Expr,
        full_cond: &Expr,
        kind: JoinKind,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<ColumnBatch, RuntimeError> {
        let (ln, rn) = (left.len(), right.len());
        // Build on the right side.
        let rkey = eval_batch(self, rk, &right, &RowSet::All(rn), outer, used_outer)?;
        let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
        for r in 0..rn {
            if rkey.is_null_at(r) {
                continue;
            }
            let mut key = Vec::new();
            rkey.group_key_at(r, &mut key);
            table.entry(key).or_default().push(r);
            self.counter.hash_ops += 1;
        }

        // Probe with the left side, collecting candidate pairs li-major.
        let lkey = eval_batch(self, lk, &left, &RowSet::All(ln), outer, used_outer)?;
        self.counter.hash_ops += ln as u64;
        // Memory guard: a pathological key skew could make the candidate
        // list huge even though few pairs survive the condition. The row
        // engine streams this in O(1); we bail out and let the `Database`
        // layer replay through it.
        let pair_cap = self.limits.max_rows.saturating_mul(4).max(1 << 21);
        let mut cand_l: Vec<usize> = Vec::new();
        let mut cand_r: Vec<usize> = Vec::new();
        let mut cand_start: Vec<usize> = Vec::with_capacity(ln + 1);
        let mut keybuf = Vec::new();
        for l in 0..ln {
            cand_start.push(cand_l.len());
            if !lkey.is_null_at(l) {
                keybuf.clear();
                lkey.group_key_at(l, &mut keybuf);
                if let Some(cands) = table.get(&keybuf) {
                    for &r in cands {
                        cand_l.push(l);
                        cand_r.push(r);
                    }
                }
            }
            if cand_l.len() > pair_cap {
                return Err(RuntimeError::ResourceExhausted);
            }
        }
        cand_start.push(cand_l.len());

        let n_cand = cand_l.len();
        self.counter.eval_units += n_cand as u64;
        let keep: Vec<bool> = if n_cand == 0 {
            Vec::new()
        } else {
            let pairs = gather_pair_batch(&left, &right, &cols, &cand_l, &cand_r);
            let c = eval_batch(
                self,
                full_cond,
                &pairs,
                &RowSet::All(n_cand),
                outer,
                used_outer,
            )?;
            (0..n_cand).map(|i| c.is_truthy_at(i)).collect()
        };

        let mut emit: Vec<(Option<usize>, Option<usize>)> = Vec::new();
        let mut right_matched = vec![false; rn];
        for l in 0..ln {
            let mut matched = false;
            for k in cand_start[l]..cand_start[l + 1] {
                if keep[k] {
                    matched = true;
                    right_matched[cand_r[k]] = true;
                    emit.push((Some(l), Some(cand_r[k])));
                    if emit.len() > self.limits.max_rows {
                        return Err(RuntimeError::ResourceExhausted);
                    }
                }
            }
            if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                emit.push((Some(l), None));
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (r, m) in right_matched.iter().enumerate() {
                if !m {
                    emit.push((None, Some(r)));
                }
            }
        }
        self.counter.rows_materialized += emit.len() as u64;
        Ok(join_output(&left, &right, cols, &emit))
    }

    /// Batch filter: selection-vector refinement, no column copies.
    fn filter_batch(
        &mut self,
        rel: ColumnBatch,
        pred: &Expr,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<ColumnBatch, RuntimeError> {
        let n = rel.len();
        self.counter.eval_units += n as u64;
        self.check_budget(0)?;
        let c = eval_batch(self, pred, &rel, &RowSet::All(n), outer, used_outer)?;
        let keep: Vec<usize> = (0..n).filter(|&i| c.is_truthy_at(i)).collect();
        self.counter.rows_materialized += keep.len() as u64;
        // The row engine checks the budget every 4096 rows mid-filter; one
        // post-charge check here aborts in every case it would have.
        self.check_budget(0)?;
        Ok(rel.select(&keep))
    }

    /// Batch projection: pure-passthrough projections re-reference the
    /// source columns (zero copy, selection preserved); anything with a
    /// computed expression materializes dense output columns.
    fn project_batch(
        &mut self,
        select: &[SelectItem],
        source: &ColumnBatch,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<ColumnBatch, RuntimeError> {
        let schema = schema_relation(source.cols.clone());
        let (cols, plan) = projection_plan(select, &schema)?;
        let n = source.len();
        self.counter.eval_units += (n * plan.len().max(1)) as u64;
        self.check_budget(0)?;
        let all_passthrough = plan.iter().all(|p| matches!(p, ProjStep::Passthrough(_)));
        let out = if all_passthrough {
            let columns = plan
                .iter()
                .map(|p| match p {
                    ProjStep::Passthrough(i) => Arc::clone(&source.columns[*i]),
                    ProjStep::Eval(_) => unreachable!(),
                })
                .collect();
            source.reproject(cols, columns)
        } else {
            let mut columns = Vec::with_capacity(plan.len());
            for p in &plan {
                match p {
                    ProjStep::Passthrough(i) => {
                        columns.push(Arc::new(source.gather_column(*i)));
                    }
                    ProjStep::Eval(e) => {
                        columns.push(eval_batch(
                            self,
                            e,
                            source,
                            &RowSet::All(n),
                            outer,
                            used_outer,
                        )?);
                    }
                }
            }
            ColumnBatch::new(cols, columns, n)
        };
        self.counter.rows_materialized += n as u64;
        self.check_budget(0)?;
        Ok(out)
    }

    /// Batch aggregation: vectorized group-key evaluation, then per-group
    /// reductions over selection subsets.
    fn aggregate_batch(
        &mut self,
        select: &[SelectItem],
        group_by: &[Expr],
        having: Option<&Expr>,
        source: &ColumnBatch,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<ColumnBatch, RuntimeError> {
        let n = source.len();
        // Group rows by the GROUP BY key (single group if absent).
        let mut groups: Vec<Vec<usize>> = Vec::new();
        if group_by.is_empty() {
            groups.push((0..n).collect());
        } else {
            let mut gcols = Vec::with_capacity(group_by.len());
            for g in group_by {
                gcols.push(eval_batch(
                    self,
                    g,
                    source,
                    &RowSet::All(n),
                    outer,
                    used_outer,
                )?);
            }
            let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
            for i in 0..n {
                let mut key = Vec::new();
                for gc in &gcols {
                    gc.group_key_at(i, &mut key);
                }
                self.counter.hash_ops += 1;
                let gid = *index.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gid].push(i);
            }
        }

        // HAVING filters groups.
        let mut kept: Vec<&Vec<usize>> = Vec::new();
        for g in &groups {
            if group_by.is_empty() || !g.is_empty() {
                let keep = match having {
                    None => true,
                    Some(h) => self
                        .eval_in_group_batch(h, source, g, outer, used_outer)?
                        .is_truthy(),
                };
                if keep {
                    kept.push(g);
                }
            }
        }

        let cols = crate::plan::aggregate_output_cols(select);
        let mut builders: Vec<ColumnBuilder> = select
            .iter()
            .map(|_| ColumnBuilder::with_capacity(kept.len()))
            .collect();
        let mut n_out = 0usize;
        for g in kept {
            self.check_budget(0)?;
            for (k, item) in select.iter().enumerate() {
                let v = self.eval_in_group_batch(&item.expr, source, g, outer, used_outer)?;
                builders[k].push(v);
            }
            n_out += 1;
        }
        let columns: Vec<Arc<Column>> =
            builders.into_iter().map(|b| Arc::new(b.finish())).collect();
        self.counter.rows_materialized += n_out as u64;
        Ok(ColumnBatch::new(cols, columns, n_out))
    }

    /// Batch twin of [`ExecCtx::eval_in_group`]: aggregate calls reduce a
    /// vectorized argument column over the group's rows; bare columns take
    /// their value from the first row of the group.
    fn eval_in_group_batch(
        &mut self,
        expr: &Expr,
        source: &ColumnBatch,
        group: &[usize],
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<Value, RuntimeError> {
        match expr {
            Expr::Function(f) if f.aggregate.is_some() => {
                let agg = f.aggregate.unwrap();
                self.counter.eval_units += group.len() as u64;
                match agg {
                    Aggregate::Count => {
                        if f.args.is_empty() || matches!(f.args.first(), Some(Expr::Wildcard(_))) {
                            return Ok(Value::Int(group.len() as i64));
                        }
                        let col = eval_batch(
                            self,
                            &f.args[0],
                            source,
                            &RowSet::Subset(group),
                            outer,
                            used_outer,
                        )?;
                        let mut count = 0i64;
                        let mut seen = std::collections::HashSet::new();
                        for j in 0..col.len() {
                            if !col.is_null_at(j) {
                                if f.distinct {
                                    let mut k = Vec::new();
                                    col.group_key_at(j, &mut k);
                                    if seen.insert(k) {
                                        count += 1;
                                    }
                                } else {
                                    count += 1;
                                }
                            }
                        }
                        Ok(Value::Int(count))
                    }
                    Aggregate::Min | Aggregate::Max | Aggregate::Sum | Aggregate::Avg => {
                        let arg = f.args.first().ok_or_else(|| {
                            RuntimeError::TypeError(format!("{}() needs an argument", agg.name()))
                        })?;
                        let col = eval_batch(
                            self,
                            arg,
                            source,
                            &RowSet::Subset(group),
                            outer,
                            used_outer,
                        )?;
                        let mut acc: Option<Value> = None;
                        let mut sum = 0.0f64;
                        let mut all_int = true;
                        let mut count = 0u64;
                        for j in 0..col.len() {
                            let v = col.get(j);
                            if v.is_null() {
                                continue;
                            }
                            count += 1;
                            match agg {
                                Aggregate::Min => {
                                    acc = Some(match acc {
                                        None => v,
                                        Some(a) => {
                                            if v.total_cmp(&a).is_lt() {
                                                v
                                            } else {
                                                a
                                            }
                                        }
                                    });
                                }
                                Aggregate::Max => {
                                    acc = Some(match acc {
                                        None => v,
                                        Some(a) => {
                                            if v.total_cmp(&a).is_gt() {
                                                v
                                            } else {
                                                a
                                            }
                                        }
                                    });
                                }
                                _ => {
                                    if !matches!(v, Value::Int(_)) {
                                        all_int = false;
                                    }
                                    sum += v.as_f64().ok_or_else(|| {
                                        RuntimeError::TypeError(format!(
                                            "{}() over non-numeric values",
                                            agg.name()
                                        ))
                                    })?;
                                }
                            }
                        }
                        match agg {
                            Aggregate::Min | Aggregate::Max => Ok(acc.unwrap_or(Value::Null)),
                            Aggregate::Sum => {
                                if count == 0 {
                                    Ok(Value::Null)
                                } else if all_int {
                                    Ok(Value::Int(sum as i64))
                                } else {
                                    Ok(Value::Float(sum))
                                }
                            }
                            Aggregate::Avg => {
                                if count == 0 {
                                    Ok(Value::Null)
                                } else {
                                    Ok(Value::Float(sum / count as f64))
                                }
                            }
                            Aggregate::Count => unreachable!(),
                        }
                    }
                }
            }
            Expr::Literal(l) => Ok(crate::eval::literal_value(l)),
            // Composite expressions: recurse, aggregating sub-calls.
            Expr::Binary { left, op, right } => {
                let l = self.eval_in_group_batch(left, source, group, outer, used_outer)?;
                let r = self.eval_in_group_batch(right, source, group, outer, used_outer)?;
                apply_binary(&l, *op, &r)
            }
            Expr::Logical { left, and, right } => {
                let l = self.eval_in_group_batch(left, source, group, outer, used_outer)?;
                if *and && !l.is_truthy() {
                    return Ok(Value::Bool(false));
                }
                if !*and && l.is_truthy() {
                    return Ok(Value::Bool(true));
                }
                let r = self.eval_in_group_batch(right, source, group, outer, used_outer)?;
                Ok(Value::Bool(if *and {
                    l.is_truthy() && r.is_truthy()
                } else {
                    l.is_truthy() || r.is_truthy()
                }))
            }
            Expr::Unary { op, expr } => {
                let v = self.eval_in_group_batch(expr, source, group, outer, used_outer)?;
                match op {
                    UnaryOp::Neg => v.neg(),
                    UnaryOp::Plus => Ok(v),
                    UnaryOp::Not => Ok(Value::Bool(!v.is_truthy())),
                }
            }
            Expr::Function(f) => {
                // Scalar function over aggregated arguments.
                let mut args = Vec::with_capacity(f.args.len());
                for a in &f.args {
                    args.push(self.eval_in_group_batch(a, source, group, outer, used_outer)?);
                }
                let (v, cost) = self.fns.call(&f.name.canonical(), &args)?;
                self.counter.fn_units += cost;
                Ok(v)
            }
            // Bare columns etc.: first row of the group (empty group → NULL).
            other => match group.first() {
                Some(&i) => {
                    let col = eval_batch(
                        self,
                        other,
                        source,
                        &RowSet::Subset(&[i]),
                        outer,
                        used_outer,
                    )?;
                    Ok(col.get(0))
                }
                None => Ok(Value::Null),
            },
        }
    }

    /// Batch DISTINCT: keeps the first occurrence of every grouping key,
    /// as a selection refinement.
    fn distinct_batch(&mut self, rel: ColumnBatch) -> Result<ColumnBatch, RuntimeError> {
        let mut seen = std::collections::HashSet::new();
        let mut keep = Vec::new();
        for i in 0..rel.len() {
            self.counter.hash_ops += 1;
            let p = rel.phys(i);
            let mut key = Vec::new();
            for c in &rel.columns {
                c.group_key_at(p, &mut key);
            }
            if seen.insert(key) {
                keep.push(i);
            }
        }
        Ok(rel.select(&keep))
    }

    /// Batch ORDER BY: vectorized key columns, then an index sort that
    /// permutes the selection vector — rows never move.
    fn order_by_batch(
        &mut self,
        order: &[OrderByItem],
        projected: ColumnBatch,
        source: &ColumnBatch,
        outer: &[Scope<'_>],
        used_outer: &mut bool,
    ) -> Result<ColumnBatch, RuntimeError> {
        let n = projected.len();
        // Key resolution tries the projected columns (select aliases)
        // first, then the source row — same fallback as the row engine;
        // name resolution is schema-dependent, so all rows take one path.
        let paired = !source.cols.is_empty() && source.len() == n;
        let mut key_cols: Vec<Arc<Column>> = Vec::with_capacity(order.len());
        for ob in order {
            let units_before = self.counter.units();
            let col = match eval_batch(
                self,
                &ob.expr,
                &projected,
                &RowSet::All(n),
                outer,
                used_outer,
            ) {
                Ok(c) => c,
                Err(RuntimeError::UnknownColumn(_)) | Err(RuntimeError::AmbiguousColumn(_))
                    if paired && self.counter.units() == units_before =>
                {
                    // Resolution-only failure (bare source column): the
                    // failed attempt charged nothing, so the row engine's
                    // per-row retry totals the same as one vectorized
                    // pass over the source.
                    eval_batch(self, &ob.expr, source, &RowSet::All(n), outer, used_outer)?
                }
                // A *charging* failed attempt (e.g. a correlated subquery
                // ran before hitting the unknown column) is repeated per
                // row by the row engine — a vectorized fallback cannot
                // reproduce those totals, so escalate to the
                // authoritative row-engine replay.
                Err(e) => return Err(e),
            };
            key_cols.push(col);
        }
        let descs: Vec<bool> = order.iter().map(|o| o.desc).collect();
        // Sort the *same element type* the row engine sorts — `(keys,
        // row)` pairs, with a single-value dummy row carrying the index.
        // std's stable sort picks its strategy (and therefore its exact
        // comparison count, which is a charged label!) based on the
        // element type, so sorting bare indices would diverge from the
        // row engine by a few comparisons.
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(n);
        for i in 0..n {
            let keys: Vec<Value> = key_cols.iter().map(|c| c.get(i)).collect();
            keyed.push((keys, vec![Value::Int(i as i64)]));
        }
        let mut cmp_count = 0u64;
        keyed.sort_by(|a, b| {
            cmp_count += 1;
            for (k, desc) in descs.iter().enumerate() {
                let ord = a.0[k].total_cmp(&b.0[k]);
                if ord != std::cmp::Ordering::Equal {
                    return if *desc { ord.reverse() } else { ord };
                }
            }
            std::cmp::Ordering::Equal
        });
        self.counter.sort_cmps += cmp_count;
        let idx: Vec<usize> = keyed
            .iter()
            .map(|(_, r)| r[0].as_i64().unwrap_or(0) as usize)
            .collect();
        Ok(projected.select(&idx))
    }
}

/// Gather the combined (left ++ right) columns for a candidate pair list
/// as a dense batch, for vectorized ON-condition evaluation.
fn gather_pair_batch(
    left: &ColumnBatch,
    right: &ColumnBatch,
    cols: &[ColRef],
    li: &[usize],
    ri: &[usize],
) -> ColumnBatch {
    let lphys: Vec<usize> = li.iter().map(|&i| left.phys(i)).collect();
    let rphys: Vec<usize> = ri.iter().map(|&i| right.phys(i)).collect();
    let mut columns = Vec::with_capacity(left.width() + right.width());
    for c in &left.columns {
        columns.push(Arc::new(gather(c, &lphys)));
    }
    for c in &right.columns {
        columns.push(Arc::new(gather(c, &rphys)));
    }
    ColumnBatch::new(cols.to_vec(), columns, li.len())
}

/// Materialize the join output for an emission list of (left, right)
/// logical rows; `None` on either side means outer-join NULL padding.
fn join_output(
    left: &ColumnBatch,
    right: &ColumnBatch,
    cols: Vec<ColRef>,
    emit: &[(Option<usize>, Option<usize>)],
) -> ColumnBatch {
    let lphys: Vec<Option<usize>> = emit.iter().map(|(l, _)| l.map(|i| left.phys(i))).collect();
    let rphys: Vec<Option<usize>> = emit.iter().map(|(_, r)| r.map(|i| right.phys(i))).collect();
    let mut columns = Vec::with_capacity(left.width() + right.width());
    for c in &left.columns {
        columns.push(Arc::new(gather_padded(c, &lphys)));
    }
    for c in &right.columns {
        columns.push(Arc::new(gather_padded(c, &rphys)));
    }
    ColumnBatch::new(cols, columns, emit.len())
}

/// Gather with NULL padding for `None` indices; falls back to the dense
/// typed gather when no padding is present.
fn gather_padded(src: &Column, idx: &[Option<usize>]) -> Column {
    if idx.iter().all(|i| i.is_some()) {
        let dense: Vec<usize> = idx.iter().map(|i| i.unwrap()).collect();
        return gather(src, &dense);
    }
    let mut b = ColumnBuilder::with_capacity(idx.len());
    for i in idx {
        b.push(match i {
            Some(i) => src.get(*i),
            None => Value::Null,
        });
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, ColumnSpec, TableSpec};
    use crate::exec::{ExecCtx, ExecLimits};
    use crate::functions::FnRegistry;
    use crate::plan::lower;
    use sqlan_sql::Statement;

    fn catalog() -> Catalog {
        Catalog::generate(
            &[TableSpec::new("t", 100)
                .column("id", ColumnSpec::SeqId)
                .column("x", ColumnSpec::IntUniform(0, 9))],
            5,
        )
    }

    /// `Filter` nodes inside an item tree execute like residual filters:
    /// same rows, same cost charges. (No current pass emits them — they
    /// are the tree form future pushdown-below-join passes produce — but
    /// the executor must already run them correctly.)
    #[test]
    fn filter_node_in_item_tree_matches_residual_filter() {
        let cat = catalog();
        let fns = FnRegistry::standard();
        let script = sqlan_sql::parse_script("SELECT id FROM t WHERE x > 4").unwrap();
        let q = match &script.statements[0] {
            Statement::Select(q) => q.clone(),
            _ => unreachable!(),
        };

        // Naive plan: the predicate sits in `residual`.
        let residual_plan = lower(&q);
        let mut ctx = ExecCtx::new(&cat, &fns, ExecLimits::default());
        let (want, _) = ctx.exec_plan(&residual_plan, &[]).unwrap();
        let want_counter = ctx.counter;

        // Tree plan: the same predicate as a Filter node over the scan.
        let mut tree_plan = lower(&q);
        let pred = tree_plan.residual.remove(0);
        let scan = tree_plan.items.remove(0);
        tree_plan.items.insert(
            0,
            LogicalPlan::Filter {
                input: Box::new(scan),
                predicate: pred,
            },
        );
        let mut ctx2 = ExecCtx::new(&cat, &fns, ExecLimits::default());
        let (got, _) = ctx2.exec_plan(&tree_plan, &[]).unwrap();

        assert_eq!(want.rows, got.rows);
        assert_eq!(want_counter, ctx2.counter);
        assert!(!got.rows.is_empty());
    }
}
