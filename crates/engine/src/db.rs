//! The top-level `Database`: parse → execute → labeled outcome.
//!
//! This is the label generator for synthesized workloads: given arbitrary
//! statement text it produces exactly the three properties the paper
//! extracts from the SDSS logs — error class, answer size (`rows`), and
//! CPU time (`busy`) — deterministically.

use serde::{Deserialize, Serialize};

use sqlan_sql::{parse, Query, Statement};

use crate::catalog::Catalog;
use crate::cost::{estimate_cost_with, CostCounter, CostEstimate};
use crate::error::{ErrorClass, RuntimeError};
use crate::exec::{Engine, ExecCtx, ExecLimits, OpStats};
use crate::functions::FnRegistry;
use crate::optimizer::{OptLevel, Optimizer};
use crate::relation::Relation;

/// The observable outcome of submitting one statement to the database —
/// the ground-truth labels of one workload entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Success / non-severe / severe (§4.1).
    pub error_class: ErrorClass,
    /// Rows retrieved; `-1` when the query did not run (matches the SDSS
    /// convention: "ranges from a minimum of -1 (the query did not run due
    /// to an error)", Figure 6c).
    pub answer_size: i64,
    /// Deterministic CPU seconds (`SqlLog.busy` analogue).
    pub cpu_seconds: f64,
    /// Human-readable error description, if any.
    pub error_message: Option<String>,
}

/// An executable database instance.
///
/// `Database` is immutable after construction: every `submit`/`run_query`
/// builds its own [`ExecCtx`] (plan cache, cost counter, row budget), so
/// one instance can be shared by any number of concurrent reader threads.
/// The assertion below makes that `Send + Sync` guarantee a compile-time
/// contract — adding interior mutability here would break the
/// data-parallel workload labeler and must be confined to `ExecCtx`.
#[derive(Debug, Clone)]
pub struct Database {
    pub catalog: Catalog,
    pub fns: FnRegistry,
    pub limits: ExecLimits,
    pub optimizer: Optimizer,
    /// Execution engine (`SQLAN_ENGINE` env or [`Database::with_engine`]).
    /// Both engines are label-identical: the columnar engine's success
    /// path charges the same [`CostCounter`] totals, and its error paths
    /// are replayed through the row engine (whose charge *order* at the
    /// abort point is the label contract).
    pub engine: Engine,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
};

impl Database {
    pub fn new(catalog: Catalog) -> Self {
        Database {
            catalog,
            fns: FnRegistry::standard(),
            limits: ExecLimits::default(),
            optimizer: Optimizer::default(),
            engine: Engine::from_env(),
        }
    }

    pub fn with_limits(mut self, limits: ExecLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Select the execution engine explicitly (overriding `SQLAN_ENGINE`).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Select the optimizer pass set by level. [`OptLevel::Default`] is
    /// the label-stable set the workload generator relies on.
    pub fn with_opt_level(mut self, level: OptLevel) -> Self {
        self.optimizer = Optimizer::with_level(level);
        self
    }

    /// Install a custom pass pipeline (per-pass toggling).
    pub fn with_optimizer(mut self, optimizer: Optimizer) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Submit raw statement text, as an end user would. Never panics.
    pub fn submit(&self, text: &str) -> QueryOutcome {
        let outcome = parse(text);
        let script = match outcome.result {
            Err(e) => {
                // Rejected before reaching the server: severe (§4.1).
                return QueryOutcome {
                    error_class: ErrorClass::Severe,
                    answer_size: -1,
                    cpu_seconds: 0.0,
                    error_message: Some(e.to_string()),
                };
            }
            Ok(s) => s,
        };
        // An unterminated string is a portal-level rejection too.
        if outcome.lex_report.unterminated_string || outcome.lex_report.unterminated_comment {
            return QueryOutcome {
                error_class: ErrorClass::Severe,
                answer_size: -1,
                cpu_seconds: 0.0,
                error_message: Some("unterminated literal".into()),
            };
        }

        let mut counter = CostCounter::default();
        let mut answer: i64 = 0;
        for stmt in &script.statements {
            match self.run_statement(stmt, &mut counter) {
                Ok(rows) => answer = rows,
                Err(e) => {
                    return QueryOutcome {
                        error_class: ErrorClass::NonSevere,
                        answer_size: -1,
                        cpu_seconds: counter.cpu_seconds(),
                        error_message: Some(e.to_string()),
                    };
                }
            }
        }
        QueryOutcome {
            error_class: ErrorClass::Success,
            answer_size: answer,
            cpu_seconds: counter.cpu_seconds(),
            error_message: None,
        }
    }

    /// Execute one parsed statement, returning its answer size.
    pub fn run_statement(
        &self,
        stmt: &Statement,
        counter: &mut CostCounter,
    ) -> Result<i64, RuntimeError> {
        match stmt {
            Statement::Select(q) => self.query_row_count(q, counter),
            Statement::Execute { name, arg_count } => {
                // Stored procedures: known `sp`-prefixed names succeed with
                // a fixed moderate cost; anything else is unknown.
                let base = name.base().to_ascii_lowercase();
                if base.starts_with("sp") || base.starts_with("usp") {
                    counter.eval_units += 5_000 + (*arg_count as u64) * 500;
                    Ok(1)
                } else {
                    Err(RuntimeError::UnknownFunction(name.canonical()))
                }
            }
            Statement::Ddl { verb: _, object } => {
                // DDL against "MyDB"-style user namespaces succeeds; DDL
                // against shared catalog tables is denied (the portal's
                // read-only enforcement).
                match object {
                    Some(o)
                        if self.catalog.get(&o.canonical()).is_some()
                            && !o.canonical().contains("mydb") =>
                    {
                        Err(RuntimeError::Unsupported(format!(
                            "cannot modify shared table `{}`",
                            o.canonical()
                        )))
                    }
                    _ => {
                        counter.eval_units += 1_000;
                        Ok(0)
                    }
                }
            }
            Statement::Dml { verb, table, query } => {
                use sqlan_sql::DmlVerb;
                // Target must be writable (MyDB); shared tables are denied.
                if let Some(t) = table {
                    if self.catalog.get(&t.canonical()).is_some() && !t.canonical().contains("mydb")
                    {
                        return Err(RuntimeError::Unsupported(format!(
                            "cannot modify shared table `{}`",
                            t.canonical()
                        )));
                    }
                }
                match verb {
                    DmlVerb::Insert => match query {
                        Some(q) if !q.select.is_empty() => self.query_row_count(q, counter),
                        _ => {
                            counter.eval_units += 10;
                            Ok(1)
                        }
                    },
                    DmlVerb::Update | DmlVerb::Delete => {
                        // Affected rows = rows matching the WHERE clause of
                        // a scan over the target, when the target exists.
                        match (table, query) {
                            (Some(t), Some(q)) => {
                                if let Some(tab) = self.catalog.get(&t.canonical()) {
                                    let mut scan = Query::empty();
                                    scan.select.push(sqlan_sql::SelectItem {
                                        expr: sqlan_sql::Expr::Wildcard(None),
                                        alias: None,
                                    });
                                    scan.from.push(sqlan_sql::FromItem {
                                        factor: sqlan_sql::TableFactor::Table {
                                            name: sqlan_sql::QualifiedName::single(
                                                tab.name.clone(),
                                            ),
                                            alias: None,
                                        },
                                        joins: Vec::new(),
                                    });
                                    scan.where_clause = q.where_clause.clone();
                                    self.query_row_count(&scan, counter)
                                } else {
                                    // Unknown user table: pretend empty.
                                    counter.eval_units += 10;
                                    Ok(0)
                                }
                            }
                            _ => Ok(0),
                        }
                    }
                }
            }
            Statement::Procedural => {
                counter.eval_units += 10;
                Ok(0)
            }
        }
    }

    /// Execute a SELECT and return the full relation.
    ///
    /// Under the columnar engine, any execution error falls back to a
    /// fresh row-engine replay: error outcomes carry the cost counter *at
    /// the abort point*, and only the row engine's charge order defines
    /// that label. Success paths are charge-sum-identical by construction
    /// (enforced by the differential test suite), so no replay is needed.
    pub fn run_query(
        &self,
        q: &Query,
        counter: &mut CostCounter,
    ) -> Result<Relation, RuntimeError> {
        self.run_dispatch(q, counter, |batch| batch.to_relation(), |rel| rel)
    }

    /// Row-engine execution (the fallback/reference path).
    fn run_query_row(
        &self,
        q: &Query,
        counter: &mut CostCounter,
    ) -> Result<Relation, RuntimeError> {
        let mut ctx =
            ExecCtx::with_optimizer(&self.catalog, &self.fns, self.limits, &self.optimizer);
        let result = ctx.exec_query(q, &[]);
        counter.add(&ctx.counter);
        result.map(|(rel, _)| rel)
    }

    /// Answer size of a SELECT — the labeling hot path. The columnar
    /// engine reads the cardinality straight off the final batch without
    /// materializing any rows.
    fn query_row_count(&self, q: &Query, counter: &mut CostCounter) -> Result<i64, RuntimeError> {
        self.run_dispatch(
            q,
            counter,
            |batch| batch.len() as i64,
            |rel| rel.len() as i64,
        )
    }

    /// Engine dispatch with the columnar→row error-replay policy in one
    /// place: run the columnar engine and project its final batch with
    /// `from_batch`; on any columnar error — or under [`Engine::Row`] —
    /// run the row engine and project its relation with `from_rel`.
    fn run_dispatch<T>(
        &self,
        q: &Query,
        counter: &mut CostCounter,
        from_batch: impl FnOnce(crate::relation::ColumnBatch) -> T,
        from_rel: impl FnOnce(Relation) -> T,
    ) -> Result<T, RuntimeError> {
        if self.engine == Engine::Columnar {
            let mut ctx =
                ExecCtx::with_optimizer(&self.catalog, &self.fns, self.limits, &self.optimizer)
                    .with_engine(Engine::Columnar);
            if let Ok((batch, _)) = ctx.exec_query_batch(q, &[]) {
                counter.add(&ctx.counter);
                return Ok(from_batch(batch));
            }
            // Fall through: discard the columnar context and replay.
        }
        self.run_query_row(q, counter).map(from_rel)
    }

    /// EXPLAIN: render the optimized plan of every statement in `text`
    /// without executing anything. Returns `Err` with the parse error
    /// message for statements the portal would reject.
    pub fn explain(&self, text: &str) -> Result<String, String> {
        let script = parse(text).result.map_err(|e| e.to_string())?;
        let mut out = String::new();
        for (i, stmt) in script.statements.iter().enumerate() {
            if script.statements.len() > 1 {
                out.push_str(&format!("-- statement {}\n", i + 1));
            }
            match stmt {
                Statement::Select(q) => {
                    out.push_str(&self.optimizer.plan(q, &self.catalog).render());
                }
                Statement::Dml {
                    verb,
                    query: Some(q),
                    ..
                } => {
                    out.push_str(&format!("{verb:?}\n"));
                    out.push_str(&self.optimizer.plan(q, &self.catalog).render());
                }
                other => {
                    out.push_str(&format!("{}\n", statement_kind(other)));
                }
            }
        }
        Ok(out)
    }

    /// EXPLAIN ANALYZE: render the optimized plan of every statement in
    /// `text` **and execute it**, annotating the output with each
    /// operator's observed row count and cost-unit charges (in execution
    /// order), plus the statement's outcome labels. Observed charges
    /// include everything the operator evaluated — nested subqueries roll
    /// into the operator that ran them.
    pub fn explain_analyze(&self, text: &str) -> Result<String, String> {
        let script = parse(text).result.map_err(|e| e.to_string())?;
        let mut out = String::new();
        for (i, stmt) in script.statements.iter().enumerate() {
            if script.statements.len() > 1 {
                out.push_str(&format!("-- statement {}\n", i + 1));
            }
            match stmt {
                Statement::Select(q) => {
                    out.push_str(&self.optimizer.plan(q, &self.catalog).render());
                    self.analyze_select(q, &mut out);
                }
                other => {
                    // Non-SELECT statements have no operator pipeline; run
                    // them for their outcome labels only.
                    out.push_str(&format!("{}\n", statement_kind(other)));
                    let mut counter = CostCounter::default();
                    match self.run_statement(other, &mut counter) {
                        Ok(rows) => out.push_str(&format!(
                            "-- observed: rows={rows} cpu_seconds={:?}\n",
                            counter.cpu_seconds()
                        )),
                        Err(e) => out.push_str(&format!("-- observed: error: {e}\n")),
                    }
                }
            }
        }
        Ok(out)
    }

    /// Execute one SELECT with operator instrumentation and append the
    /// observations to `out`.
    fn analyze_select(&self, q: &Query, out: &mut String) {
        let run = |engine: Engine| -> (Vec<OpStats>, Result<usize, RuntimeError>, CostCounter) {
            let mut ctx =
                ExecCtx::with_optimizer(&self.catalog, &self.fns, self.limits, &self.optimizer)
                    .with_engine(engine)
                    .analyzed();
            let res = ctx.exec_query(q, &[]).map(|(rel, _)| rel.len());
            (ctx.take_observations(), res, ctx.counter)
        };
        let (obs, res, counter) = match run(self.engine) {
            // Columnar errors replay through the row engine, same as
            // normal execution: its abort-point charges are the labels.
            (_, Err(_), _) if self.engine == Engine::Columnar => run(Engine::Row),
            done => done,
        };
        let engine_name = match self.engine {
            Engine::Row => "row",
            Engine::Columnar => "columnar",
        };
        out.push_str(&format!(
            "-- observed (engine={engine_name}, operators in execution order)\n"
        ));
        for s in &obs {
            out.push_str(&format!(
                "--   rows={:<9} units=+{:<11} {}\n",
                s.rows, s.units, s.op
            ));
        }
        match res {
            Ok(rows) => out.push_str(&format!(
                "-- answer_size={rows} cpu_seconds={:?}\n",
                counter.cpu_seconds()
            )),
            Err(e) => out.push_str(&format!(
                "-- error: {e} (cpu_seconds={:?})\n",
                counter.cpu_seconds()
            )),
        }
    }

    /// Optimizer cost estimate for the `opt` baseline. Works even for
    /// statements that would fail at runtime (the real optimizer estimates
    /// before execution), and returns `None` only for unparseable text.
    /// Estimates walk the plan this database's own optimizer produces, so
    /// they track `with_opt_level`/`with_optimizer` configuration.
    pub fn estimate(&self, text: &str) -> Option<CostEstimate> {
        let script = parse(text).result.ok()?;
        let mut total = CostEstimate::default();
        for stmt in &script.statements {
            let e = estimate_cost_with(stmt, &self.catalog, &self.optimizer);
            total.total_cost += e.total_cost;
            total.est_rows = e.est_rows;
        }
        Some(total)
    }
}

/// One-line description of a non-query statement for EXPLAIN output.
fn statement_kind(stmt: &Statement) -> String {
    match stmt {
        Statement::Select(_) => "Select".to_string(),
        Statement::Execute { name, arg_count } => {
            format!("Execute {} ({arg_count} args)", name.canonical())
        }
        Statement::Ddl { verb, object } => format!(
            "Ddl {verb:?}{}",
            object
                .as_ref()
                .map(|o| format!(" {}", o.canonical()))
                .unwrap_or_default()
        ),
        Statement::Dml { verb, table, .. } => format!(
            "Dml {verb:?}{}",
            table
                .as_ref()
                .map(|t| format!(" {}", t.canonical()))
                .unwrap_or_default()
        ),
        Statement::Procedural => "Procedural".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnSpec, TableSpec};

    fn db() -> Database {
        let specs = vec![
            TableSpec::new("PhotoObj", 2_000)
                .column("objid", ColumnSpec::SeqId)
                .column("ra", ColumnSpec::Uniform(0.0, 360.0))
                .column("dec", ColumnSpec::Uniform(-90.0, 90.0))
                .column("type", ColumnSpec::Categorical(7))
                .column("flags", ColumnSpec::Bitmask(20))
                .column("u", ColumnSpec::Normal(19.0, 2.0))
                .column("g", ColumnSpec::Normal(18.5, 2.0)),
            TableSpec::new("SpecObj", 500)
                .column("specobjid", ColumnSpec::SeqId)
                .column("bestobjid", ColumnSpec::IntUniform(0, 1_999))
                .column("z", ColumnSpec::Uniform(0.0, 3.0))
                .column("class", ColumnSpec::StrChoice(&["GALAXY", "STAR", "QSO"])),
        ];
        Database::new(Catalog::generate(&specs, 42))
    }

    #[test]
    fn select_star_returns_all_rows() {
        let out = db().submit("SELECT * FROM PhotoObj");
        assert_eq!(out.error_class, ErrorClass::Success);
        assert_eq!(out.answer_size, 2_000);
        assert!(out.cpu_seconds > 0.0);
    }

    #[test]
    fn filters_reduce_answer_size() {
        let d = db();
        let all = d.submit("SELECT * FROM PhotoObj").answer_size;
        let some = d
            .submit("SELECT * FROM PhotoObj WHERE ra < 180")
            .answer_size;
        let none = d.submit("SELECT * FROM PhotoObj WHERE ra < -5").answer_size;
        assert!(some < all);
        assert!(some > 0);
        assert_eq!(none, 0);
    }

    #[test]
    fn count_star() {
        let d = db();
        let out = d.submit("SELECT count(*) FROM PhotoObj WHERE type = 0");
        assert_eq!(out.error_class, ErrorClass::Success);
        assert_eq!(out.answer_size, 1);
    }

    #[test]
    fn group_by_and_having() {
        let d = db();
        let rel = {
            let mut c = CostCounter::default();
            let q = match sqlan_sql::parse_script(
                "SELECT type, count(*) AS n FROM PhotoObj GROUP BY type HAVING count(*) > 10 ORDER BY n DESC",
            )
            .unwrap()
            .statements
            .remove(0)
            {
                Statement::Select(q) => q,
                _ => unreachable!(),
            };
            d.run_query(&q, &mut c).unwrap()
        };
        assert!(!rel.is_empty());
        // Sorted descending by count.
        let counts: Vec<i64> = rel.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        let mut sorted = counts.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(counts, sorted);
    }

    #[test]
    fn equijoin_comma_style_matches_explicit_join() {
        let d = db();
        let a = d.submit(
            "SELECT s.z FROM SpecObj s, PhotoObj p WHERE s.bestobjid = p.objid AND p.type = 0",
        );
        let b = d.submit(
            "SELECT s.z FROM SpecObj s INNER JOIN PhotoObj p ON s.bestobjid = p.objid WHERE p.type = 0",
        );
        assert_eq!(a.error_class, ErrorClass::Success);
        assert_eq!(a.answer_size, b.answer_size);
        assert!(a.answer_size > 0);
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let d = db();
        let inner = d
            .submit("SELECT p.objid FROM PhotoObj p INNER JOIN SpecObj s ON p.objid = s.bestobjid");
        let left =
            d.submit("SELECT p.objid FROM PhotoObj p LEFT JOIN SpecObj s ON p.objid = s.bestobjid");
        assert!(left.answer_size >= inner.answer_size);
        assert!(left.answer_size >= 2_000);
    }

    #[test]
    fn scalar_subquery_and_in_subquery() {
        let d = db();
        let out = d.submit("SELECT objid FROM PhotoObj WHERE ra > (SELECT avg(ra) FROM PhotoObj)");
        assert_eq!(out.error_class, ErrorClass::Success);
        assert!(out.answer_size > 0 && out.answer_size < 2_000);

        let out2 = d.submit(
            "SELECT z FROM SpecObj WHERE bestobjid IN (SELECT objid FROM PhotoObj WHERE type = 0)",
        );
        assert_eq!(out2.error_class, ErrorClass::Success);
        assert!(out2.answer_size > 0);
    }

    #[test]
    fn correlated_exists() {
        let d = db();
        let out = d.submit(
            "SELECT p.objid FROM PhotoObj p WHERE EXISTS \
             (SELECT 1 FROM SpecObj s WHERE s.bestobjid = p.objid)",
        );
        assert_eq!(out.error_class, ErrorClass::Success);
        assert!(out.answer_size > 0 && out.answer_size <= 500);
    }

    #[test]
    fn syntax_error_is_severe() {
        let out = db().submit("SELEC * FROMM PhotoObj");
        assert_eq!(out.error_class, ErrorClass::Severe);
        assert_eq!(out.answer_size, -1);
        assert_eq!(out.cpu_seconds, 0.0);
    }

    #[test]
    fn natural_language_is_severe() {
        let out = db().submit("show me all galaxies brighter than 18th magnitude");
        assert_eq!(out.error_class, ErrorClass::Severe);
    }

    #[test]
    fn unknown_table_is_non_severe() {
        let out = db().submit("SELECT * FROM NoSuchTable");
        assert_eq!(out.error_class, ErrorClass::NonSevere);
        assert_eq!(out.answer_size, -1);
    }

    #[test]
    fn unknown_column_is_non_severe() {
        let out = db().submit("SELECT nocolumn FROM PhotoObj");
        assert_eq!(out.error_class, ErrorClass::NonSevere);
    }

    #[test]
    fn division_by_zero_is_non_severe() {
        let out = db().submit("SELECT 1/0 FROM PhotoObj");
        assert_eq!(out.error_class, ErrorClass::NonSevere);
    }

    #[test]
    fn functions_in_where_charge_per_row() {
        let d = db();
        let plain = d.submit("SELECT objid FROM PhotoObj WHERE flags > 0");
        let heavy =
            d.submit("SELECT objid FROM PhotoObj WHERE flags & dbo.fPhotoFlags('BLENDED') > 0");
        assert_eq!(heavy.error_class, ErrorClass::Success);
        assert!(
            heavy.cpu_seconds > plain.cpu_seconds,
            "per-row function call must cost more: {} vs {}",
            heavy.cpu_seconds,
            plain.cpu_seconds
        );
    }

    #[test]
    fn top_and_order_by() {
        let d = db();
        let out = d.submit("SELECT TOP 7 objid FROM PhotoObj ORDER BY ra DESC");
        assert_eq!(out.answer_size, 7);
    }

    #[test]
    fn distinct_reduces_rows() {
        let d = db();
        let all = d.submit("SELECT type FROM PhotoObj").answer_size;
        let distinct = d.submit("SELECT DISTINCT type FROM PhotoObj").answer_size;
        assert!(distinct <= 7);
        assert!(distinct < all);
    }

    #[test]
    fn exec_known_proc_succeeds_unknown_fails() {
        let d = db();
        assert_eq!(
            d.submit("EXEC dbo.spGetNeighbors 1, 2").error_class,
            ErrorClass::Success
        );
        assert_eq!(
            d.submit("EXEC dbo.blah 1").error_class,
            ErrorClass::NonSevere
        );
    }

    #[test]
    fn ddl_on_mydb_succeeds_on_shared_fails() {
        let d = db();
        assert_eq!(
            d.submit("DROP TABLE mydb.results").error_class,
            ErrorClass::Success
        );
        assert_eq!(
            d.submit("DROP TABLE PhotoObj").error_class,
            ErrorClass::NonSevere
        );
    }

    #[test]
    fn outcome_is_deterministic() {
        let d = db();
        let sql = "SELECT type, count(*) FROM PhotoObj WHERE ra BETWEEN 10 AND 250 GROUP BY type";
        let a = d.submit(sql);
        let b = d.submit(sql);
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_available_for_failing_queries() {
        let d = db();
        assert!(d.estimate("SELECT * FROM NoSuchTable").is_some());
        assert!(d.estimate("complete garbage ~~~").is_none());
    }

    #[test]
    fn select_without_from() {
        let out = db().submit("SELECT 1");
        assert_eq!(out.error_class, ErrorClass::Success);
        assert_eq!(out.answer_size, 1);
    }

    #[test]
    fn explain_renders_optimized_plan() {
        let d = db();
        let plan = d
            .explain(
                "SELECT s.z FROM SpecObj s, PhotoObj p \
                 WHERE s.bestobjid = p.objid AND p.type = 0",
            )
            .unwrap();
        assert!(plan.contains("HashJoin"), "expected a hash join:\n{plan}");
        assert!(
            plan.contains("Filter (p.type = 0)"),
            "expected pushed filter:\n{plan}"
        );
        assert!(plan.contains("Scan"), "expected scans:\n{plan}");

        let naive = d
            .clone()
            .with_opt_level(crate::OptLevel::None)
            .explain("SELECT s.z FROM SpecObj s, PhotoObj p WHERE s.bestobjid = p.objid")
            .unwrap();
        assert!(
            naive.contains("CrossJoin"),
            "naive plan folds with cross joins:\n{naive}"
        );

        assert!(d.explain("SELEC nonsense").is_err());
        assert!(d
            .explain("DROP TABLE mydb.results")
            .unwrap()
            .contains("Ddl"));
    }

    #[test]
    fn update_counts_affected_rows() {
        // Shared tables are write-denied; unknown user tables affect 0 rows.
        let d = db();
        let out = d.submit("UPDATE mydb.mytable SET x = 1 WHERE y > 0");
        assert_eq!(out.error_class, ErrorClass::Success);
        assert_eq!(out.answer_size, 0);
    }
}
