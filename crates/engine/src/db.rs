//! The top-level `Database`: parse → execute → labeled outcome.
//!
//! This is the label generator for synthesized workloads: given arbitrary
//! statement text it produces exactly the three properties the paper
//! extracts from the SDSS logs — error class, answer size (`rows`), and
//! CPU time (`busy`) — deterministically.

use std::rc::Rc;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sqlan_sql::{parse, Literal, QualifiedName, Query, Statement};

use crate::catalog::Catalog;
use crate::cost::{estimate_cost_with, CostCounter, CostEstimate};
use crate::error::{ErrorClass, RuntimeError};
use crate::exec::{Engine, ExecCtx, ExecLimits, OpStats};
use crate::functions::FnRegistry;
use crate::optimizer::{OptLevel, Optimizer};
use crate::plan::QueryPlan;
use crate::plan_cache::{
    plan_cache_capacity_from_env, rebind_plan, rebind_statement, CachedTemplate, PlanCache,
    PlanCacheStats,
};
use crate::relation::Relation;

/// The observable outcome of submitting one statement to the database —
/// the ground-truth labels of one workload entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Success / non-severe / severe (§4.1).
    pub error_class: ErrorClass,
    /// Rows retrieved; `-1` when the query did not run (matches the SDSS
    /// convention: "ranges from a minimum of -1 (the query did not run due
    /// to an error)", Figure 6c).
    pub answer_size: i64,
    /// Deterministic CPU seconds (`SqlLog.busy` analogue).
    pub cpu_seconds: f64,
    /// Human-readable error description, if any.
    pub error_message: Option<String>,
}

/// An executable database instance.
///
/// `Database` is immutable after construction: every `submit`/`run_query`
/// builds its own [`ExecCtx`] (plan memo, cost counter, row budget), so
/// one instance can be shared by any number of concurrent reader threads.
/// The assertion below makes that `Send + Sync` guarantee a compile-time
/// contract.  The single sanctioned piece of interior mutability is the
/// template [`PlanCache`]: it is thread-safe, shared across clones, and
/// **result-invisible** — it only changes how an outcome is computed,
/// never what the outcome is (see `plan_cache.rs` for the rebind
/// contract).  Any other result-bearing mutable state must stay confined
/// to `ExecCtx`, or the data-parallel workload labeler breaks.
#[derive(Debug, Clone)]
pub struct Database {
    pub catalog: Catalog,
    pub fns: FnRegistry,
    pub limits: ExecLimits,
    pub optimizer: Optimizer,
    /// Execution engine (`SQLAN_ENGINE` env or [`Database::with_engine`]).
    /// Both engines are label-identical: the columnar engine's success
    /// path charges the same [`CostCounter`] totals, and its error paths
    /// are replayed through the row engine (whose charge *order* at the
    /// abort point is the label contract).
    pub engine: Engine,
    /// Template → optimized-plan cache (`SQLAN_PLAN_CACHE` env or
    /// [`Database::with_plan_cache`]); `None` when caching is disabled or
    /// the optimizer pass set is not [`Optimizer::cache_safe`].
    plan_cache: Option<Arc<PlanCache>>,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
};

impl Database {
    pub fn new(catalog: Catalog) -> Self {
        let optimizer = Optimizer::default();
        let plan_cache = Self::build_plan_cache(&optimizer, plan_cache_capacity_from_env());
        Database {
            catalog,
            fns: FnRegistry::standard(),
            limits: ExecLimits::default(),
            optimizer,
            engine: Engine::from_env(),
            plan_cache,
        }
    }

    /// A fresh cache of the given capacity, unless caching is disabled or
    /// the pass set is value-dependent (not [`Optimizer::cache_safe`]).
    fn build_plan_cache(optimizer: &Optimizer, capacity: Option<usize>) -> Option<Arc<PlanCache>> {
        match capacity {
            Some(n) if optimizer.cache_safe() => Some(Arc::new(PlanCache::new(n))),
            _ => None,
        }
    }

    pub fn with_limits(mut self, limits: ExecLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Select the execution engine explicitly (overriding `SQLAN_ENGINE`).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Select the optimizer pass set by level. [`OptLevel::Default`] is
    /// the label-stable set the workload generator relies on.
    ///
    /// Resets the plan cache: cached skeletons belong to a pass set, and
    /// value-dependent pass sets disable caching entirely.  Call
    /// [`Database::with_plan_cache`] *after* this to set an explicit
    /// capacity.
    pub fn with_opt_level(mut self, level: OptLevel) -> Self {
        self.optimizer = Optimizer::with_level(level);
        self.plan_cache = Self::build_plan_cache(&self.optimizer, plan_cache_capacity_from_env());
        self
    }

    /// Install a custom pass pipeline (per-pass toggling).  Resets the
    /// plan cache, same as [`Database::with_opt_level`].
    pub fn with_optimizer(mut self, optimizer: Optimizer) -> Self {
        self.optimizer = optimizer;
        self.plan_cache = Self::build_plan_cache(&self.optimizer, plan_cache_capacity_from_env());
        self
    }

    /// Set the template plan cache capacity explicitly, overriding
    /// `SQLAN_PLAN_CACHE`.  `0` disables caching.  A value-dependent
    /// optimizer pass set still disables the cache regardless.
    pub fn with_plan_cache(mut self, capacity: usize) -> Self {
        self.plan_cache =
            Self::build_plan_cache(&self.optimizer, (capacity > 0).then_some(capacity));
        self
    }

    /// Hit/miss/occupancy counters of the template plan cache, if one is
    /// active.
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.plan_cache.as_ref().map(|c| c.stats())
    }

    /// Submit raw statement text, as an end user would. Never panics.
    ///
    /// When the template plan cache is active, the text is fingerprinted
    /// first (one literal-stripping scan, no parse): a template hit skips
    /// the parse → plan pipeline and executes a rebound copy of the
    /// cached skeleton; a miss parses once with literal slots lifted to
    /// parameters and caches the optimized template for the next
    /// instance.  Anything irregular — unclean lex, parse error, slot
    /// mismatch — falls back to the uncached path, so outcomes (labels,
    /// error messages, charge order) are bit-identical with the cache on
    /// or off.
    ///
    /// Observability is write-only: when `SQLAN_OBS` is on, submits are
    /// counted by outcome class and cache bypasses are mirrored into the
    /// global registry, and span timings are recorded against any trace
    /// installed on the calling thread — none of it feeds back into how
    /// the outcome is computed.
    pub fn submit(&self, text: &str) -> QueryOutcome {
        let outcome = if let Some(cache) = &self.plan_cache {
            match self.submit_cached(cache, text) {
                Some(outcome) => outcome,
                None => {
                    if sqlan_obs::enabled() {
                        crate::obs::plan_cache_counters().bypass.inc();
                    }
                    self.submit_uncached(text)
                }
            }
        } else {
            self.submit_uncached(text)
        };
        if sqlan_obs::enabled() {
            let c = crate::obs::submit_counters();
            match outcome.error_class {
                ErrorClass::Success => c.success.inc(),
                ErrorClass::NonSevere => c.non_severe.inc(),
                ErrorClass::Severe => c.severe.inc(),
            }
        }
        outcome
    }

    fn submit_cached(&self, cache: &PlanCache, text: &str) -> Option<QueryOutcome> {
        let probe = sqlan_obs::trace::timed("cache_probe", 1, || sqlan_sql::fingerprint(text));
        // Portal-level lex rejections take the legacy path: its error
        // outcome (and its precedence against parse errors) is the label.
        if probe.report.unterminated_string || probe.report.unterminated_comment {
            return None;
        }
        if let Some(tpl) = cache.get(probe.fingerprint) {
            if tpl.param_count == probe.literals.len() {
                return Some(self.run_template(&tpl, &probe.literals));
            }
            // Defensive: equal fingerprints imply equal slot structure,
            // so this only fires on a 128-bit collision.
            return None;
        }
        // Miss: lex once more materializing tokens, parse with literal
        // slots lifted to `Expr::Param`, plan the template eagerly.
        let fp = sqlan_sql::lex_fingerprint(text);
        let script = match sqlan_obs::trace::timed("sql_parse", 1, || {
            sqlan_sql::parse_tokens(&fp.toks, fp.report, &fp.params).result
        }) {
            // Parse errors embed literal spellings in their messages —
            // never cache them; the legacy path reproduces them exactly.
            Err(_) => return None,
            Ok(s) => s,
        };
        let plans = sqlan_obs::trace::timed("plan", 1, || {
            script
                .statements
                .iter()
                .map(|stmt| match stmt {
                    Statement::Select(q) => Some(self.optimizer.plan(q, &self.catalog)),
                    _ => None,
                })
                .collect()
        });
        let tpl = Arc::new(CachedTemplate {
            script,
            plans,
            param_count: fp.literals.len(),
        });
        let outcome = self.run_template(&tpl, &fp.literals);
        cache.insert(fp.fingerprint, tpl);
        Some(outcome)
    }

    /// Execute one cached template instance: clone the template, splice
    /// the statement's literals into every parameter slot (statement and
    /// plan skeleton both), and run the same statement loop as
    /// [`Database::submit_uncached`].
    fn run_template(&self, tpl: &CachedTemplate, literals: &[Literal]) -> QueryOutcome {
        let mut counter = CostCounter::default();
        let mut answer: i64 = 0;
        for (stmt, plan) in tpl.script.statements.iter().zip(&tpl.plans) {
            let (stmt, seed) = sqlan_obs::trace::timed("rebind", 1, || {
                let mut stmt = stmt.clone();
                rebind_statement(&mut stmt, literals);
                let seed = plan.as_ref().map(|skeleton| {
                    let mut plan = skeleton.clone();
                    rebind_plan(&mut plan, literals);
                    Rc::new(plan)
                });
                (stmt, seed)
            });
            match sqlan_obs::trace::timed("execute", 1, || {
                self.run_statement_seeded(&stmt, &mut counter, seed)
            }) {
                Ok(rows) => answer = rows,
                Err(e) => {
                    return QueryOutcome {
                        error_class: ErrorClass::NonSevere,
                        answer_size: -1,
                        cpu_seconds: counter.cpu_seconds(),
                        error_message: Some(e.to_string()),
                    };
                }
            }
        }
        QueryOutcome {
            error_class: ErrorClass::Success,
            answer_size: answer,
            cpu_seconds: counter.cpu_seconds(),
            error_message: None,
        }
    }

    /// The uncached submit path: parse → execute, no templates involved.
    fn submit_uncached(&self, text: &str) -> QueryOutcome {
        let outcome = sqlan_obs::trace::timed("sql_parse", 1, || parse(text));
        let script = match outcome.result {
            Err(e) => {
                // Rejected before reaching the server: severe (§4.1).
                return QueryOutcome {
                    error_class: ErrorClass::Severe,
                    answer_size: -1,
                    cpu_seconds: 0.0,
                    error_message: Some(e.to_string()),
                };
            }
            Ok(s) => s,
        };
        // An unterminated string is a portal-level rejection too.
        if outcome.lex_report.unterminated_string || outcome.lex_report.unterminated_comment {
            return QueryOutcome {
                error_class: ErrorClass::Severe,
                answer_size: -1,
                cpu_seconds: 0.0,
                error_message: Some("unterminated literal".into()),
            };
        }

        let mut counter = CostCounter::default();
        let mut answer: i64 = 0;
        for stmt in &script.statements {
            match sqlan_obs::trace::timed("execute", 1, || self.run_statement(stmt, &mut counter)) {
                Ok(rows) => answer = rows,
                Err(e) => {
                    return QueryOutcome {
                        error_class: ErrorClass::NonSevere,
                        answer_size: -1,
                        cpu_seconds: counter.cpu_seconds(),
                        error_message: Some(e.to_string()),
                    };
                }
            }
        }
        QueryOutcome {
            error_class: ErrorClass::Success,
            answer_size: answer,
            cpu_seconds: counter.cpu_seconds(),
            error_message: None,
        }
    }

    /// Execute one parsed statement, returning its answer size.
    pub fn run_statement(
        &self,
        stmt: &Statement,
        counter: &mut CostCounter,
    ) -> Result<i64, RuntimeError> {
        self.run_statement_seeded(stmt, counter, None)
    }

    /// [`Database::run_statement`] with an optional pre-optimized plan
    /// for the top-level SELECT (the template cache's rebound skeleton).
    fn run_statement_seeded(
        &self,
        stmt: &Statement,
        counter: &mut CostCounter,
        seed: Option<Rc<QueryPlan>>,
    ) -> Result<i64, RuntimeError> {
        match stmt {
            Statement::Select(q) => self.query_row_count(q, counter, seed),
            Statement::Execute { name, arg_count } => {
                // Stored procedures: known `sp`-prefixed names succeed with
                // a fixed moderate cost; anything else is unknown.
                if starts_with_ci(name.base(), "sp") || starts_with_ci(name.base(), "usp") {
                    counter.eval_units += 5_000 + (*arg_count as u64) * 500;
                    Ok(1)
                } else {
                    Err(RuntimeError::UnknownFunction(name.canonical()))
                }
            }
            Statement::Ddl { verb: _, object } => {
                // DDL against "MyDB"-style user namespaces succeeds; DDL
                // against shared catalog tables is denied (the portal's
                // read-only enforcement).
                match object {
                    Some(o) if self.catalog.get(o.base()).is_some() && !name_mentions_mydb(o) => {
                        Err(RuntimeError::Unsupported(format!(
                            "cannot modify shared table `{}`",
                            o.canonical()
                        )))
                    }
                    _ => {
                        counter.eval_units += 1_000;
                        Ok(0)
                    }
                }
            }
            Statement::Dml { verb, table, query } => {
                use sqlan_sql::DmlVerb;
                // Target must be writable (MyDB); shared tables are denied.
                if let Some(t) = table {
                    if self.catalog.get(t.base()).is_some() && !name_mentions_mydb(t) {
                        return Err(RuntimeError::Unsupported(format!(
                            "cannot modify shared table `{}`",
                            t.canonical()
                        )));
                    }
                }
                match verb {
                    DmlVerb::Insert => match query {
                        Some(q) if !q.select.is_empty() => self.query_row_count(q, counter, None),
                        _ => {
                            counter.eval_units += 10;
                            Ok(1)
                        }
                    },
                    DmlVerb::Update | DmlVerb::Delete => {
                        // Affected rows = rows matching the WHERE clause of
                        // a scan over the target, when the target exists.
                        match (table, query) {
                            (Some(t), Some(q)) => {
                                if let Some(tab) = self.catalog.get(t.base()) {
                                    let mut scan = Query::empty();
                                    scan.select.push(sqlan_sql::SelectItem {
                                        expr: sqlan_sql::Expr::Wildcard(None),
                                        alias: None,
                                    });
                                    scan.from.push(sqlan_sql::FromItem {
                                        factor: sqlan_sql::TableFactor::Table {
                                            name: sqlan_sql::QualifiedName::single(
                                                tab.name.clone(),
                                            ),
                                            alias: None,
                                        },
                                        joins: Vec::new(),
                                    });
                                    scan.where_clause = q.where_clause.clone();
                                    self.query_row_count(&scan, counter, None)
                                } else {
                                    // Unknown user table: pretend empty.
                                    counter.eval_units += 10;
                                    Ok(0)
                                }
                            }
                            _ => Ok(0),
                        }
                    }
                }
            }
            Statement::Procedural => {
                counter.eval_units += 10;
                Ok(0)
            }
        }
    }

    /// Execute a SELECT and return the full relation.
    ///
    /// Under the columnar engine, any execution error falls back to a
    /// fresh row-engine replay: error outcomes carry the cost counter *at
    /// the abort point*, and only the row engine's charge order defines
    /// that label. Success paths are charge-sum-identical by construction
    /// (enforced by the differential test suite), so no replay is needed.
    pub fn run_query(
        &self,
        q: &Query,
        counter: &mut CostCounter,
    ) -> Result<Relation, RuntimeError> {
        self.run_dispatch(q, counter, None, |batch| batch.to_relation(), |rel| rel)
    }

    /// Row-engine execution (the fallback/reference path).
    fn run_query_row(
        &self,
        q: &Query,
        counter: &mut CostCounter,
        seed: Option<Rc<QueryPlan>>,
    ) -> Result<Relation, RuntimeError> {
        let mut ctx =
            ExecCtx::with_optimizer(&self.catalog, &self.fns, self.limits, &self.optimizer);
        if let Some(plan) = seed {
            ctx.seed_plan(q, plan);
        }
        let result = ctx.exec_query(q, &[]);
        counter.add(&ctx.counter);
        result.map(|(rel, _)| rel)
    }

    /// Answer size of a SELECT — the labeling hot path. The columnar
    /// engine reads the cardinality straight off the final batch without
    /// materializing any rows.
    fn query_row_count(
        &self,
        q: &Query,
        counter: &mut CostCounter,
        seed: Option<Rc<QueryPlan>>,
    ) -> Result<i64, RuntimeError> {
        self.run_dispatch(
            q,
            counter,
            seed,
            |batch| batch.len() as i64,
            |rel| rel.len() as i64,
        )
    }

    /// Engine dispatch with the columnar→row error-replay policy in one
    /// place: run the columnar engine and project its final batch with
    /// `from_batch`; on any columnar error — or under [`Engine::Row`] —
    /// run the row engine and project its relation with `from_rel`.
    /// `seed` is the template cache's rebound plan for `q`, if any; both
    /// engines receive it, so a cache hit never changes which plan runs.
    fn run_dispatch<T>(
        &self,
        q: &Query,
        counter: &mut CostCounter,
        seed: Option<Rc<QueryPlan>>,
        from_batch: impl FnOnce(crate::relation::ColumnBatch) -> T,
        from_rel: impl FnOnce(Relation) -> T,
    ) -> Result<T, RuntimeError> {
        if self.engine == Engine::Columnar {
            let mut ctx =
                ExecCtx::with_optimizer(&self.catalog, &self.fns, self.limits, &self.optimizer)
                    .with_engine(Engine::Columnar);
            if let Some(plan) = &seed {
                ctx.seed_plan(q, Rc::clone(plan));
            }
            if let Ok((batch, _)) = ctx.exec_query_batch(q, &[]) {
                counter.add(&ctx.counter);
                return Ok(from_batch(batch));
            }
            // Fall through: discard the columnar context and replay.
        }
        self.run_query_row(q, counter, seed).map(from_rel)
    }

    /// EXPLAIN: render the optimized plan of every statement in `text`
    /// without executing anything. Returns `Err` with the parse error
    /// message for statements the portal would reject.
    pub fn explain(&self, text: &str) -> Result<String, String> {
        let script = parse(text).result.map_err(|e| e.to_string())?;
        let mut out = String::new();
        for (i, stmt) in script.statements.iter().enumerate() {
            if script.statements.len() > 1 {
                out.push_str(&format!("-- statement {}\n", i + 1));
            }
            match stmt {
                Statement::Select(q) => {
                    out.push_str(&self.optimizer.plan(q, &self.catalog).render());
                }
                Statement::Dml {
                    verb,
                    query: Some(q),
                    ..
                } => {
                    out.push_str(&format!("{verb:?}\n"));
                    out.push_str(&self.optimizer.plan(q, &self.catalog).render());
                }
                other => {
                    out.push_str(&format!("{}\n", statement_kind(other)));
                }
            }
        }
        out.push_str(&self.plan_cache_provenance(text));
        Ok(out)
    }

    /// One `-- plan cache: …` line describing how [`Database::submit`]
    /// would treat this text.  Probe-only: no counters move, nothing is
    /// inserted, LRU stamps stay put.
    fn plan_cache_provenance(&self, text: &str) -> String {
        let Some(cache) = &self.plan_cache else {
            return "-- plan cache: status=off\n".to_string();
        };
        let probe = sqlan_sql::fingerprint(text);
        if probe.report.unterminated_string || probe.report.unterminated_comment {
            return "-- plan cache: status=bypass (unclean lex)\n".to_string();
        }
        let status = if cache.contains(probe.fingerprint) {
            "hit"
        } else {
            "miss"
        };
        format!(
            "-- plan cache: status={status} fp={:#034x} params={}\n",
            probe.fingerprint,
            probe.literals.len()
        )
    }

    /// EXPLAIN ANALYZE: render the optimized plan of every statement in
    /// `text` **and execute it**, annotating the output with each
    /// operator's observed row count and cost-unit charges (in execution
    /// order), plus the statement's outcome labels. Observed charges
    /// include everything the operator evaluated — nested subqueries roll
    /// into the operator that ran them.
    pub fn explain_analyze(&self, text: &str) -> Result<String, String> {
        let t_parse = std::time::Instant::now();
        let script = parse(text).result.map_err(|e| e.to_string())?;
        let parse_ns = t_parse.elapsed().as_nanos() as u64;
        let mut out = String::new();
        for (i, stmt) in script.statements.iter().enumerate() {
            if script.statements.len() > 1 {
                out.push_str(&format!("-- statement {}\n", i + 1));
            }
            match stmt {
                Statement::Select(q) => {
                    let t_plan = std::time::Instant::now();
                    let rendered = self.optimizer.plan(q, &self.catalog).render();
                    let plan_ns = t_plan.elapsed().as_nanos() as u64;
                    out.push_str(&rendered);
                    let t_exec = std::time::Instant::now();
                    self.analyze_select(q, &mut out);
                    let exec_ns = t_exec.elapsed().as_nanos() as u64;
                    out.push_str(&format!(
                        "-- wall: parse={}us plan={}us execute={}us\n",
                        parse_ns / 1_000,
                        plan_ns / 1_000,
                        exec_ns / 1_000
                    ));
                }
                other => {
                    // Non-SELECT statements have no operator pipeline; run
                    // them for their outcome labels only.
                    out.push_str(&format!("{}\n", statement_kind(other)));
                    let mut counter = CostCounter::default();
                    match self.run_statement(other, &mut counter) {
                        Ok(rows) => out.push_str(&format!(
                            "-- observed: rows={rows} cpu_seconds={:?}\n",
                            counter.cpu_seconds()
                        )),
                        Err(e) => out.push_str(&format!("-- observed: error: {e}\n")),
                    }
                }
            }
        }
        out.push_str(&self.plan_cache_provenance(text));
        Ok(out)
    }

    /// Execute one SELECT with operator instrumentation and append the
    /// observations to `out`.
    fn analyze_select(&self, q: &Query, out: &mut String) {
        let run = |engine: Engine| -> (Vec<OpStats>, Result<usize, RuntimeError>, CostCounter) {
            let mut ctx =
                ExecCtx::with_optimizer(&self.catalog, &self.fns, self.limits, &self.optimizer)
                    .with_engine(engine)
                    .analyzed();
            let res = ctx.exec_query(q, &[]).map(|(rel, _)| rel.len());
            (ctx.take_observations(), res, ctx.counter)
        };
        let (obs, res, counter) = match run(self.engine) {
            // Columnar errors replay through the row engine, same as
            // normal execution: its abort-point charges are the labels.
            (_, Err(_), _) if self.engine == Engine::Columnar => run(Engine::Row),
            done => done,
        };
        let engine_name = match self.engine {
            Engine::Row => "row",
            Engine::Columnar => "columnar",
        };
        // Bridge the per-operator observations into the global registry
        // so EXPLAIN ANALYZE runs show up on /metrics?format=prom.
        if sqlan_obs::enabled() {
            let h = crate::obs::op_wall_hist();
            for s in &obs {
                h.record(s.wall_ns);
            }
        }
        out.push_str(&format!(
            "-- observed (engine={engine_name}, operators in execution order)\n"
        ));
        for s in &obs {
            out.push_str(&format!(
                "--   rows={:<9} units=+{:<11} wall=+{:<8} {}\n",
                s.rows,
                s.units,
                format!("{}us", s.wall_ns / 1_000),
                s.op
            ));
        }
        match res {
            Ok(rows) => out.push_str(&format!(
                "-- answer_size={rows} cpu_seconds={:?}\n",
                counter.cpu_seconds()
            )),
            Err(e) => out.push_str(&format!(
                "-- error: {e} (cpu_seconds={:?})\n",
                counter.cpu_seconds()
            )),
        }
    }

    /// Optimizer cost estimate for the `opt` baseline. Works even for
    /// statements that would fail at runtime (the real optimizer estimates
    /// before execution), and returns `None` only for unparseable text.
    /// Estimates walk the plan this database's own optimizer produces, so
    /// they track `with_opt_level`/`with_optimizer` configuration.
    pub fn estimate(&self, text: &str) -> Option<CostEstimate> {
        let script = parse(text).result.ok()?;
        let mut total = CostEstimate::default();
        for stmt in &script.statements {
            let e = estimate_cost_with(stmt, &self.catalog, &self.optimizer);
            total.total_cost += e.total_cost;
            total.est_rows = e.est_rows;
        }
        Some(total)
    }
}

/// Byte-wise ASCII-case-insensitive prefix test — the allocation-free
/// equivalent of `s.to_ascii_lowercase().starts_with(prefix)` for an
/// ASCII-lowercase `prefix`.
fn starts_with_ci(s: &str, prefix: &str) -> bool {
    let (s, p) = (s.as_bytes(), prefix.as_bytes());
    s.len() >= p.len() && s[..p.len()].eq_ignore_ascii_case(p)
}

/// Does any part of `name` contain "mydb" (case-insensitively)?
///
/// Equivalent to `name.canonical().contains("mydb")` without building the
/// canonical string: "mydb" cannot contain the `.` separator, so a match
/// in the joined rendering always lies within a single part, and for the
/// rare non-ASCII part the Unicode-lowercase fallback matches
/// `canonical()`'s per-char lowering ("mydb" is ASCII, so the one
/// context-sensitive case, final sigma, cannot affect the answer).
fn name_mentions_mydb(name: &QualifiedName) -> bool {
    name.parts.iter().any(|p| {
        if p.is_ascii() {
            p.as_bytes()
                .windows(4)
                .any(|w| w.eq_ignore_ascii_case(b"mydb"))
        } else {
            p.to_lowercase().contains("mydb")
        }
    })
}

/// One-line description of a non-query statement for EXPLAIN output.
fn statement_kind(stmt: &Statement) -> String {
    match stmt {
        Statement::Select(_) => "Select".to_string(),
        Statement::Execute { name, arg_count } => {
            format!("Execute {} ({arg_count} args)", name.canonical())
        }
        Statement::Ddl { verb, object } => format!(
            "Ddl {verb:?}{}",
            object
                .as_ref()
                .map(|o| format!(" {}", o.canonical()))
                .unwrap_or_default()
        ),
        Statement::Dml { verb, table, .. } => format!(
            "Dml {verb:?}{}",
            table
                .as_ref()
                .map(|t| format!(" {}", t.canonical()))
                .unwrap_or_default()
        ),
        Statement::Procedural => "Procedural".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnSpec, TableSpec};

    fn db() -> Database {
        let specs = vec![
            TableSpec::new("PhotoObj", 2_000)
                .column("objid", ColumnSpec::SeqId)
                .column("ra", ColumnSpec::Uniform(0.0, 360.0))
                .column("dec", ColumnSpec::Uniform(-90.0, 90.0))
                .column("type", ColumnSpec::Categorical(7))
                .column("flags", ColumnSpec::Bitmask(20))
                .column("u", ColumnSpec::Normal(19.0, 2.0))
                .column("g", ColumnSpec::Normal(18.5, 2.0)),
            TableSpec::new("SpecObj", 500)
                .column("specobjid", ColumnSpec::SeqId)
                .column("bestobjid", ColumnSpec::IntUniform(0, 1_999))
                .column("z", ColumnSpec::Uniform(0.0, 3.0))
                .column("class", ColumnSpec::StrChoice(&["GALAXY", "STAR", "QSO"])),
        ];
        Database::new(Catalog::generate(&specs, 42))
    }

    #[test]
    fn select_star_returns_all_rows() {
        let out = db().submit("SELECT * FROM PhotoObj");
        assert_eq!(out.error_class, ErrorClass::Success);
        assert_eq!(out.answer_size, 2_000);
        assert!(out.cpu_seconds > 0.0);
    }

    #[test]
    fn filters_reduce_answer_size() {
        let d = db();
        let all = d.submit("SELECT * FROM PhotoObj").answer_size;
        let some = d
            .submit("SELECT * FROM PhotoObj WHERE ra < 180")
            .answer_size;
        let none = d.submit("SELECT * FROM PhotoObj WHERE ra < -5").answer_size;
        assert!(some < all);
        assert!(some > 0);
        assert_eq!(none, 0);
    }

    #[test]
    fn count_star() {
        let d = db();
        let out = d.submit("SELECT count(*) FROM PhotoObj WHERE type = 0");
        assert_eq!(out.error_class, ErrorClass::Success);
        assert_eq!(out.answer_size, 1);
    }

    #[test]
    fn group_by_and_having() {
        let d = db();
        let rel = {
            let mut c = CostCounter::default();
            let q = match sqlan_sql::parse_script(
                "SELECT type, count(*) AS n FROM PhotoObj GROUP BY type HAVING count(*) > 10 ORDER BY n DESC",
            )
            .unwrap()
            .statements
            .remove(0)
            {
                Statement::Select(q) => q,
                _ => unreachable!(),
            };
            d.run_query(&q, &mut c).unwrap()
        };
        assert!(!rel.is_empty());
        // Sorted descending by count.
        let counts: Vec<i64> = rel.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        let mut sorted = counts.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(counts, sorted);
    }

    #[test]
    fn equijoin_comma_style_matches_explicit_join() {
        let d = db();
        let a = d.submit(
            "SELECT s.z FROM SpecObj s, PhotoObj p WHERE s.bestobjid = p.objid AND p.type = 0",
        );
        let b = d.submit(
            "SELECT s.z FROM SpecObj s INNER JOIN PhotoObj p ON s.bestobjid = p.objid WHERE p.type = 0",
        );
        assert_eq!(a.error_class, ErrorClass::Success);
        assert_eq!(a.answer_size, b.answer_size);
        assert!(a.answer_size > 0);
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let d = db();
        let inner = d
            .submit("SELECT p.objid FROM PhotoObj p INNER JOIN SpecObj s ON p.objid = s.bestobjid");
        let left =
            d.submit("SELECT p.objid FROM PhotoObj p LEFT JOIN SpecObj s ON p.objid = s.bestobjid");
        assert!(left.answer_size >= inner.answer_size);
        assert!(left.answer_size >= 2_000);
    }

    #[test]
    fn scalar_subquery_and_in_subquery() {
        let d = db();
        let out = d.submit("SELECT objid FROM PhotoObj WHERE ra > (SELECT avg(ra) FROM PhotoObj)");
        assert_eq!(out.error_class, ErrorClass::Success);
        assert!(out.answer_size > 0 && out.answer_size < 2_000);

        let out2 = d.submit(
            "SELECT z FROM SpecObj WHERE bestobjid IN (SELECT objid FROM PhotoObj WHERE type = 0)",
        );
        assert_eq!(out2.error_class, ErrorClass::Success);
        assert!(out2.answer_size > 0);
    }

    #[test]
    fn correlated_exists() {
        let d = db();
        let out = d.submit(
            "SELECT p.objid FROM PhotoObj p WHERE EXISTS \
             (SELECT 1 FROM SpecObj s WHERE s.bestobjid = p.objid)",
        );
        assert_eq!(out.error_class, ErrorClass::Success);
        assert!(out.answer_size > 0 && out.answer_size <= 500);
    }

    #[test]
    fn syntax_error_is_severe() {
        let out = db().submit("SELEC * FROMM PhotoObj");
        assert_eq!(out.error_class, ErrorClass::Severe);
        assert_eq!(out.answer_size, -1);
        assert_eq!(out.cpu_seconds, 0.0);
    }

    #[test]
    fn natural_language_is_severe() {
        let out = db().submit("show me all galaxies brighter than 18th magnitude");
        assert_eq!(out.error_class, ErrorClass::Severe);
    }

    #[test]
    fn unknown_table_is_non_severe() {
        let out = db().submit("SELECT * FROM NoSuchTable");
        assert_eq!(out.error_class, ErrorClass::NonSevere);
        assert_eq!(out.answer_size, -1);
    }

    #[test]
    fn unknown_column_is_non_severe() {
        let out = db().submit("SELECT nocolumn FROM PhotoObj");
        assert_eq!(out.error_class, ErrorClass::NonSevere);
    }

    #[test]
    fn division_by_zero_is_non_severe() {
        let out = db().submit("SELECT 1/0 FROM PhotoObj");
        assert_eq!(out.error_class, ErrorClass::NonSevere);
    }

    #[test]
    fn functions_in_where_charge_per_row() {
        let d = db();
        let plain = d.submit("SELECT objid FROM PhotoObj WHERE flags > 0");
        let heavy =
            d.submit("SELECT objid FROM PhotoObj WHERE flags & dbo.fPhotoFlags('BLENDED') > 0");
        assert_eq!(heavy.error_class, ErrorClass::Success);
        assert!(
            heavy.cpu_seconds > plain.cpu_seconds,
            "per-row function call must cost more: {} vs {}",
            heavy.cpu_seconds,
            plain.cpu_seconds
        );
    }

    #[test]
    fn top_and_order_by() {
        let d = db();
        let out = d.submit("SELECT TOP 7 objid FROM PhotoObj ORDER BY ra DESC");
        assert_eq!(out.answer_size, 7);
    }

    #[test]
    fn distinct_reduces_rows() {
        let d = db();
        let all = d.submit("SELECT type FROM PhotoObj").answer_size;
        let distinct = d.submit("SELECT DISTINCT type FROM PhotoObj").answer_size;
        assert!(distinct <= 7);
        assert!(distinct < all);
    }

    #[test]
    fn exec_known_proc_succeeds_unknown_fails() {
        let d = db();
        assert_eq!(
            d.submit("EXEC dbo.spGetNeighbors 1, 2").error_class,
            ErrorClass::Success
        );
        assert_eq!(
            d.submit("EXEC dbo.blah 1").error_class,
            ErrorClass::NonSevere
        );
    }

    #[test]
    fn ddl_on_mydb_succeeds_on_shared_fails() {
        let d = db();
        assert_eq!(
            d.submit("DROP TABLE mydb.results").error_class,
            ErrorClass::Success
        );
        assert_eq!(
            d.submit("DROP TABLE PhotoObj").error_class,
            ErrorClass::NonSevere
        );
    }

    #[test]
    fn outcome_is_deterministic() {
        let d = db();
        let sql = "SELECT type, count(*) FROM PhotoObj WHERE ra BETWEEN 10 AND 250 GROUP BY type";
        let a = d.submit(sql);
        let b = d.submit(sql);
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_available_for_failing_queries() {
        let d = db();
        assert!(d.estimate("SELECT * FROM NoSuchTable").is_some());
        assert!(d.estimate("complete garbage ~~~").is_none());
    }

    #[test]
    fn select_without_from() {
        let out = db().submit("SELECT 1");
        assert_eq!(out.error_class, ErrorClass::Success);
        assert_eq!(out.answer_size, 1);
    }

    #[test]
    fn explain_renders_optimized_plan() {
        let d = db();
        let plan = d
            .explain(
                "SELECT s.z FROM SpecObj s, PhotoObj p \
                 WHERE s.bestobjid = p.objid AND p.type = 0",
            )
            .unwrap();
        assert!(plan.contains("HashJoin"), "expected a hash join:\n{plan}");
        assert!(
            plan.contains("Filter (p.type = 0)"),
            "expected pushed filter:\n{plan}"
        );
        assert!(plan.contains("Scan"), "expected scans:\n{plan}");

        let naive = d
            .clone()
            .with_opt_level(crate::OptLevel::None)
            .explain("SELECT s.z FROM SpecObj s, PhotoObj p WHERE s.bestobjid = p.objid")
            .unwrap();
        assert!(
            naive.contains("CrossJoin"),
            "naive plan folds with cross joins:\n{naive}"
        );

        assert!(d.explain("SELEC nonsense").is_err());
        assert!(d
            .explain("DROP TABLE mydb.results")
            .unwrap()
            .contains("Ddl"));
    }

    #[test]
    fn update_counts_affected_rows() {
        // Shared tables are write-denied; unknown user tables affect 0 rows.
        let d = db();
        let out = d.submit("UPDATE mydb.mytable SET x = 1 WHERE y > 0");
        assert_eq!(out.error_class, ErrorClass::Success);
        assert_eq!(out.answer_size, 0);
    }
}
