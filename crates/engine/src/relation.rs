//! Materialized relations and column-name resolution.

use crate::error::RuntimeError;
use crate::value::Value;

/// Metadata for one column of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// The binding alias (`p` in `PhotoObj AS p`), lower-cased.
    pub qualifier: Option<String>,
    /// The base table name, lower-cased (`photoobj`), if from a base table.
    pub table: Option<String>,
    /// The column name, original casing preserved.
    pub name: String,
}

impl ColRef {
    /// Does `qual` (lower-cased) refer to this column's binding?
    fn matches_qualifier(&self, qual: &str) -> bool {
        self.qualifier.as_deref() == Some(qual)
            || (self.qualifier.is_none() && self.table.as_deref() == Some(qual))
            || self.table.as_deref() == Some(qual) && self.qualifier.is_none()
    }
}

/// A fully materialized relation: column metadata plus row-major values.
///
/// Row-major keeps the executor simple; the engine's job is producing
/// *labels* for ML training, not raw throughput, and tables are capped by
/// [`crate::exec::ExecLimits`].
#[derive(Debug, Clone, Default)]
pub struct Relation {
    pub cols: Vec<ColRef>,
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// A relation with a single empty row — identity for FROM-less SELECTs.
    pub fn unit() -> Self {
        Relation {
            cols: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    pub fn width(&self) -> usize {
        self.cols.len()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Resolve a column reference.
    ///
    /// `parts` is the qualified name split (`["p", "ra"]` for `p.ra`).
    /// Returns `Ok(None)` when the name simply isn't here (the caller may
    /// try an outer scope); `Err` on ambiguity.
    pub fn resolve(&self, parts: &[String]) -> Result<Option<usize>, RuntimeError> {
        let (qual, name) = match parts {
            [] => return Ok(None),
            [name] => (None, name.as_str()),
            many => (
                Some(many[many.len() - 2].to_ascii_lowercase()),
                many.last().unwrap().as_str(),
            ),
        };
        let mut found: Option<usize> = None;
        for (i, c) in self.cols.iter().enumerate() {
            if !c.name.eq_ignore_ascii_case(name) {
                continue;
            }
            if let Some(q) = &qual {
                if !c.matches_qualifier(q) {
                    continue;
                }
            }
            if let Some(prev) = found {
                // Same physical binding seen twice can't happen; two
                // different bindings with the same column name is ambiguous
                // only for unqualified references.
                if qual.is_none() {
                    return Err(RuntimeError::AmbiguousColumn(name.to_string()));
                }
                // Qualified and still two matches (self-join with the same
                // alias is rejected upstream); prefer the first.
                let _ = prev;
            } else {
                found = Some(i);
            }
        }
        Ok(found)
    }

    /// Columns visible through a `q.*` wildcard (all when `q` is `None`).
    pub fn wildcard_columns(&self, qual: Option<&str>) -> Vec<usize> {
        match qual {
            None => (0..self.cols.len()).collect(),
            Some(q) => {
                let q = q.to_ascii_lowercase();
                (0..self.cols.len())
                    .filter(|&i| self.cols[i].matches_qualifier(&q))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        Relation {
            cols: vec![
                ColRef {
                    qualifier: Some("p".into()),
                    table: Some("photoobj".into()),
                    name: "ra".into(),
                },
                ColRef {
                    qualifier: Some("p".into()),
                    table: Some("photoobj".into()),
                    name: "dec".into(),
                },
                ColRef {
                    qualifier: Some("s".into()),
                    table: Some("specobj".into()),
                    name: "ra".into(),
                },
                ColRef {
                    qualifier: None,
                    table: Some("field".into()),
                    name: "fid".into(),
                },
            ],
            rows: vec![vec![
                Value::Float(1.0),
                Value::Float(2.0),
                Value::Float(3.0),
                Value::Int(4),
            ]],
        }
    }

    fn parts(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn qualified_resolution() {
        let r = rel();
        assert_eq!(r.resolve(&parts(&["p", "ra"])).unwrap(), Some(0));
        assert_eq!(r.resolve(&parts(&["s", "ra"])).unwrap(), Some(2));
        assert_eq!(r.resolve(&parts(&["p", "dec"])).unwrap(), Some(1));
    }

    #[test]
    fn table_name_works_as_qualifier_when_unaliased() {
        let r = rel();
        assert_eq!(r.resolve(&parts(&["field", "fid"])).unwrap(), Some(3));
    }

    #[test]
    fn unqualified_unique_resolves() {
        let r = rel();
        assert_eq!(r.resolve(&parts(&["dec"])).unwrap(), Some(1));
        assert_eq!(r.resolve(&parts(&["fid"])).unwrap(), Some(3));
    }

    #[test]
    fn unqualified_duplicate_is_ambiguous() {
        let r = rel();
        assert!(matches!(
            r.resolve(&parts(&["ra"])),
            Err(RuntimeError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn missing_column_is_none_not_error() {
        let r = rel();
        assert_eq!(r.resolve(&parts(&["nope"])).unwrap(), None);
        assert_eq!(r.resolve(&parts(&["z", "ra"])).unwrap(), None);
    }

    #[test]
    fn wildcard_expansion() {
        let r = rel();
        assert_eq!(r.wildcard_columns(None), vec![0, 1, 2, 3]);
        assert_eq!(r.wildcard_columns(Some("p")), vec![0, 1]);
        assert_eq!(r.wildcard_columns(Some("S")), vec![2]);
        assert_eq!(r.wildcard_columns(Some("field")), vec![3]);
    }

    #[test]
    fn multipart_qualifier_uses_last_segment() {
        let r = rel();
        // mydb.dbo.p.ra → qualifier segment before the column is `p`.
        assert_eq!(r.resolve(&parts(&["mydb", "p", "ra"])).unwrap(), Some(0));
    }
}
