//! Materialized relations, columnar batches, and column-name resolution.

use std::sync::Arc;

use crate::error::RuntimeError;
use crate::value::{Column, ColumnBuilder, Value};

/// Metadata for one column of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// The binding alias (`p` in `PhotoObj AS p`), lower-cased.
    pub qualifier: Option<String>,
    /// The base table name, lower-cased (`photoobj`), if from a base table.
    pub table: Option<String>,
    /// The column name, original casing preserved.
    pub name: String,
}

impl ColRef {
    /// Does `qual` (lower-cased) refer to this column's binding?
    fn matches_qualifier(&self, qual: &str) -> bool {
        self.qualifier.as_deref() == Some(qual)
            || (self.qualifier.is_none() && self.table.as_deref() == Some(qual))
            || self.table.as_deref() == Some(qual) && self.qualifier.is_none()
    }
}

/// A fully materialized relation: column metadata plus row-major values.
///
/// Row-major keeps the executor simple; the engine's job is producing
/// *labels* for ML training, not raw throughput, and tables are capped by
/// [`crate::exec::ExecLimits`].
#[derive(Debug, Clone, Default)]
pub struct Relation {
    pub cols: Vec<ColRef>,
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// A relation with a single empty row — identity for FROM-less SELECTs.
    pub fn unit() -> Self {
        Relation {
            cols: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    pub fn width(&self) -> usize {
        self.cols.len()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Resolve a column reference.
    ///
    /// `parts` is the qualified name split (`["p", "ra"]` for `p.ra`).
    /// Returns `Ok(None)` when the name simply isn't here (the caller may
    /// try an outer scope); `Err` on ambiguity.
    pub fn resolve(&self, parts: &[String]) -> Result<Option<usize>, RuntimeError> {
        resolve_in(&self.cols, parts)
    }

    /// Columns visible through a `q.*` wildcard (all when `q` is `None`).
    pub fn wildcard_columns(&self, qual: Option<&str>) -> Vec<usize> {
        wildcard_in(&self.cols, qual)
    }
}

/// Resolution over bare column metadata — shared by the row engine's
/// [`Relation`] and the columnar engine's [`ColumnBatch`] so the two can
/// never disagree on what a name means.
pub(crate) fn resolve_in(cols: &[ColRef], parts: &[String]) -> Result<Option<usize>, RuntimeError> {
    let (qual, name) = match parts {
        [] => return Ok(None),
        [name] => (None, name.as_str()),
        many => (
            Some(many[many.len() - 2].to_ascii_lowercase()),
            many.last().unwrap().as_str(),
        ),
    };
    let mut found: Option<usize> = None;
    for (i, c) in cols.iter().enumerate() {
        if !c.name.eq_ignore_ascii_case(name) {
            continue;
        }
        if let Some(q) = &qual {
            if !c.matches_qualifier(q) {
                continue;
            }
        }
        if let Some(prev) = found {
            // Same physical binding seen twice can't happen; two
            // different bindings with the same column name is ambiguous
            // only for unqualified references.
            if qual.is_none() {
                return Err(RuntimeError::AmbiguousColumn(name.to_string()));
            }
            // Qualified and still two matches (self-join with the same
            // alias is rejected upstream); prefer the first.
            let _ = prev;
        } else {
            found = Some(i);
        }
    }
    Ok(found)
}

pub(crate) fn wildcard_in(cols: &[ColRef], qual: Option<&str>) -> Vec<usize> {
    match qual {
        None => (0..cols.len()).collect(),
        Some(q) => {
            let q = q.to_ascii_lowercase();
            (0..cols.len())
                .filter(|&i| cols[i].matches_qualifier(&q))
                .collect()
        }
    }
}

// ================= columnar batches =================

/// A columnar relation: column metadata, `Arc`-shared typed column
/// vectors, and an optional selection vector.
///
/// The logical relation has `len()` rows; logical row `i` lives at
/// physical index `sel[i]` of every column (or at `i` when `sel` is
/// `None`). Filters refine `sel` without touching column data; projection
/// passthrough re-references columns by cloning their `Arc`; sorts
/// permute `sel`. Only joins, expression evaluation, and aggregate
/// outputs allocate new column data.
#[derive(Debug, Clone, Default)]
pub struct ColumnBatch {
    pub cols: Vec<ColRef>,
    pub columns: Vec<Arc<Column>>,
    /// Logical row → physical row. `None` = identity over `0..n_rows`.
    pub sel: Option<Arc<Vec<usize>>>,
    /// Physical row count of the columns (kept explicitly so zero-column
    /// batches — the FROM-less unit row — still have a cardinality).
    n_rows: usize,
}

impl ColumnBatch {
    /// A batch over dense (unselected) columns. All columns must share
    /// `n_rows` physical rows.
    pub fn new(cols: Vec<ColRef>, columns: Vec<Arc<Column>>, n_rows: usize) -> ColumnBatch {
        debug_assert!(columns.iter().all(|c| c.len() == n_rows));
        ColumnBatch {
            cols,
            columns,
            sel: None,
            n_rows,
        }
    }

    /// A batch with a single empty row — identity for FROM-less SELECTs.
    pub fn unit() -> ColumnBatch {
        ColumnBatch {
            cols: Vec::new(),
            columns: Vec::new(),
            sel: None,
            n_rows: 1,
        }
    }

    /// Logical row count.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.n_rows,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Physical index of logical row `i`.
    #[inline]
    pub fn phys(&self, i: usize) -> usize {
        match &self.sel {
            Some(s) => s[i],
            None => i,
        }
    }

    /// The value of column `col` at logical row `i`.
    pub fn value(&self, col: usize, i: usize) -> Value {
        self.columns[col].get(self.phys(i))
    }

    pub fn resolve(&self, parts: &[String]) -> Result<Option<usize>, RuntimeError> {
        resolve_in(&self.cols, parts)
    }

    pub fn wildcard_columns(&self, qual: Option<&str>) -> Vec<usize> {
        wildcard_in(&self.cols, qual)
    }

    /// Refine the selection: `keep` holds **logical** row indices (in
    /// increasing order for deterministic operators). Column data is
    /// shared untouched.
    pub fn select(&self, keep: &[usize]) -> ColumnBatch {
        let sel: Vec<usize> = match &self.sel {
            Some(s) => keep.iter().map(|&i| s[i]).collect(),
            None => keep.to_vec(),
        };
        ColumnBatch {
            cols: self.cols.clone(),
            columns: self.columns.clone(),
            sel: Some(Arc::new(sel)),
            n_rows: self.n_rows,
        }
    }

    /// Re-reference this batch's physical layout under new column
    /// metadata/data (projection passthrough): same selection vector,
    /// same physical row count, zero copies.
    pub fn reproject(&self, cols: Vec<ColRef>, columns: Vec<Arc<Column>>) -> ColumnBatch {
        ColumnBatch {
            cols,
            columns,
            sel: self.sel.clone(),
            n_rows: self.n_rows,
        }
    }

    /// Keep only the first `n` logical rows (TOP).
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len() {
            return;
        }
        let sel: Vec<usize> = (0..n).map(|i| self.phys(i)).collect();
        self.sel = Some(Arc::new(sel));
    }

    /// Gather one column densely over the current selection.
    pub fn gather_column(&self, col: usize) -> Column {
        let src = &self.columns[col];
        match &self.sel {
            None => (**src).clone(),
            Some(s) => gather(src, s),
        }
    }

    /// Materialize as a row-major [`Relation`] (final results only; all
    /// intermediate operators stay columnar).
    pub fn to_relation(&self) -> Relation {
        let n = self.len();
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let p = self.phys(i);
            rows.push(self.columns.iter().map(|c| c.get(p)).collect());
        }
        Relation {
            cols: self.cols.clone(),
            rows,
        }
    }

    /// Columnarize a row-major relation (tests and adapters).
    pub fn from_relation(rel: &Relation) -> ColumnBatch {
        let n = rel.len();
        let columns = (0..rel.width())
            .map(|c| {
                let mut b = ColumnBuilder::with_capacity(n);
                for row in &rel.rows {
                    b.push(row[c].clone());
                }
                Arc::new(b.finish())
            })
            .collect();
        ColumnBatch {
            cols: rel.cols.clone(),
            columns,
            sel: None,
            n_rows: n,
        }
    }
}

/// Dense gather of `src[idx[0..]]` into a fresh typed column.
pub(crate) fn gather(src: &Column, idx: &[usize]) -> Column {
    match src {
        Column::Int(v) => Column::Int(idx.iter().map(|&i| v[i]).collect()),
        Column::Float(v) => Column::Float(idx.iter().map(|&i| v[i]).collect()),
        Column::Str(v) => Column::Str(idx.iter().map(|&i| v[i].clone()).collect()),
        Column::Bool(v) => Column::Bool(idx.iter().map(|&i| v[i]).collect()),
        Column::Values(v) => Column::Values(idx.iter().map(|&i| v[i].clone()).collect()),
        Column::Const(v, _) => Column::Const(v.clone(), idx.len()),
        Column::Shared(c) => match &**c {
            crate::catalog::ColumnVec::Int(v) => Column::Int(idx.iter().map(|&i| v[i]).collect()),
            crate::catalog::ColumnVec::Float(v) => {
                Column::Float(idx.iter().map(|&i| v[i]).collect())
            }
            crate::catalog::ColumnVec::Str(v) => {
                Column::Str(idx.iter().map(|&i| v[i].clone()).collect())
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        Relation {
            cols: vec![
                ColRef {
                    qualifier: Some("p".into()),
                    table: Some("photoobj".into()),
                    name: "ra".into(),
                },
                ColRef {
                    qualifier: Some("p".into()),
                    table: Some("photoobj".into()),
                    name: "dec".into(),
                },
                ColRef {
                    qualifier: Some("s".into()),
                    table: Some("specobj".into()),
                    name: "ra".into(),
                },
                ColRef {
                    qualifier: None,
                    table: Some("field".into()),
                    name: "fid".into(),
                },
            ],
            rows: vec![vec![
                Value::Float(1.0),
                Value::Float(2.0),
                Value::Float(3.0),
                Value::Int(4),
            ]],
        }
    }

    fn parts(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn qualified_resolution() {
        let r = rel();
        assert_eq!(r.resolve(&parts(&["p", "ra"])).unwrap(), Some(0));
        assert_eq!(r.resolve(&parts(&["s", "ra"])).unwrap(), Some(2));
        assert_eq!(r.resolve(&parts(&["p", "dec"])).unwrap(), Some(1));
    }

    #[test]
    fn table_name_works_as_qualifier_when_unaliased() {
        let r = rel();
        assert_eq!(r.resolve(&parts(&["field", "fid"])).unwrap(), Some(3));
    }

    #[test]
    fn unqualified_unique_resolves() {
        let r = rel();
        assert_eq!(r.resolve(&parts(&["dec"])).unwrap(), Some(1));
        assert_eq!(r.resolve(&parts(&["fid"])).unwrap(), Some(3));
    }

    #[test]
    fn unqualified_duplicate_is_ambiguous() {
        let r = rel();
        assert!(matches!(
            r.resolve(&parts(&["ra"])),
            Err(RuntimeError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn missing_column_is_none_not_error() {
        let r = rel();
        assert_eq!(r.resolve(&parts(&["nope"])).unwrap(), None);
        assert_eq!(r.resolve(&parts(&["z", "ra"])).unwrap(), None);
    }

    #[test]
    fn wildcard_expansion() {
        let r = rel();
        assert_eq!(r.wildcard_columns(None), vec![0, 1, 2, 3]);
        assert_eq!(r.wildcard_columns(Some("p")), vec![0, 1]);
        assert_eq!(r.wildcard_columns(Some("S")), vec![2]);
        assert_eq!(r.wildcard_columns(Some("field")), vec![3]);
    }

    #[test]
    fn multipart_qualifier_uses_last_segment() {
        let r = rel();
        // mydb.dbo.p.ra → qualifier segment before the column is `p`.
        assert_eq!(r.resolve(&parts(&["mydb", "p", "ra"])).unwrap(), Some(0));
    }

    // ================= ColumnBatch =================

    fn batch() -> ColumnBatch {
        let rel = Relation {
            cols: vec![
                ColRef {
                    qualifier: None,
                    table: Some("t".into()),
                    name: "a".into(),
                },
                ColRef {
                    qualifier: None,
                    table: Some("t".into()),
                    name: "b".into(),
                },
            ],
            rows: vec![
                vec![Value::Int(0), Value::Str("x".into())],
                vec![Value::Int(1), Value::Str("y".into())],
                vec![Value::Int(2), Value::Str("z".into())],
                vec![Value::Int(3), Value::Str("w".into())],
            ],
        };
        ColumnBatch::from_relation(&rel)
    }

    #[test]
    fn batch_roundtrips_through_relation() {
        let b = batch();
        assert_eq!(b.len(), 4);
        assert_eq!(b.width(), 2);
        let rel = b.to_relation();
        assert_eq!(rel.rows.len(), 4);
        assert_eq!(rel.rows[2][1], Value::Str("z".into()));
        assert_eq!(
            ColumnBatch::from_relation(&rel).to_relation().rows,
            rel.rows
        );
    }

    #[test]
    fn empty_selection_yields_empty_batch_without_touching_columns() {
        let b = batch();
        let empty = b.select(&[]);
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        assert!(empty.to_relation().rows.is_empty());
        // Column data is shared, not copied.
        assert!(Arc::ptr_eq(&b.columns[0], &empty.columns[0]));
    }

    #[test]
    fn all_selected_matches_identity() {
        let b = batch();
        let all = b.select(&[0, 1, 2, 3]);
        assert_eq!(all.len(), 4);
        assert_eq!(all.to_relation().rows, b.to_relation().rows);
        for i in 0..4 {
            assert_eq!(all.phys(i), i);
            assert_eq!(all.value(0, i), b.value(0, i));
        }
    }

    #[test]
    fn singleton_selection_and_nested_refinement() {
        let b = batch();
        let one = b.select(&[2]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.value(1, 0), Value::Str("z".into()));
        // Refining a selected batch composes through to physical rows.
        let sub = b.select(&[1, 3]);
        let deeper = sub.select(&[1]);
        assert_eq!(deeper.len(), 1);
        assert_eq!(deeper.value(0, 0), Value::Int(3));
        assert_eq!(deeper.phys(0), 3);
    }

    #[test]
    fn truncate_keeps_prefix_of_selection() {
        let b = batch();
        let mut sel = b.select(&[3, 1, 0]);
        sel.truncate(2);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.value(0, 0), Value::Int(3));
        assert_eq!(sel.value(0, 1), Value::Int(1));
        // Truncating beyond the length is a no-op.
        let mut all = b.clone();
        all.truncate(10);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn gather_column_densifies_selection() {
        let b = batch();
        let sel = b.select(&[2, 0]);
        match sel.gather_column(0) {
            Column::Int(v) => assert_eq!(v, vec![2, 0]),
            other => panic!("expected typed Int column, got {other:?}"),
        }
    }

    #[test]
    fn unit_batch_has_one_row_and_no_columns() {
        let u = ColumnBatch::unit();
        assert_eq!(u.len(), 1);
        assert_eq!(u.width(), 0);
        let rel = u.to_relation();
        assert_eq!(rel.rows, vec![Vec::<Value>::new()]);
    }
}
