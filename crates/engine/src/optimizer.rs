//! Optimizer passes over [`QueryPlan`]s.
//!
//! The optimizer is a sequence of composable [`OptimizerPass`] rules,
//! selected by [`OptLevel`] or assembled pass-by-pass for experiments.
//! Passes rewrite the plan; they never execute anything, and all of their
//! name-resolution decisions use the same [`Relation::resolve`] rules the
//! physical layer applies at runtime, so plan-time classification cannot
//! disagree with execution.
//!
//! Levels:
//!
//! * [`OptLevel::None`] — the naive lowered plan: cross-product folds,
//!   nested-loop joins, every WHERE conjunct a residual filter.
//! * [`OptLevel::Default`] — predicate pushdown + equi-join detection:
//!   exactly the decisions the original monolithic executor's
//!   "mini optimizer" made inline. **This level reproduces the historical
//!   execution semantics and deterministic cost labels byte-for-byte**
//!   (pinned by `tests/golden_labels.rs`); it is the level the workload
//!   label generator must always use.
//! * [`OptLevel::Aggressive`] — adds constant folding and projection
//!   pruning. Result rows are identical; cost labels may legitimately
//!   differ (folding removes per-row evaluation work), which is why it is
//!   opt-in.

use std::sync::Arc;

use sqlan_sql::{Expr, Literal, Op, Query, UnaryOp};

use crate::catalog::Catalog;
use crate::plan::{
    lower, node_schema, schema_relation, split_conjuncts, FoldStep, JoinStrategy, LogicalPlan,
    QueryPlan, SelectOp,
};
use crate::relation::Relation;
use crate::value::Value;

/// Optimization level: which pass set a [`Optimizer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// No passes: execute the naive lowered plan.
    None,
    /// Predicate pushdown + equi-join detection (label-stable).
    Default,
    /// Default plus constant folding and projection pruning.
    Aggressive,
}

/// One rewrite rule.
pub trait OptimizerPass: std::fmt::Debug + Send + Sync {
    fn name(&self) -> &'static str;
    fn apply(&self, plan: &mut QueryPlan, catalog: &Catalog);
}

/// A pipeline of passes. Cheap to clone (passes are shared).
#[derive(Debug, Clone)]
pub struct Optimizer {
    passes: Vec<Arc<dyn OptimizerPass>>,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::with_level(OptLevel::Default)
    }
}

impl Optimizer {
    /// An optimizer running no passes at all.
    pub fn none() -> Optimizer {
        Optimizer { passes: Vec::new() }
    }

    pub fn with_level(level: OptLevel) -> Optimizer {
        let mut opt = Optimizer::none();
        match level {
            OptLevel::None => {}
            OptLevel::Default => {
                opt = opt
                    .with_pass(PredicatePushdown)
                    .with_pass(EquiJoinDetection);
            }
            OptLevel::Aggressive => {
                opt = opt
                    .with_pass(ConstantFolding)
                    .with_pass(PredicatePushdown)
                    .with_pass(EquiJoinDetection)
                    .with_pass(ProjectionPruning);
            }
        }
        opt
    }

    /// Append a pass to the pipeline.
    pub fn with_pass(mut self, pass: impl OptimizerPass + 'static) -> Optimizer {
        self.passes.push(Arc::new(pass));
        self
    }

    /// Remove a pass by name (per-query toggling of individual rules).
    pub fn without_pass(mut self, name: &str) -> Optimizer {
        self.passes.retain(|p| p.name() != name);
        self
    }

    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// True when every pass in the pipeline is **value-independent**: its
    /// decisions depend only on query structure (column references, join
    /// shape, projection names), never on literal values. Value-independent
    /// pipelines produce the same plan *shape* for every statement of a
    /// template, which is the precondition for the cross-statement plan
    /// cache: a cached template plan rebound with fresh literals is then
    /// provably identical to fresh parse+optimize.
    ///
    /// `constant_folding` reads literal values (it evaluates them), and an
    /// unknown custom pass could do anything — either disables caching
    /// entirely (the uncacheable-template escape hatch; see
    /// `crates/engine/ARCHITECTURE.md`).
    pub fn cache_safe(&self) -> bool {
        self.passes.iter().all(|p| {
            matches!(
                p.name(),
                "predicate_pushdown" | "equi_join_detection" | "projection_pruning"
            )
        })
    }

    /// Lower `q` and run every pass over the plan (nested subquery plans
    /// included, innermost first).
    pub fn plan(&self, q: &Query, catalog: &Catalog) -> QueryPlan {
        let mut plan = lower(q);
        self.run(&mut plan, catalog);
        plan
    }

    /// Run the pass pipeline over an already-lowered plan.
    pub fn run(&self, plan: &mut QueryPlan, catalog: &Catalog) {
        for item in &mut plan.items {
            self.run_node(item, catalog);
        }
        for pass in &self.passes {
            pass.apply(plan, catalog);
        }
    }

    fn run_node(&self, node: &mut LogicalPlan, catalog: &Catalog) {
        match node {
            LogicalPlan::Scan { .. } => {}
            LogicalPlan::Subquery { plan, .. } => self.run(plan, catalog),
            LogicalPlan::Filter { input, .. } => self.run_node(input, catalog),
            LogicalPlan::Join { left, right, .. } => {
                self.run_node(left, catalog);
                self.run_node(right, catalog);
            }
        }
    }
}

// ================= conjunct classification =================

enum ConjunctClass {
    SingleItem(usize),
    EquiJoin,
    Residual,
}

/// Which FROM items does this conjunct touch? Resolution runs against the
/// items' schemas; a name resolvable in no item (or ambiguous within one)
/// makes the conjunct residual.
fn classify_conjunct(c: &Expr, items: &[Relation]) -> ConjunctClass {
    let mut touched: Vec<usize> = Vec::new();
    let mut unresolved = false;
    collect_column_parts(c, &mut |parts| {
        let mut any = false;
        for (i, rel) in items.iter().enumerate() {
            if let Ok(Some(_)) = rel.resolve(parts) {
                if !touched.contains(&i) {
                    touched.push(i);
                }
                any = true;
                break;
            }
        }
        if !any {
            unresolved = true;
        }
    });
    if unresolved {
        return ConjunctClass::Residual;
    }
    match touched.len() {
        0 | 1 => ConjunctClass::SingleItem(touched.first().copied().unwrap_or(0)),
        2 if is_equality(c) => ConjunctClass::EquiJoin,
        _ => ConjunctClass::Residual,
    }
}

fn is_equality(e: &Expr) -> bool {
    matches!(e, Expr::Binary { op: Op::Eq, .. })
}

fn collect_column_parts<'a>(e: &'a Expr, f: &mut impl FnMut(&'a [String])) {
    sqlan_sql::visit::walk_expr(e, &mut |x| {
        if let Expr::Column(c) = x {
            f(&c.parts);
        }
    });
}

/// If `cond` (or its first equality conjunct) is `lhs = rhs` with `lhs`
/// fully resolvable in `left` and `rhs` in `right` (or vice versa), return
/// the key expressions oriented as (left_key, right_key).
pub fn equi_join_keys(cond: &Expr, left: &Relation, right: &Relation) -> Option<(Expr, Expr)> {
    for c in split_conjuncts(cond) {
        if let Expr::Binary {
            left: l,
            op: Op::Eq,
            right: r,
        } = c
        {
            let l_in_left = expr_resolvable(l, left);
            let r_in_right = expr_resolvable(r, right);
            if l_in_left && r_in_right {
                return Some(((**l).clone(), (**r).clone()));
            }
            let l_in_right = expr_resolvable(l, right);
            let r_in_left = expr_resolvable(r, left);
            if l_in_right && r_in_left {
                return Some(((**r).clone(), (**l).clone()));
            }
        }
    }
    None
}

/// Does every column in `e` resolve within `rel`, with at least one column
/// present (constants alone don't make a join key)?
fn expr_resolvable(e: &Expr, rel: &Relation) -> bool {
    let mut any = false;
    let mut all = true;
    collect_column_parts(e, &mut |parts| {
        any = true;
        if !matches!(rel.resolve(parts), Ok(Some(_))) {
            all = false;
        }
    });
    any && all && !contains_subquery(e)
}

fn contains_subquery(e: &Expr) -> bool {
    let mut found = false;
    sqlan_sql::visit::walk_expr(e, &mut |x| {
        if matches!(
            x,
            Expr::Subquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. }
        ) {
            found = true;
        }
    });
    found
}

// ================= pass: predicate pushdown =================

/// Move residual conjuncts that touch a single FROM item into the plan's
/// pushed-filter list (original conjunct order preserved — that order is
/// observable through the cost counter).
#[derive(Debug, Clone, Copy)]
pub struct PredicatePushdown;

impl OptimizerPass for PredicatePushdown {
    fn name(&self) -> &'static str {
        "predicate_pushdown"
    }

    fn apply(&self, plan: &mut QueryPlan, catalog: &Catalog) {
        if plan.items.is_empty() {
            // FROM-less queries filter the unit row; nothing to push.
            return;
        }
        let schemas: Vec<Relation> = plan
            .items
            .iter()
            .map(|it| schema_relation(node_schema(it, catalog)))
            .collect();
        let conjuncts = std::mem::take(&mut plan.residual);
        for c in conjuncts {
            match classify_conjunct(&c, &schemas) {
                ConjunctClass::SingleItem(i) => plan.pushed.push((i, c)),
                _ => plan.residual.push(c),
            }
        }
    }
}

// ================= pass: equi-join detection =================

/// Turn cross-product folds into single-key hash joins using equality
/// conjuncts from the WHERE clause, and annotate explicit JOIN nodes whose
/// ON condition contains a usable equality with a hash strategy.
#[derive(Debug, Clone, Copy)]
pub struct EquiJoinDetection;

impl OptimizerPass for EquiJoinDetection {
    fn name(&self) -> &'static str {
        "equi_join_detection"
    }

    fn apply(&self, plan: &mut QueryPlan, catalog: &Catalog) {
        // Explicit JOIN nodes inside each item tree.
        for item in &mut plan.items {
            annotate_join_strategies(item, catalog);
        }

        if plan.items.len() < 2 {
            return;
        }
        let schemas: Vec<Relation> = plan
            .items
            .iter()
            .map(|it| schema_relation(node_schema(it, catalog)))
            .collect();

        // Pull the equality conjuncts that connect exactly two items out
        // of the residual list, keeping everything else in place.
        let mut join_conds: Vec<Expr> = Vec::new();
        let residual = std::mem::take(&mut plan.residual);
        for c in residual {
            match classify_conjunct(&c, &schemas) {
                ConjunctClass::EquiJoin => join_conds.push(c),
                _ => plan.residual.push(c),
            }
        }

        // Fold items left to right, consuming every join condition that
        // becomes applicable at each step (mirroring how the accumulated
        // relation's schema grows).
        let mut folds = Vec::with_capacity(plan.items.len() - 1);
        let mut acc_cols = schemas[0].cols.clone();
        for next in &schemas[1..] {
            let acc_rel = schema_relation(acc_cols.clone());
            let (applicable, rest): (Vec<Expr>, Vec<Expr>) = join_conds
                .into_iter()
                .partition(|c| equi_join_keys(c, &acc_rel, next).is_some());
            join_conds = rest;
            let step = match applicable.first() {
                Some(first) => {
                    let (lk, rk) = equi_join_keys(first, &acc_rel, next)
                        .expect("partition guarantees applicability");
                    let condition =
                        applicable
                            .iter()
                            .skip(1)
                            .fold(applicable[0].clone(), |acc, c| Expr::Logical {
                                left: Box::new(acc),
                                and: true,
                                right: Box::new(c.clone()),
                            });
                    FoldStep::Hash {
                        left_key: lk,
                        right_key: rk,
                        condition,
                    }
                }
                None => FoldStep::Cross,
            };
            folds.push(step);
            acc_cols.extend(next.cols.iter().cloned());
        }
        // Join conditions that never became applicable fall back to
        // residual filtering, after the other residual conjuncts.
        plan.residual.extend(join_conds);
        plan.folds = folds;
    }
}

fn annotate_join_strategies(node: &mut LogicalPlan, catalog: &Catalog) {
    match node {
        LogicalPlan::Scan { .. } | LogicalPlan::Subquery { .. } => {}
        LogicalPlan::Filter { input, .. } => annotate_join_strategies(input, catalog),
        LogicalPlan::Join {
            left,
            right,
            on,
            strategy,
            ..
        } => {
            annotate_join_strategies(left, catalog);
            annotate_join_strategies(right, catalog);
            if let Some(cond) = on {
                let lrel = schema_relation(node_schema(left, catalog));
                let rrel = schema_relation(node_schema(right, catalog));
                if let Some((lk, rk)) = equi_join_keys(cond, &lrel, &rrel) {
                    *strategy = JoinStrategy::Hash {
                        left_key: Box::new(lk),
                        right_key: Box::new(rk),
                    };
                }
            }
        }
    }
}

// ================= pass: constant folding =================

/// Fold literal-only arithmetic (`1 + 2`, `-3.5`, `'a' + 'b'`) ahead of
/// execution. Comparisons and logic are left alone — they produce boolean
/// *values* the literal grammar cannot represent — and anything that would
/// error (`1 / 0`) is left unfolded so runtime error labels are preserved.
#[derive(Debug, Clone, Copy)]
pub struct ConstantFolding;

impl OptimizerPass for ConstantFolding {
    fn name(&self) -> &'static str {
        "constant_folding"
    }

    fn apply(&self, plan: &mut QueryPlan, _catalog: &Catalog) {
        for (_, e) in &mut plan.pushed {
            fold_expr(e);
        }
        for e in &mut plan.residual {
            fold_expr(e);
        }
        for f in &mut plan.folds {
            if let FoldStep::Hash {
                left_key,
                right_key,
                condition,
            } = f
            {
                fold_expr(left_key);
                fold_expr(right_key);
                fold_expr(condition);
            }
        }
        match &mut plan.select {
            SelectOp::Project { items } => {
                for i in items {
                    fold_expr(&mut i.expr);
                }
            }
            SelectOp::Aggregate {
                items,
                group_by,
                having,
            } => {
                for i in items {
                    fold_expr(&mut i.expr);
                }
                for g in group_by {
                    fold_expr(g);
                }
                if let Some(h) = having {
                    fold_expr(h);
                }
            }
        }
        for o in &mut plan.order_by {
            fold_expr(&mut o.expr);
        }
        for item in &mut plan.items {
            fold_node(item);
        }
    }
}

fn fold_node(node: &mut LogicalPlan) {
    match node {
        LogicalPlan::Scan { .. } | LogicalPlan::Subquery { .. } => {}
        LogicalPlan::Filter { input, predicate } => {
            fold_expr(predicate);
            fold_node(input);
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            strategy,
            ..
        } => {
            fold_node(left);
            fold_node(right);
            if let Some(c) = on {
                fold_expr(c);
            }
            if let JoinStrategy::Hash {
                left_key,
                right_key,
            } = strategy
            {
                fold_expr(left_key);
                fold_expr(right_key);
            }
        }
    }
}

/// Bottom-up literal folding, in place.
fn fold_expr(e: &mut Expr) {
    // Recurse first.
    match e {
        Expr::Unary { expr, .. } => fold_expr(expr),
        Expr::Binary { left, right, .. } => {
            fold_expr(left);
            fold_expr(right);
        }
        Expr::Logical { left, right, .. } => {
            fold_expr(left);
            fold_expr(right);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            fold_expr(expr);
            fold_expr(low);
            fold_expr(high);
        }
        Expr::InList { expr, list, .. } => {
            fold_expr(expr);
            for x in list {
                fold_expr(x);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            fold_expr(expr);
            fold_expr(pattern);
        }
        Expr::IsNull { expr, .. } => fold_expr(expr),
        Expr::Function(f) => {
            for a in &mut f.args {
                fold_expr(a);
            }
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                fold_expr(o);
            }
            for (c, v) in branches {
                fold_expr(c);
                fold_expr(v);
            }
            if let Some(x) = else_expr {
                fold_expr(x);
            }
        }
        Expr::Cast { expr, .. } => fold_expr(expr),
        // Subqueries are separate execution scopes; leave their ASTs
        // untouched (their plans are optimized when they run). Params are
        // opaque leaves: folding one would bake a template's seed literal
        // into the plan shape, which is exactly what makes a template
        // uncacheable — the plan cache refuses to cache under this pass
        // (see `Optimizer::cache_safe`), and `literal_of` below never
        // looks through a Param.
        Expr::Column(_)
        | Expr::Wildcard(_)
        | Expr::Literal(_)
        | Expr::Param { .. }
        | Expr::Subquery(_)
        | Expr::InSubquery { .. }
        | Expr::Exists { .. } => {}
    }

    // Then fold this node if it is a literal-only arithmetic operation.
    let folded: Option<Literal> = match &*e {
        Expr::Binary { left, op, right } if op_is_arithmetic(*op) => {
            match (literal_of(left), literal_of(right)) {
                (Some(l), Some(r)) => crate::eval::apply_binary(&l, *op, &r)
                    .ok()
                    .and_then(value_to_literal),
                _ => None,
            }
        }
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => literal_of(expr)
            .and_then(|v| v.neg().ok())
            .and_then(value_to_literal),
        Expr::Unary {
            op: UnaryOp::Plus,
            expr,
        } => literal_of(expr).and_then(value_to_literal),
        _ => None,
    };
    if let Some(lit) = folded {
        *e = Expr::Literal(lit);
    }
}

fn op_is_arithmetic(op: Op) -> bool {
    matches!(
        op,
        Op::Plus
            | Op::Minus
            | Op::Star
            | Op::Slash
            | Op::Percent
            | Op::BitAnd
            | Op::BitOr
            | Op::BitXor
            | Op::Concat
    )
}

fn literal_of(e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(l) => Some(crate::eval::literal_value(l)),
        _ => None,
    }
}

fn value_to_literal(v: Value) -> Option<Literal> {
    match v {
        Value::Int(i) => Some(Literal::Number(i as f64, i.to_string())),
        Value::Float(f) if f.is_finite() => Some(Literal::Number(f, format!("{f:?}"))),
        Value::Str(s) => Some(Literal::String(s)),
        Value::Null => Some(Literal::Null),
        // Booleans have no literal form; keep the expression.
        _ => None,
    }
}

// ================= pass: projection pruning =================

/// Restrict base-table scans to the columns the query can observe. Row
/// counts and cost-counter charges are unchanged (the counters charge per
/// row, not per column); the win is materialization width. Name-based
/// retention keeps every column whose name is referenced anywhere —
/// qualified or not — so ambiguity errors still fire exactly as before.
#[derive(Debug, Clone, Copy)]
pub struct ProjectionPruning;

impl OptimizerPass for ProjectionPruning {
    fn name(&self) -> &'static str {
        "projection_pruning"
    }

    fn apply(&self, plan: &mut QueryPlan, catalog: &Catalog) {
        let mut used = UsedColumns::default();
        collect_plan_usage(plan, &mut used);
        if used.all {
            return;
        }
        for item in &mut plan.items {
            prune_node(item, catalog, &used);
        }
    }
}

#[derive(Debug, Default)]
struct UsedColumns {
    /// Lower-cased bare column names referenced anywhere.
    names: std::collections::HashSet<String>,
    /// Lower-cased qualifiers of `alias.*` wildcards.
    wildcard_quals: std::collections::HashSet<String>,
    /// An unqualified `*` (or anything else un-analyzable) was seen.
    all: bool,
}

fn collect_plan_usage(plan: &QueryPlan, used: &mut UsedColumns) {
    for (_, e) in &plan.pushed {
        collect_expr_usage(e, used);
    }
    for e in &plan.residual {
        collect_expr_usage(e, used);
    }
    for f in &plan.folds {
        if let FoldStep::Hash {
            left_key,
            right_key,
            condition,
        } = f
        {
            collect_expr_usage(left_key, used);
            collect_expr_usage(right_key, used);
            collect_expr_usage(condition, used);
        }
    }
    match &plan.select {
        SelectOp::Project { items } => {
            for i in items {
                collect_expr_usage(&i.expr, used);
            }
        }
        SelectOp::Aggregate {
            items,
            group_by,
            having,
        } => {
            for i in items {
                collect_expr_usage(&i.expr, used);
            }
            for g in group_by {
                collect_expr_usage(g, used);
            }
            if let Some(h) = having {
                collect_expr_usage(h, used);
            }
        }
    }
    for o in &plan.order_by {
        collect_expr_usage(&o.expr, used);
    }
    for item in &plan.items {
        collect_node_usage(item, used);
    }
}

fn collect_node_usage(node: &LogicalPlan, used: &mut UsedColumns) {
    match node {
        LogicalPlan::Scan { .. } => {}
        // A derived table's internals resolve against its own scope, but
        // correlated references inside it can reach this query's columns.
        LogicalPlan::Subquery { plan, .. } => collect_plan_usage(plan, used),
        LogicalPlan::Filter { input, predicate } => {
            collect_expr_usage(predicate, used);
            collect_node_usage(input, used);
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            strategy,
            ..
        } => {
            collect_node_usage(left, used);
            collect_node_usage(right, used);
            if let Some(c) = on {
                collect_expr_usage(c, used);
            }
            if let JoinStrategy::Hash {
                left_key,
                right_key,
            } = strategy
            {
                collect_expr_usage(left_key, used);
                collect_expr_usage(right_key, used);
            }
        }
    }
}

/// Record every column name in `e`, descending into subqueries (their
/// correlated references resolve against this query's relations).
fn collect_expr_usage(e: &Expr, used: &mut UsedColumns) {
    sqlan_sql::visit::walk_expr(e, &mut |x| match x {
        Expr::Column(c) => {
            if let Some(last) = c.parts.last() {
                used.names.insert(last.to_ascii_lowercase());
            }
        }
        Expr::Wildcard(None) => used.all = true,
        Expr::Wildcard(Some(q)) => {
            used.wildcard_quals.insert(q.to_ascii_lowercase());
        }
        _ => {}
    });
    sqlan_sql::visit::walk_expr_queries(e, &mut |q| collect_query_usage(q, used));
}

fn collect_query_usage(q: &Query, used: &mut UsedColumns) {
    sqlan_sql::visit::walk_query_exprs(q, &mut |e| match e {
        Expr::Column(c) => {
            if let Some(last) = c.parts.last() {
                used.names.insert(last.to_ascii_lowercase());
            }
        }
        Expr::Wildcard(None) => used.all = true,
        Expr::Wildcard(Some(qual)) => {
            used.wildcard_quals.insert(qual.to_ascii_lowercase());
        }
        _ => {}
    });
    sqlan_sql::visit::walk_child_queries(q, &mut |c| collect_query_usage(c, used));
}

fn prune_node(node: &mut LogicalPlan, catalog: &Catalog, used: &UsedColumns) {
    match node {
        LogicalPlan::Scan {
            table,
            alias,
            columns,
        } => {
            let Some(t) = catalog.get(&table.canonical()) else {
                return;
            };
            let qualifier = alias.as_ref().map(|a| a.to_ascii_lowercase());
            let tname = t.name.to_ascii_lowercase();
            let binding_matches =
                |q: &String| qualifier.as_ref() == Some(q) || (qualifier.is_none() && *q == tname);
            if used.wildcard_quals.iter().any(binding_matches) {
                return; // `alias.*` needs the whole row
            }
            let keep: Vec<usize> = t
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| used.names.contains(&c.name.to_ascii_lowercase()))
                .map(|(i, _)| i)
                .collect();
            if keep.len() < t.columns.len() {
                *columns = Some(keep);
            }
        }
        // Derived tables already prune their own scans via the recursive
        // optimizer run; their projection head defines their schema.
        LogicalPlan::Subquery { .. } => {}
        LogicalPlan::Filter { input, .. } => prune_node(input, catalog, used),
        LogicalPlan::Join { left, right, .. } => {
            prune_node(left, catalog, used);
            prune_node(right, catalog, used);
        }
    }
}
